"""Shared helpers for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the paper, prints the
rows/series it reports, and asserts the claim's *shape* (who wins, by
roughly what factor, where crossovers fall).  Benchmarks run each artifact
once (``rounds=1``) — the interesting number is the artifact's content,
not the harness's wall clock.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print one labelled artifact block into the benchmark output."""
    print(f"\n===== {title} =====")
    print(body)
