"""Shared helpers for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the paper, prints the
rows/series it reports, and asserts the claim's *shape* (who wins, by
roughly what factor, where crossovers fall).  Benchmarks run each artifact
once (``rounds=1``) — the interesting number is the artifact's content,
not the harness's wall clock.

Setting ``REPRO_BENCH_APPEND=/path/to/BENCH_xxxx.json`` (off by default)
additionally appends each artifact's wall-clock time to that benchmark
-observatory record under its ``artifacts`` key, so paper-artifact
benchmarks and ``python -m repro.cli bench`` share one record format
(see ``repro.bench.recorder``).
"""

from __future__ import annotations

import os
import time

#: Environment variable gating the observatory feed (a record path).
RECORD_ENV = "REPRO_BENCH_APPEND"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    When :data:`RECORD_ENV` names a record file, the artifact's wall
    clock is appended there as well — measured around the benchmarked
    call, so the recorder sees the same single-round timing
    pytest-benchmark reports.
    """
    record_path = os.environ.get(RECORD_ENV, "").strip()
    start = time.perf_counter() if record_path else 0.0
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    if record_path:
        elapsed = time.perf_counter() - start
        from repro.bench.recorder import append_artifact_timing

        name = getattr(benchmark, "name", None) or getattr(
            fn, "__name__", "artifact")
        append_artifact_timing(record_path, name, elapsed)
    return result


def emit(title: str, body: str) -> None:
    """Print one labelled artifact block into the benchmark output."""
    print(f"\n===== {title} =====")
    print(body)
