"""Benchmark E-ABL — ablations of DESIGN.md's called-out design choices."""

from conftest import emit, run_once

from repro.experiments import ablations


def test_design_choice_ablations(benchmark):
    results = run_once(benchmark, ablations.run)
    emit("Ablations: input buffer / chaining / LUT windows",
         ablations.format_result(results))

    buffer_points, chaining, window_points = results

    # Figure 11(d): the partial input buffer "boost[s] performance in a
    # limited bandwidth scenario" — large gains when starved.
    assert all(point.gain > 2.0 for point in buffer_points)

    # Left-rotation chaining both speeds execution and cuts link traffic
    # (the intermediates never leave the accumulators).
    assert chaining.speedup > 1.3
    assert chaining.traffic_saving > 0.3

    # The paper's GELU window [-4, 3] is the knee: max error < 0.05 at
    # 4 KB, and halving the window blows the error budget.
    by_window = {p.window: p for p in window_points}
    assert by_window[(-4, 3)].max_error < 0.05
    assert by_window[(-3, 2)].max_error > 0.05
