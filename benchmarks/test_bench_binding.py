"""Benchmark E-S22 — Section 2.2: the protein binding-affinity study."""

from conftest import emit, run_once

from repro.experiments import binding_study


def test_binding_study(benchmark):
    result = run_once(benchmark, binding_study.run)
    emit("Section 2.2: Herceptin -> BH1 binding-affinity transfer",
         binding_study.format_result(result))

    # Paper's split: 39 Herceptin Fab variants train, 35 BH1 test.
    assert result.num_train == 39
    assert result.num_test == 35

    # "near or above 0.5" rank correlation (paper: 0.5161).  Our synthetic
    # substitute lands in the same band.
    assert result.rank_correlation >= 0.40
    assert result.experimentally_valid

    # The model actually fits the training library too.
    assert result.train_rank_correlation > 0.4
