"""Microbenchmarks of the simulator components themselves.

Unlike the artifact benchmarks (one round each), these time the library's
hot paths over many rounds — useful when optimizing the simulators.
"""

import numpy as np

from repro.arch import SystolicArray, make_gelu_lut
from repro.dataflow import ArrayType, build_graph_for
from repro.model import ProteinBert, protein_bert_base, protein_bert_tiny, to_bfloat16
from repro.sched import Orchestrator
from repro.arch.config import best_perf
from repro.trace import TraceSpec, trace_model


def test_bench_bf16_rounding(benchmark):
    values = np.random.default_rng(0).normal(
        size=(512, 512)).astype(np.float32)
    benchmark(to_bfloat16, values)


def test_bench_gelu_lut_lookup(benchmark):
    lut = make_gelu_lut()
    values = np.random.default_rng(0).normal(
        0, 2, size=(256, 256)).astype(np.float32)
    benchmark(lut.lookup, values)


def test_bench_functional_matmul(benchmark):
    array = SystolicArray(16, ArrayType.M)
    rng = np.random.default_rng(0)
    a = rng.normal(size=(128, 768)).astype(np.float32)
    b = rng.normal(size=(768, 128)).astype(np.float32)
    benchmark(array.matmul, a, b)


def test_bench_symbolic_trace(benchmark):
    spec = TraceSpec(protein_bert_base(), batch=128, seq_len=512)
    benchmark(trace_model, spec)


def test_bench_dataflow_build(benchmark):
    config = protein_bert_base()
    benchmark(build_graph_for, config, 4, 512)


def test_bench_orchestrator_run(benchmark):
    orchestrator = Orchestrator(best_perf())
    config = protein_bert_base()
    benchmark.pedantic(orchestrator.run, args=(config, 32, 256),
                       rounds=3, iterations=1)


def test_bench_tiny_model_forward(benchmark):
    config = protein_bert_tiny()
    model = ProteinBert(config, seed=0)
    ids = np.random.default_rng(0).integers(0, config.vocab_size,
                                            size=(4, 64))
    benchmark(model.forward, ids)
