"""Benchmark: parallel + memoized DSE sweep vs the serial cold path.

Times a bounded sweep (``limit=64``) of the full-scale design space three
ways — cold with ``workers=2``, cold serial, and ``workers=4`` against a
warm cache — and asserts the PR's acceptance criterion: the warm parallel
sweep beats the serial cold path by at least 2x while producing a
bit-identical :class:`~repro.dse.explorer.DseResult`.

Scenario order matters: the cold parallel run goes first (its fork
children recompute everything; the parent's caches stay cold), the serial
run then warms the parent's in-memory caches, and the final ``workers=4``
run inherits those warm caches through fork.
"""

import time

from repro.dse.explorer import DesignSpaceExplorer
from repro.parallel import SweepExecutor, cache_stats, clear_caches

from conftest import emit, run_once

LIMIT = 64


def _timed_sweep(explorer, workers):
    started = time.perf_counter()
    result = explorer.sweep(limit=LIMIT, workers=workers)
    return result, time.perf_counter() - started


def test_bench_dse_sweep(benchmark):
    explorer = DesignSpaceExplorer(batch=16, seq_len=512)

    clear_caches()
    parallel_cold, parallel_cold_s = _timed_sweep(explorer, workers=2)

    clear_caches()
    explorer._a100_reference = None

    warm_executor = SweepExecutor(workers=4)

    def scenario():
        serial, serial_s = _timed_sweep(explorer, workers=1)
        started = time.perf_counter()
        warm = explorer.sweep(limit=LIMIT, executor=warm_executor)
        warm_s = time.perf_counter() - started
        return serial, serial_s, warm, warm_s

    serial, serial_s, warm, warm_s = run_once(benchmark, scenario)

    assert serial == parallel_cold == warm, (
        "sweep results must be bit-identical across worker counts "
        "and cache states")
    speedup_warm = serial_s / warm_s
    speedup_cold = serial_s / parallel_cold_s
    assert speedup_warm >= 2.0, (
        f"warm workers=4 sweep only {speedup_warm:.2f}x faster than the "
        f"serial cold path ({warm_s:.3f}s vs {serial_s:.3f}s)")

    stats = cache_stats()
    warm_stats = (warm_executor.last_cache_stats or {}).get(
        "schedule", stats["schedule"])
    benchmark.extra_info["limit"] = LIMIT
    benchmark.extra_info["serial_cold_seconds"] = round(serial_s, 4)
    benchmark.extra_info["parallel_cold_seconds"] = round(
        parallel_cold_s, 4)
    benchmark.extra_info["warm_workers4_seconds"] = round(warm_s, 4)
    benchmark.extra_info["speedup_warm_vs_serial"] = round(speedup_warm, 2)
    benchmark.extra_info["speedup_cold_vs_serial"] = round(speedup_cold, 2)
    benchmark.extra_info["warm_schedule_cache_hits"] = warm_stats.hits
    benchmark.extra_info["warm_schedule_cache_misses"] = warm_stats.misses
    emit("dse sweep (limit=64, full-scale space)",
         f"serial cold      {serial_s:8.3f}s\n"
         f"workers=2 cold   {parallel_cold_s:8.3f}s "
         f"({speedup_cold:.2f}x)\n"
         f"workers=4 warm   {warm_s:8.3f}s ({speedup_warm:.2f}x)\n"
         f"warm-run schedule cache: {warm_stats.hits} hits / "
         f"{warm_stats.misses} misses")
    clear_caches()
