"""Benchmark E-EXT — the paper's claimed extension capabilities."""

from conftest import emit, run_once

from repro.experiments import extensions


def test_extension_studies(benchmark):
    zoo, seq2seq, tasks = run_once(benchmark, extensions.run)
    emit("Extensions: model zoo / encoder-decoder / downstream tasks",
         extensions.format_result((zoo, seq2seq, tasks)))

    # Streaming design scales to ESM-1b with *constant* device storage.
    by_model = {point.model: point for point in zoo}
    assert by_model["esm-1b"].prose_storage_bytes \
        == by_model["tape-bert"].prose_storage_bytes
    # Throughput roughly inversely proportional to model size.
    assert by_model["tape-bert"].throughput \
        > 3 * by_model["esm-1b"].throughput

    # Encoder-decoder runs on the same three dataflows with a bounded
    # overhead (decoder adds roughly one encoder's worth of work).
    for point in seq2seq:
        assert 1.2 <= point.decoder_overhead <= 3.5

    # One shared extractor transfers to every registered downstream task.
    for result in tasks.values():
        assert result.rank_correlation > 0.4
