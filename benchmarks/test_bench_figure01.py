"""Benchmark E-F1 — Figure 1: inference efficiency vs sequence length."""

from conftest import emit, run_once

from repro.experiments import figure01


def test_figure01_efficiency_curves(benchmark):
    result = run_once(benchmark, figure01.run)
    emit("Figure 1: inferences/s/W vs input length",
         figure01.format_result(result))

    # Shape claims: every platform's efficiency decreases with length.
    for system in result.systems:
        curve = result.curve(system)
        assert curve[0].efficiency > curve[-1].efficiency

    # ProSE holds roughly an order of magnitude (or more) over every
    # commodity platform at short, human-language lengths...
    for other in ("A100", "TPUv2", "TPUv3"):
        assert result.efficiency("ProSE", 32) \
            > 5 * result.efficiency(other, 32)

    # ...and past ~512 tokens the commodity platforms fall below
    # 1 inference/s/W while ProSE stays usable.
    for other in ("A100", "TPUv2", "TPUv3"):
        assert result.efficiency(other, 1024) < 1.0
    assert result.efficiency("ProSE", 1024) > 1.0
