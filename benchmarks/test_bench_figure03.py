"""Benchmark E-F3 — Figure 3: runtime breakdown by operation class."""

from conftest import emit, run_once

from repro.experiments import figure03
from repro.profiling import matmul_share_bounds


def test_figure03_runtime_breakdown(benchmark):
    rows = run_once(benchmark, figure03.run)
    emit("Figure 3: Protein BERT runtime breakdown (A100)",
         figure03.format_result(rows))

    # Matrix multiplies (batched + unbatched) dominate but never take the
    # whole runtime.  The paper reports 35%-52%; our calibrated model
    # spans 33%-65% (the short-length end runs matmul-heavier than the
    # paper's measurement — see EXPERIMENTS.md), with the protein-scale
    # lengths (>=256 tokens) inside the published band.
    low, high = matmul_share_bounds(rows)
    assert 0.30 <= low and high <= 0.66
    protein_rows = [row for row in rows if row.seq_len >= 256]
    p_low, p_high = matmul_share_bounds(protein_rows)
    assert 0.30 <= p_low and p_high <= 0.55

    # The unbatched MatMul share decreases as length increases while
    # element-wise and special-function shares grow.
    first, last = rows[0], rows[-1]
    assert first.share("Matrix Multiply") > last.share("Matrix Multiply")
    assert last.share("Softmax") > first.share("Softmax")
    assert last.share("Matrix Div") > first.share("Matrix Div")
