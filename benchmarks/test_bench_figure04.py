"""Benchmark E-F4 — Figure 4: heterogeneity vs input sequence length."""

from conftest import emit, run_once

from repro.experiments import figure04


def test_figure04_heterogeneous_vs_homogeneous(benchmark):
    result = run_once(benchmark, figure04.run)
    emit("Figure 4: runtime vs length, ProSE vs 4x 64x64 homogeneous",
         figure04.format_result(result))

    # Runtime grows superlinearly with length on both designs.
    for design in ("ProSE", "Homogeneous"):
        assert result.runtime(design, 2048) \
            > 8 * result.runtime(design, 256)

    # Little difference at short lengths...
    assert result.ratio(32) < 1.5
    # ...but beyond ~300 tokens the homogeneous design falls well behind.
    assert result.ratio(512) > 1.7
    assert result.ratio(1024) > 2.0
    # And the divergence grows from the short-length regime.
    assert result.ratio(1024) > result.ratio(64)
