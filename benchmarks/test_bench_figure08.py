"""Benchmark E-F8 — Figure 8: multithreaded orchestration sweep."""

from conftest import emit, run_once

from repro.experiments import figure08


def test_figure08_thread_sweep(benchmark):
    result = run_once(benchmark, figure08.run)
    emit("Figure 8: throughput vs software thread count (BestPerf, 512 "
         "tokens, batch 128)", figure08.format_result(result))

    # Multithreading "significantly improves system throughput": near-
    # linear scaling while data-dependency bubbles dominate.
    assert result.speedup_over_single_thread(4) > 3.0
    assert result.speedup_over_single_thread(32) > 10.0

    # The paper chose 32 threads: past the knee extra threads add mutex
    # contention without filling more bubbles.
    by_threads = {p.threads: p.throughput for p in result.points}
    assert by_threads[32] > 0.9 * max(by_threads.values())
    assert by_threads[128] < by_threads[64]

    # Contention overhead grows monotonically with the thread count.
    contention = [p.contention_seconds for p in result.points]
    assert all(a <= b for a, b in zip(contention, contention[1:]))
