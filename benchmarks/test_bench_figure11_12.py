"""Benchmark E-F11/12 — TPUv2 vs ProSE microarchitectural step traces."""

from conftest import emit, run_once

from repro.experiments import figure11_12


def test_figure11_12_step_traces(benchmark):
    matmul, muladd = run_once(benchmark, figure11_12.run)
    emit("Figures 11/12: global vs local dataflow, step by step",
         figure11_12.format_result((matmul, muladd)))

    # Figure 11: TPUv2 performs eight operations, ProSE four.
    assert matmul.tpu.num_steps == 8
    assert matmul.prose.num_steps == 4

    # Figure 12: the MulAdd traverses the TPU's global dataflow two-three
    # times; ProSE completes it in one local-dataflow trip.
    assert muladd.tpu.buffer_trips >= 5
    assert muladd.step_ratio > 1.5

    # ProSE makes zero Unified-Buffer round trips by construction.
    assert matmul.prose_has_no_buffer_trips
    assert muladd.prose_has_no_buffer_trips
