"""Benchmark E-F13/14 — Figures 13 & 14: GELU/Exp LUT truncation."""

from conftest import emit, run_once

from repro.experiments import figure13_14


def test_figure13_14_lut_windows(benchmark):
    gelu_report, exp_report = run_once(benchmark, figure13_14.run)
    emit("Figures 13/14: special-function LUT windows and accuracy",
         figure13_14.format_result((gelu_report, exp_report)))

    # Exact table sizes from the paper: 4 KB for GELU, 6 KB for Exp.
    assert gelu_report.table_bytes == 4096
    assert exp_report.table_bytes == 6144

    # Exact exponent windows: GELU [-4, 3], Exp [-6, 5].
    assert gelu_report.exponent_window == (-4, 3)
    assert exp_report.exponent_window == (-6, 5)

    # "These truncation policies do not affect the accuracy of the models
    # we study": all error sources stay small over the active ranges.
    assert gelu_report.in_window_max_error < 0.05
    assert gelu_report.below_window_max_error < 0.05
    assert exp_report.in_window_max_error < 0.05
    assert exp_report.above_window_max_error == 0.0   # softmax range
