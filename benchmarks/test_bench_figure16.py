"""Benchmark E-F16 — Figure 16: design-space exploration scatter."""

from conftest import emit, run_once

from repro.experiments import figure16


def test_figure16_design_space_exploration(benchmark):
    # The full space is 232 configurations (paper: 238); evaluate all of
    # them at a reduced batch that preserves the ranking.
    result = run_once(benchmark, figure16.run)
    emit("Figure 16: DSE over the Table 3 space",
         figure16.format_result(result))

    assert len(result.points) == 232

    # The scatter is broad: worst configuration at least 1.5x the best.
    runtimes = [p.normalized_runtime for p in result.points]
    assert max(runtimes) > 1.5 * min(runtimes)

    # BestPerf is the global runtime minimum by construction; it should
    # beat the A100 (normalized runtime < 1) by a wide margin.
    assert result.best_perf.normalized_runtime < 0.5

    # The efficient Pareto picks give up little performance for their
    # power/area savings (the paper's BestPerf vs MostEfficient rows are
    # close in both).
    assert result.most_power_efficient.normalized_runtime \
        < 1.5 * result.best_perf.normalized_runtime
