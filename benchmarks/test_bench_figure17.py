"""Benchmark E-F17 — Figure 17: PE-count resource sweep."""

from conftest import emit, run_once

from repro.experiments import figure17


def test_figure17_resource_sweep(benchmark):
    result = run_once(benchmark, figure17.run)
    emit("Figure 17: performance and perf/W vs PE budget",
         figure17.format_result(result))

    by_budget = {p.pe_budget: p for p in result.points}

    # Performance grows with hardware resources.
    assert by_budget[24576].best_perf_speedup \
        > by_budget[8192].best_perf_speedup

    # The balance point (perf x perf/W) lands at 16K or 20K PEs — the
    # paper's ProSE / ProSE+ design points.
    assert result.most_balanced_budget in (16384, 20480)

    # Every budget's BestPerf beats one A100.
    for point in result.points:
        assert point.best_perf_speedup > 1.0
        assert point.best_perf_efficiency_gain > 10.0
