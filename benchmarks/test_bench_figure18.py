"""Benchmark E-F18 — Figure 18: speedup vs host-link bandwidth."""

from conftest import emit, run_once

from repro.arch import nvlink
from repro.experiments import figure18


def test_figure18_speedup_grid(benchmark):
    result = run_once(benchmark, figure18.run)
    emit("Figure 18: ProSE speedup over A100 / TPUv3 vs link bandwidth",
         figure18.format_result(result))

    nvlink2 = nvlink(2, 0.9).name

    # "The BestPerf and the MostEfficient designs achieve a speedup of
    # 3.9-4.7x over the A100 and 3.1-3.8x over TPUv3 with NVLink 2.0."
    for name in ("BestPerf", "MostEfficient"):
        assert 3.2 <= result.speedup(name, nvlink2, "A100") <= 5.5
        assert 2.6 <= result.speedup(name, nvlink2, "TPUv3") <= 4.6

    # "up to 6.9x speedup" over the A100 and "up to 5.5x" over TPUv3.
    assert 5.5 <= result.max_speedup("A100") <= 9.0
    assert 4.5 <= result.max_speedup("TPUv3") <= 7.5

    # The "+" designs demand faster links: NVLink 3.0 buys BestPerf+ a
    # real gain while BestPerf is already nearly saturated at NVLink 2.0.
    nvlink3 = nvlink(3, 0.9).name
    plus_gain = (result.speedup("BestPerf+", nvlink3, "A100")
                 / result.speedup("BestPerf+", nvlink2, "A100"))
    base_gain = (result.speedup("BestPerf", nvlink3, "A100")
                 / result.speedup("BestPerf", nvlink2, "A100"))
    assert plus_gain > 1.05
    assert plus_gain > base_gain

    # Homogeneous designs underperform heterogeneous ones at every link,
    # including infinite bandwidth.
    for link in (nvlink2, nvlink3, "Infinite"):
        assert result.speedup("BestPerf", link, "A100") \
            > result.speedup("Homogeneous", link, "A100")
        assert result.speedup("BestPerf+", link, "A100") \
            > result.speedup("Homogeneous+", link, "A100")
