"""Benchmark E-F19 — Figure 19: power efficiency vs link bandwidth."""

from conftest import emit, run_once

from repro.arch import nvlink
from repro.experiments import figure19


def test_figure19_efficiency_grid(benchmark):
    result = run_once(benchmark, figure19.run)
    emit("Figure 19: normalized power efficiency vs link bandwidth",
         figure19.format_result(result))

    nvlink2 = nvlink(2, 0.9).name

    # One to two orders of magnitude over the commodity platforms: tens
    # of times the A100, a couple hundred times TPUv3.
    for name in ("BestPerf", "MostEfficient"):
        assert 30 <= result.gain(name, nvlink2, "A100") <= 100
        assert 120 <= result.gain(name, nvlink2, "TPUv3") <= 350

    # TPUv3 gains exceed A100 gains everywhere (the Unified Buffer and
    # board power make the TPU far less efficient).
    for cell in result.cells:
        if cell.baseline == "A100":
            counterpart = result.gain(cell.config_name, cell.link_name,
                                      "TPUv3")
            assert counterpart > cell.efficiency_gain

    # Heterogeneous designs are more efficient than homogeneous ones at
    # matched links.
    for link in (nvlink2, "Infinite"):
        assert result.gain("BestPerf", link, "A100") \
            > result.gain("Homogeneous", link, "A100")
