"""Benchmark E-F20 — Figure 20: empirical roofline vs bandwidth."""

from conftest import emit, run_once

from repro.experiments import figure20


def test_figure20_roofline(benchmark):
    result = run_once(benchmark, figure20.run)
    emit("Figure 20: BestPerf / BestPerf+ throughput vs link bandwidth",
         figure20.format_result(result))

    for name in ("BestPerf", "BestPerf+"):
        curve = sorted(result.curve(name),
                       key=lambda p: p.bandwidth_gbps)
        throughputs = [p.throughput for p in curve]
        # Monotone non-decreasing with bandwidth...
        assert all(a <= b * 1.001 for a, b in zip(throughputs,
                                                  throughputs[1:]))
        # ...and saturating: the last doubling buys little.
        assert throughputs[-1] < 1.15 * throughputs[-3]

    # BestPerf+ has more compute and saturates at a higher bandwidth than
    # BestPerf (the paper puts BestPerf+'s knee near 360 GB/s).
    assert result.saturation_bandwidth("BestPerf+") \
        >= result.saturation_bandwidth("BestPerf")
    assert result.saturation_bandwidth("BestPerf+") >= 270

    # With ample bandwidth the bigger design is strictly faster.
    plus_curve = {p.bandwidth_gbps: p.throughput
                  for p in result.curve("BestPerf+")}
    base_curve = {p.bandwidth_gbps: p.throughput
                  for p in result.curve("BestPerf")}
    assert plus_curve[630] > base_curve[630]
