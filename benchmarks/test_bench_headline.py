"""Benchmark E-HEADLINE — the abstract's end-to-end claims.

"ProSE performs Protein BERT inference at up to 6.9x speedup and 48x power
efficiency (performance/Watt) compared to one NVIDIA A100 GPU.  ProSE
achieves up to 5.5x (12.7x) speedup and 173x (249x) power efficiency
compared to TPUv3 (TPUv2)."
"""

from conftest import emit, run_once

from repro import ProSEEngine, best_perf_plus


def _run():
    base = ProSEEngine()
    plus = ProSEEngine(best_perf_plus())
    rows = {}
    for label, engine in (("BestPerf@NVLink2", base),
                          ("BestPerf+@NVLink3", plus)):
        for device in (engine.a100, engine.tpu_v3, engine.tpu_v2):
            comparison = engine.compare(device, batch=128, seq_len=512)
            rows[(label, comparison.baseline_name)] = (
                comparison.speedup, comparison.efficiency_gain)
    return rows


def test_headline_claims(benchmark):
    rows = run_once(benchmark, _run)
    lines = [f"{'operating point':>18s} {'vs':>6s} {'speedup':>8s} "
             f"{'perf/W gain':>12s}"]
    for (label, baseline), (speedup, gain) in rows.items():
        lines.append(f"{label:>18s} {baseline:>6s} {speedup:8.2f} "
                     f"{gain:12.1f}")
    emit("Headline: abstract claims", "\n".join(lines))

    # Up to 6.9x over one A100 (we land ~7.0x at the same point).
    assert 6.0 <= rows[("BestPerf+@NVLink3", "A100")][0] <= 8.0
    # Up to 5.5x over TPUv3, 12.7x over TPUv2.
    assert 4.8 <= rows[("BestPerf+@NVLink3", "TPUv3")][0] <= 6.5
    assert 11.0 <= rows[("BestPerf+@NVLink3", "TPUv2")][0] <= 15.0
    # Tens of times the A100's perf/W, hundreds of times the TPUs'.
    assert rows[("BestPerf@NVLink2", "A100")][1] >= 40
    assert rows[("BestPerf@NVLink2", "TPUv3")][1] >= 150
    assert rows[("BestPerf@NVLink2", "TPUv2")][1] >= 220
