"""Benchmark E-NUM — end-to-end numerics validation.

Validates the paper's two accuracy assertions: 32-bit accumulation
"prevent[s] precision loss" and the LUT truncation policies "do not
affect the accuracy of the models we study."
"""

from conftest import emit, run_once

from repro.experiments import numerics


def test_numerics_accuracy_preserved(benchmark):
    result = run_once(benchmark, numerics.run)
    emit("Numerics: bf16 + LUT datapath vs float reference",
         numerics.format_result(result))

    # Hidden states through the full hardware datapath track the float
    # reference almost exactly.
    assert result.output_correlation > 0.999
    assert result.output_max_error < 0.2

    # The downstream scientific conclusion is unchanged: rank correlation
    # through the hardware datapath matches the float pipeline.
    assert abs(result.accelerated_rank_correlation
               - result.reference_rank_correlation) < 0.1
    assert result.accuracy_preserved
