"""Benchmark E-SENS — robustness of the reproduced conclusions."""

from conftest import emit, run_once

from repro.experiments import sensitivity


def test_sensitivity_analysis(benchmark):
    result = run_once(benchmark, sensitivity.run)
    emit("Sensitivity: BestPerf speedup vs A100 under perturbations",
         sensitivity.format_result(result))

    # The headline conclusion — ProSE several times faster than one A100 —
    # survives every single-knob perturbation.
    low, high = result.global_range
    assert low > 2.5
    assert high < 8.0

    # Host throughput barely matters (the host is not the bottleneck at
    # the paper's operating point).
    host_low, host_high = result.range_for("host throughput")
    assert host_high / host_low < 1.1

    # Lane partitioning is the most sensitive knob (the paper sweeps it
    # in the DSE for exactly this reason), but stays within ~1.6x.
    lane_low, lane_high = result.range_for("lane partition")
    assert lane_high / lane_low < 1.8

    # Batch size saturates once threads fill (>= 64 is flat).
    batch_points = {p.setting: p.speedup_vs_a100
                    for p in result.points if p.knob == "batch size"}
    assert abs(batch_points["128"] - batch_points["64"]) \
        < 0.1 * batch_points["64"]
