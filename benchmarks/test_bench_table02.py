"""Benchmark E-T2 — Table 2: systolic-array physical characteristics."""

import pytest
from conftest import emit, run_once

from repro.experiments import table02
from repro.physical import TABLE2_ROWS


def test_table02_physical_characteristics(benchmark):
    rows = run_once(benchmark, table02.run)
    emit("Table 2: synthesized frequency / power / area at 7 nm",
         table02.format_result(rows))

    # All ten published rows reproduce verbatim from the anchored model.
    assert len(rows) == 10
    for row in rows:
        published = TABLE2_ROWS[(row.size, row.gelu, row.exp)]
        assert row.frequency_mhz == published[0]
        assert row.power_mw == published[1]

    # Structural claims: LUT-equipped arrays close timing near 858-925
    # MHz (setting the 800 MHz SIMD clock); plain arrays exceed 1.6 GHz.
    for row in rows:
        if row.gelu or row.exp:
            assert 850 <= row.frequency_mhz <= 930
        else:
            assert row.frequency_mhz >= 1626

    # Power grows superlinearly in array size (n^2 PEs dominate).
    base = {r.size: r.power_mw for r in rows if not r.gelu and not r.exp}
    assert base[64] > 3 * base[32] > 9 * base[16] * 0.9

    # Every array is a tiny fraction of one A100 (<1% power, <0.4% area).
    for row in rows:
        assert row.percent_a100_power < 1.0
        assert row.percent_a100_area < 0.4
