"""Benchmarks E-T3/E-T4 — Tables 3 & 4: DSE space and select configs."""

import pytest
from conftest import emit, run_once

from repro.experiments import table03, table04


def test_table03_space_definition(benchmark):
    result = run_once(benchmark, table03.run)
    emit("Table 3: hardware configurations for the DSE",
         table03.format_result(result))

    assert result.m_size == 64 and result.m_max_count == 3
    assert dict(result.ge_max_counts) == {16: 31, 32: 15}
    assert result.pe_budget == 16384
    # Paper explored 238 configurations; our lane-sweep enumeration: 232.
    assert 200 <= result.num_configs <= 280


def test_table04_select_configurations(benchmark):
    rows = run_once(benchmark, table04.run)
    emit("Table 4: select ProSE instances, power and area",
         table04.format_result(rows))

    by_name = {row.name: row for row in rows}

    # PE budgets: 16K for the base designs, 20K for the "+" designs.
    for name in ("BestPerf", "MostEfficient", "Homogeneous"):
        assert by_name[name].total_pes == 16384
    for name in ("BestPerf+", "MostEfficient+", "Homogeneous+"):
        assert by_name[name].total_pes == 20480

    # Modeled power tracks the published column closely for the 16K-PE
    # designs (the homogeneous row reproduces exactly).
    assert by_name["Homogeneous"].power_mw \
        == pytest.approx(by_name["Homogeneous"].paper_power_mw, rel=0.001)
    for name in ("BestPerf", "MostEfficient"):
        assert by_name[name].power_mw \
            == pytest.approx(by_name[name].paper_power_mw, rel=0.10)

    # Area likewise (the paper's 48.5 mm2 for the "+" heterogeneous rows
    # is inconsistent with its own Table 2; see EXPERIMENTS.md).
    for name in ("BestPerf", "MostEfficient", "Homogeneous",
                 "Homogeneous+"):
        assert by_name[name].area_mm2 \
            == pytest.approx(by_name[name].paper_area_mm2, rel=0.02)
