"""Antibody screening: rank Fab variants by predicted HER2 binding.

Reproduces the workflow of paper Section 2.2 end-to-end: synthesize
Herceptin-like and BH1-like Fab variant libraries, extract Protein BERT
features, train the regularized downstream model on the Herceptin library,
and rank the independent BH1 candidates by predicted binding affinity —
the in-silico step that precedes expensive wet-lab validation.

Run:  python examples/antibody_screening.py
"""

import numpy as np

from repro.binding import (
    FeatureExtractor,
    PcaRidgeModel,
    default_extractor_config,
    run_binding_study,
    spearman,
)
from repro.model import ProteinBert
from repro.model.weights import pretrained_like_weights
from repro.proteins import make_binding_dataset


def main() -> None:
    print("== Section 2.2 binding-affinity study ==")
    result = run_binding_study()
    print(f"train variants: {result.num_train}, "
          f"test variants: {result.num_test}")
    print(f"test rank correlation: {result.rank_correlation:.4f} "
          f"(paper: 0.5161)")
    print(f"experimentally valid:  {result.experimentally_valid}")
    print()

    print("== Candidate ranking for the BH1 library ==")
    dataset = make_binding_dataset()
    config = default_extractor_config()
    model = ProteinBert(config, weights=pretrained_like_weights(config,
                                                                seed=2022))
    extractor = FeatureExtractor(model)
    downstream = PcaRidgeModel().fit(
        extractor.extract(dataset.train_sequences),
        dataset.train_affinities)
    predictions = downstream.predict(
        extractor.extract(dataset.test_sequences))

    order = np.argsort(predictions)[::-1]
    print(f"{'rank':>4s} {'candidate':>12s} {'predicted':>10s} "
          f"{'true':>8s}")
    for rank, index in enumerate(order[:10], start=1):
        variant = dataset.test[index]
        print(f"{rank:4d} {variant.name:>12s} "
              f"{predictions[index]:10.3f} {variant.affinity:8.3f}")
    rho = spearman(predictions, dataset.test_affinities)
    print(f"\nranking quality (Spearman ρ): {rho:.4f}")
    top5 = {int(i) for i in order[:5]}
    best5 = {int(i) for i in np.argsort(dataset.test_affinities)[::-1][:5]}
    print(f"true top-5 binders found in predicted top-5: "
          f"{len(top5 & best5)}/5")


if __name__ == "__main__":
    main()
