"""Design-space exploration: find your own BestPerf / MostEfficient.

Runs a reduced version of the paper's Section 4.2 DSE — heterogeneous
mixes of M/G/E systolic arrays at a fixed 16K-PE budget, with static
NVLink lane partitions — and reports the best-performing and Pareto
power/area-efficient configurations.

Run:  python examples/design_space_exploration.py [--full]
      (--full sweeps all 232 configurations; default samples 60)
"""

import sys

from repro.dse import DesignSpaceExplorer, space_size


def main(full: bool = False) -> None:
    explorer = DesignSpaceExplorer(batch=32, seq_len=512)
    limit = None if full else 60
    total = space_size()
    print(f"design space: {total} configurations "
          f"({'all' if full else f'first {limit}'} evaluated)")

    result = explorer.sweep(limit=limit)
    print(f"evaluated {len(result.points)} points\n")

    print(f"{'config':<40s} {'runtime(norm)':>14s} {'power W':>8s} "
          f"{'area mm2':>9s}")
    for label, point in (("BestPerf", result.best_perf),
                         ("MostPowerEfficient",
                          result.most_power_efficient),
                         ("MostAreaEfficient",
                          result.most_area_efficient)):
        print(f"[{label}]")
        print(f"{point.config.name:<40s} {point.normalized_runtime:14.3f} "
              f"{point.power_watts:8.2f} {point.area_mm2:9.2f}")
    print(f"\nMostPowerEfficient coincides with MostAreaEfficient: "
          f"{result.most_efficient_coincides} "
          f"(the paper observed they do)")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
