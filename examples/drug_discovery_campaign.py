"""Drug-discovery campaign: screen an antibody library end to end.

The paper's motivating scenario (Sections 1-2): a therapeutic-antibody
campaign scores a variant library against a disease target, where
inference cost — not wet-lab throughput — gates how many candidates can
be screened.  This example runs the whole story:

1. generate a Fab variant library around a Herceptin-like scaffold;
2. estimate the campaign's wall-clock and energy on ProSE vs an A100,
   plus a realistic mixed-length UniProt-like workload for contrast;
3. rank the library by predicted HER2 binding with the Section 2.2
   downstream model and report the shortlist.

Run:  python examples/drug_discovery_campaign.py
"""

from repro.binding import (
    FeatureExtractor,
    PcaRidgeModel,
    default_extractor_config,
)
from repro.model import ProteinBert, pretrained_like_weights
from repro.proteins import (
    make_binding_dataset,
    screening_campaign,
    uniprot_like_workload,
)
from repro.system import CampaignSimulator, format_campaign


def main() -> None:
    print("== campaign cost: ProSE vs A100 ==")
    simulator = CampaignSimulator(max_batch=32)
    library = screening_campaign(library_size=128)
    mixed = uniprot_like_workload(count=128, seed=9)
    for workload in (library, mixed):
        reports = [simulator.run_on_prose(workload),
                   simulator.run_on_baseline(workload)]
        print(f"\nworkload: {workload.name} "
              f"({len(workload)} sequences, mean "
              f"{workload.mean_length:.0f} residues)")
        print(format_campaign(reports))
        speedup = reports[1].total_seconds / reports[0].total_seconds
        energy = (reports[1].total_energy_joules
                  / reports[0].total_energy_joules)
        print(f"ProSE advantage: {speedup:.1f}x time, {energy:.0f}x energy")

    print("\n== shortlist: rank the library by predicted binding ==")
    dataset = make_binding_dataset()
    config = default_extractor_config()
    model = ProteinBert(config,
                        weights=pretrained_like_weights(config, seed=2022))
    extractor = FeatureExtractor(model)
    head = PcaRidgeModel().fit(extractor.extract(dataset.train_sequences),
                               dataset.train_affinities)
    predictions = head.predict(extractor.extract(dataset.test_sequences))
    ranked = sorted(zip(dataset.test, predictions),
                    key=lambda pair: pair[1], reverse=True)
    print(f"{'rank':>4s} {'candidate':>12s} {'predicted':>10s} "
          f"{'true':>8s}")
    for rank, (variant, score) in enumerate(ranked[:5], start=1):
        print(f"{rank:4d} {variant.name:>12s} {score:10.3f} "
              f"{variant.affinity:8.3f}")


if __name__ == "__main__":
    main()
