"""Functional fidelity: run Protein BERT through the simulated hardware.

Executes a (scaled-down) Protein BERT forward pass entirely through the
functional systolic-array models — bfloat16 MACs, left-rotation SIMD
chaining, GELU/Exp lookup tables, host-side softmax finish — and compares
the result against the float32 reference model, the role the paper's
Verilog functional simulation plays in Figure 15.

Run:  python examples/functional_fidelity.py
"""

import numpy as np

from repro.arch import make_exp_lut, make_gelu_lut
from repro.arch.accelerated_model import AcceleratedProteinBert
from repro.model import ProteinBert, protein_bert_tiny
from repro.proteins import ProteinTokenizer, SequenceGenerator


def main() -> None:
    print("== special-function lookup tables ==")
    gelu_lut, exp_lut = make_gelu_lut(), make_exp_lut()
    print(f"GELU LUT: {gelu_lut.table_bytes} bytes "
          f"(paper: 4 KB), window {gelu_lut.spec.exponent_window}")
    print(f"Exp  LUT: {exp_lut.table_bytes} bytes "
          f"(paper: 6 KB), window {exp_lut.spec.exponent_window}")
    xs = np.linspace(-6, 6, 4001).astype(np.float32)
    print(f"GELU max |error| over [-6, 6]: "
          f"{gelu_lut.max_absolute_error(xs):.5f}")
    print()

    print("== end-to-end accelerated forward pass ==")
    config = protein_bert_tiny(num_layers=3, hidden_size=64, num_heads=4,
                               intermediate_size=128)
    model = ProteinBert(config, seed=11)
    accelerated = AcceleratedProteinBert(model, array_size=16)

    generator = SequenceGenerator(seed=5)
    tokenizer = ProteinTokenizer()
    sequences = generator.batch(count=3, length=40)
    encoding = tokenizer.encode_batch(sequences)

    error, correlation = accelerated.fidelity(encoding.ids,
                                              encoding.attention_mask)
    print(f"sequences: {len(sequences)} x {len(sequences[0])} residues")
    print(f"max |accelerated - reference|: {error:.5f}")
    print(f"output correlation:            {correlation:.6f}")
    print(f"tiles executed: {accelerated.stats.tiles}, "
          f"MACs: {accelerated.stats.mac_operations:,}")
    print(f"streamed bytes (counted):      "
          f"{accelerated.stats.streamed_bytes:,}")


if __name__ == "__main__":
    main()
