"""Quickstart: simulate Protein BERT inference on ProSE.

Builds the paper's BestPerf accelerator, runs one batched inference at the
evaluation operating point (512 tokens, batch 128, NVLink 2.0 @ 90%), and
compares throughput and power efficiency against the A100/TPU baselines.

Run:  python examples/quickstart.py
"""

from repro import ProSEEngine


def main() -> None:
    engine = ProSEEngine()   # BestPerf hardware, Protein BERT base model

    report = engine.simulate(batch=128, seq_len=512)
    print(f"configuration:    {report.config_name}")
    print(f"throughput:       {report.throughput:8.1f} inferences/s")
    print(f"batch latency:    {report.latency_seconds * 1e3:8.1f} ms")
    print(f"system power:     {report.system_power_watts:8.1f} W")
    print(f"power efficiency: {report.efficiency:8.2f} inferences/s/W")
    print(f"bottleneck:       {report.schedule.bottleneck}")
    print()

    for baseline in (engine.a100, engine.tpu_v3, engine.tpu_v2):
        comparison = engine.compare(baseline, batch=128, seq_len=512)
        print(f"vs {comparison.baseline_name:6s}: "
              f"{comparison.speedup:5.2f}x speedup, "
              f"{comparison.efficiency_gain:6.1f}x power efficiency")


if __name__ == "__main__":
    main()
