"""Schedule visualization: watch Figure 8's orchestration happen.

Simulates a small batched inference with the task log enabled, renders the
per-array Gantt chart (the textual analogue of Figure 8's timeline), shows
one thread's serial task chain, and lowers one dataflow to the command
packets that would cross the host link ahead of its operand streams.

Run:  python examples/schedule_visualization.py
"""

from repro.arch import best_perf, lower_dataflow
from repro.dataflow import build_graph_for
from repro.model import protein_bert_tiny
from repro.sched import Orchestrator, render_gantt, thread_timeline, utilization_summary


def main() -> None:
    config = protein_bert_tiny(num_layers=3, hidden_size=128, num_heads=4,
                               intermediate_size=512, max_position=256)
    orchestrator = Orchestrator(best_perf())
    result = orchestrator.run(config, batch=8, seq_len=128,
                              record_tasks=True)

    print("== schedule Gantt (one row per busy resource) ==")
    print(render_gantt(result, width=88, max_rows=12))
    print()

    print("== thread 0's serial dataflow chain (first 10 tasks) ==")
    for name, start_ms, end_ms in thread_timeline(result, thread=0)[:10]:
        print(f"  {name:<38s} {start_ms:8.3f} -> {end_ms:8.3f} ms")
    print()

    print("== resource utilization ==")
    print(utilization_summary(result))
    print()

    print("== command packets for one Dataflow 3 dispatch ==")
    graph = build_graph_for(config, batch=1, seq_len=128)
    scores = next(df for _, df in graph.dataflows
                  if df.name.endswith("attention.scores"))
    for command in lower_dataflow(scores):
        print(f"  {command.opcode.name:<10s} dims={command.dims} "
              f"alpha={command.alpha:g} -> {command.array_type.value}-Type")


if __name__ == "__main__":
    main()
