"""Sequence-length scaling: why protein inputs need new architecture.

Sweeps input length from human-language scale (32 tokens) to protein
scale (2048 tokens) and prints, per platform, the inference efficiency —
the motivation study behind the paper's Figure 1 — plus the heterogeneous
vs homogeneous comparison of Figure 4.

Run:  python examples/sequence_length_scaling.py
"""

from repro.arch import best_perf, homogeneous
from repro.baselines import a100, best_batch_for_length, tpu_v2, tpu_v3
from repro.core import ProSEEngine
from repro.model import protein_bert_base
from repro.sched import Orchestrator

LENGTHS = (32, 64, 128, 256, 512, 1024, 2048)


def main() -> None:
    config = protein_bert_base()
    engine = ProSEEngine(model_config=config)
    devices = (("A100", a100()), ("TPUv2", tpu_v2()), ("TPUv3", tpu_v3()))

    print("== inference efficiency (inferences/s/W) vs length ==")
    print(f"{'seq':>5s} {'A100':>9s} {'TPUv2':>9s} {'TPUv3':>9s} "
          f"{'ProSE':>9s}")
    for seq_len in LENGTHS:
        batch = best_batch_for_length(seq_len)
        row = [device.efficiency(config, batch, seq_len,
                                 accelerated_only=False)
               for _, device in devices]
        prose = engine.simulate(batch=64, seq_len=seq_len)
        print(f"{seq_len:5d} " + " ".join(f"{v:9.3f}" for v in row)
              + f" {prose.efficiency:9.3f}")

    print("\n== heterogeneous vs homogeneous (ms per inference) ==")
    hetero = Orchestrator(best_perf())
    homog = Orchestrator(homogeneous())
    print(f"{'seq':>5s} {'ProSE':>9s} {'Homog':>9s} {'ratio':>6s}")
    for seq_len in LENGTHS:
        r1 = hetero.run(config, batch=64, seq_len=seq_len)
        r2 = homog.run(config, batch=64, seq_len=seq_len)
        m1 = r1.makespan_seconds / 64 * 1e3
        m2 = r2.makespan_seconds / 64 * 1e3
        print(f"{seq_len:5d} {m1:9.3f} {m2:9.3f} {m2 / m1:6.2f}")


if __name__ == "__main__":
    main()
