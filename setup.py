"""Setup shim: enables legacy editable installs on offline machines.

The environment this repository targets has no network access and no
``wheel`` package, so PEP 660 editable wheels cannot be built.  ``pip
install -e . --no-build-isolation`` falls back to ``setup.py develop``
through this shim.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=("ProSE: a protein discovery engine (ASPLOS 2022) — "
                 "full Python reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    entry_points={
        "console_scripts": ["prose-repro=repro.cli:main"],
    },
)
