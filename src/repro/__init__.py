"""repro — a from-scratch Python reproduction of ProSE (ASPLOS 2022).

ProSE (Protein Systolic Engine) is a heterogeneous streaming-systolic-array
accelerator for Protein BERT inference.  This package rebuilds the paper's
entire system stack: the Protein BERT model, the ATen-style tracer and
dataflow compiler, the functional and cycle-level accelerator simulators,
the physical (power/area) model, the commodity baselines, the design-space
exploration, and the in-silico protein binding study.

Quickstart:

    >>> from repro import ProSEEngine
    >>> report = ProSEEngine().simulate(batch=128, seq_len=512)
    >>> print(report.throughput, "inferences/s")
"""

from .core import (
    Comparison,
    HardwareConfig,
    InferenceReport,
    ProSEEngine,
    best_perf,
    best_perf_plus,
    homogeneous,
    homogeneous_plus,
    most_efficient,
    most_efficient_plus,
    table4_configs,
)
from .model import BertConfig, ProteinBert, protein_bert_base, protein_bert_tiny
from .proteins import ProteinTokenizer, SequenceGenerator

__version__ = "1.1.0"

__all__ = [
    "BertConfig",
    "Comparison",
    "HardwareConfig",
    "InferenceReport",
    "ProSEEngine",
    "ProteinBert",
    "ProteinTokenizer",
    "SequenceGenerator",
    "best_perf",
    "best_perf_plus",
    "homogeneous",
    "homogeneous_plus",
    "most_efficient",
    "most_efficient_plus",
    "protein_bert_base",
    "protein_bert_tiny",
    "table4_configs",
]
