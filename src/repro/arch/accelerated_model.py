"""Functional execution of Protein BERT on simulated ProSE hardware.

This is the model-scale analogue of the paper's functional (Verilog)
simulation: the full encoder forward pass runs through the functional
systolic-array models — bfloat16 GEMMs with fp32 accumulation on M-Type
arrays, bias/residual additions through the left-rotation SIMD path, GELU
through the G-Type lookup tables, and softmax split between E-Type Exp
LUTs and host-side summation/division — so end-to-end numerical fidelity
against the float reference can be measured directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dataflow.patterns import ArrayType
from ..model.bert import ProteinBert
from ..reliability.faults import FaultModel, FaultStats
from ..telemetry import MetricsRegistry, Tracer
from .systolic import ExecutionStats, SimdOpcode, SimdStep, SystolicArray


class AcceleratedProteinBert:
    """Runs a :class:`ProteinBert` forward pass on functional ProSE arrays.

    Args:
        model: the reference model whose weights are executed.
        array_size: systolic array dimension used for all three types
            (numerics are size-independent; tiling stats are not).
        fault_model: optional seeded fault injector shared by all three
            arrays — GEMM tiles get ABFT-checked bfloat16 bit flips, LUT
            evaluations get silent flips.  ``None`` keeps the datapath
            bit-identical to the fault-free model.
        tracer: optional span tracer; :meth:`forward` then emits
            wall-clock spans (pid ``functional``) per stage and per
            encoder layer, each annotated with the systolic GEMM tile
            count, MAC, and streamed-byte deltas it contributed.
        metrics: optional registry accumulating tile/cycle/byte
            counters across forward passes.  Numerics are unaffected
            by either.
    """

    def __init__(self, model: ProteinBert, array_size: int = 16,
                 fault_model: Optional[FaultModel] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.model = model
        self.fault_model = fault_model
        self.tracer = tracer
        self.metrics = metrics
        self.m_array = SystolicArray(array_size, ArrayType.M,
                                     fault_model=fault_model)
        self.g_array = SystolicArray(array_size, ArrayType.G,
                                     fault_model=fault_model)
        self.e_array = SystolicArray(array_size, ArrayType.E,
                                     fault_model=fault_model)
        self.stats = ExecutionStats()

    @property
    def fault_stats(self) -> FaultStats:
        """Aggregated fault counters (zeros when no fault model is set)."""
        if self.fault_model is None:
            return FaultStats()
        return self.fault_model.stats

    # -- telemetry helpers ----------------------------------------------

    def _snapshot(self) -> Tuple[int, int, int, int, int]:
        stats = self.stats
        return (stats.tiles, stats.matmul_cycles, stats.simd_cycles,
                stats.streamed_bytes, stats.mac_operations)

    def _emit(self, name: str, t0: float,
              before: Tuple[int, int, int, int, int],
              **extra: object) -> None:
        """Close a wall-clock span annotated with tile/byte deltas."""
        assert self.tracer is not None
        after = self._snapshot()
        self.tracer.add_span(
            name, t0, self.tracer.now(), pid="functional", tid="model",
            category="functional", clock="wall",
            tiles=after[0] - before[0],
            matmul_cycles=after[1] - before[1],
            simd_cycles=after[2] - before[2],
            streamed_bytes=after[3] - before[3],
            mac_operations=after[4] - before[4], **extra)

    # -- Dataflow 1: MatMul -> MulAdd on the M-Type array ---------------

    def _dataflow1(self, x: np.ndarray, weight: np.ndarray,
                   bias: Optional[np.ndarray],
                   residual: Optional[np.ndarray] = None) -> np.ndarray:
        steps = []
        if bias is not None:
            steps.append(SimdStep(SimdOpcode.ADD, bias, broadcast_rows=True))
        if residual is not None:
            steps.append(SimdStep(SimdOpcode.ADD, residual))
        return self.m_array.execute_chain(x, weight, tuple(steps), self.stats)

    # -- Dataflow 2: MatMul -> MulAdd -> GELU on the G-Type array -------

    def _dataflow2(self, x: np.ndarray, weight: np.ndarray,
                   bias: np.ndarray) -> np.ndarray:
        steps = (SimdStep(SimdOpcode.ADD, bias, broadcast_rows=True),
                 SimdStep(SimdOpcode.GELU))
        return self.g_array.execute_chain(x, weight, steps, self.stats)

    # -- Dataflow 3: batched MatMul -> MatDiv -> Exp -> host -> MatMul --

    def _attention_scores(self, q: np.ndarray, k: np.ndarray,
                          scale: float,
                          mask_bias: Optional[np.ndarray]) -> np.ndarray:
        """Per-head scores through the E-Type array and host softmax."""
        steps = [SimdStep(SimdOpcode.MUL, 1.0 / scale)]
        if mask_bias is not None:
            steps.append(SimdStep(SimdOpcode.ADD, mask_bias))
        steps.append(SimdStep(SimdOpcode.EXP))
        exponentials = self.e_array.execute_chain(q, k.T, tuple(steps),
                                                  self.stats)
        # Softmax summation and division run on the host CPU in fp32.
        sums = exponentials.astype(np.float32).sum(axis=-1, keepdims=True)
        return exponentials / np.maximum(sums, 1e-30)

    # -- Full forward ----------------------------------------------------

    def forward(self, token_ids: np.ndarray,
                attention_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Accelerated forward pass; shapes match the reference model."""
        model = self.model
        cfg = model.config
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        batch, seq = token_ids.shape
        heads, head_dim = cfg.num_heads, cfg.head_dim

        tracer = self.tracer
        active = tracer is not None or self.metrics is not None
        run_t0 = tracer.now() if tracer is not None else 0.0
        run_snapshot = self._snapshot() if active else None

        # Embeddings and layer norms are host-side ("Other") work.
        hidden = model.embed(token_ids)
        if tracer is not None:
            tracer.add_span("embed", run_t0, tracer.now(),
                            pid="functional", tid="model",
                            category="functional", clock="wall",
                            batch=batch, seq_len=seq)

        for layer_index, layer in enumerate(model.layers):
            if tracer is not None:
                layer_t0 = tracer.now()
                layer_snapshot = self._snapshot()
            flat = hidden.reshape(batch * seq, cfg.hidden_size)
            attention = layer.attention
            q = self._dataflow1(flat, attention.query.weight,
                                attention.query.bias)
            k = self._dataflow1(flat, attention.key.weight,
                                attention.key.bias)
            v = self._dataflow1(flat, attention.value.weight,
                                attention.value.bias)

            def heads_of(x: np.ndarray) -> np.ndarray:
                return (x.reshape(batch, seq, heads, head_dim)
                        .transpose(0, 2, 1, 3))

            qh, kh, vh = heads_of(q), heads_of(k), heads_of(v)
            scale = float(np.sqrt(head_dim))
            context = np.empty_like(qh)
            for b in range(batch):
                mask_bias = None
                if attention_mask is not None:
                    bias_row = ((1.0 - attention_mask[b]) * -1e9
                                ).astype(np.float32)
                    mask_bias = np.broadcast_to(bias_row, (seq, seq))
                for h in range(heads):
                    probabilities = self._attention_scores(
                        qh[b, h], kh[b, h], scale, mask_bias)
                    context[b, h] = self.e_array.matmul(
                        probabilities, vh[b, h], self.stats)
            merged = (context.transpose(0, 2, 1, 3)
                      .reshape(batch * seq, cfg.hidden_size))

            attended = self._dataflow1(
                merged, attention.output.weight, attention.output.bias,
                residual=flat)
            hidden = layer.attention_norm.forward(
                attended.reshape(batch, seq, cfg.hidden_size))

            flat = hidden.reshape(batch * seq, cfg.hidden_size)
            inner = self._dataflow2(flat, layer.intermediate.weight,
                                    layer.intermediate.bias)
            projected = self._dataflow1(inner, layer.output.weight,
                                        layer.output.bias, residual=flat)
            hidden = layer.output_norm.forward(
                projected.reshape(batch, seq, cfg.hidden_size))
            if tracer is not None:
                self._emit(f"encoder_layer[{layer_index}]", layer_t0,
                           layer_snapshot, layer=layer_index)
        if tracer is not None and run_snapshot is not None:
            self._emit("forward", run_t0, run_snapshot,
                       batch=batch, seq_len=seq,
                       layers=len(model.layers))
        if self.metrics is not None and run_snapshot is not None:
            final = self._snapshot()
            self.metrics.counter("functional/forward_passes").inc(1)
            self.metrics.counter("functional/tokens").inc(batch * seq)
            for field, before, value in zip(
                    ("tiles", "matmul_cycles", "simd_cycles",
                     "streamed_bytes", "mac_operations"),
                    run_snapshot, final):
                self.metrics.counter(f"functional/{field}").inc(
                    value - before)
        return hidden

    def fidelity(self, token_ids: np.ndarray,
                 attention_mask: Optional[np.ndarray] = None
                 ) -> Tuple[float, float]:
        """(max abs error, correlation) of accelerated vs reference output."""
        accelerated = self.forward(token_ids, attention_mask)
        reference = self.model.forward(token_ids, attention_mask)
        error = float(np.max(np.abs(accelerated - reference)))
        a, r = accelerated.ravel(), reference.ravel()
        correlation = float(np.corrcoef(a, r)[0, 1])
        return error, correlation
