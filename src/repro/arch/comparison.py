"""Microarchitectural step comparison: TPUv2 vs ProSE (Figures 11-12).

The paper's third contribution is a step-by-step contrast of how one
MatMul and one MulAdd execute on a weight-stationary TPUv2 (global
dataflow through the Unified Buffer) versus ProSE's output-stationary
streaming design (local dataflow through the accumulators).  This module
encodes those operation sequences symbolically, so the step counts, the
Unified-Buffer round trips, and the intermediate-data traffic can be
computed and compared for any operand shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class StepKind(enum.Enum):
    """Classes of microarchitectural steps in Figures 11-12."""

    STREAM_IN = "stream-in"          # operands from host/DDR
    BUFFER_WRITE = "buffer-write"    # write the Unified Buffer
    BUFFER_READ = "buffer-read"      # read the Unified Buffer
    SETUP = "setup"                  # input setup / weight preload
    COMPUTE = "compute"              # MatMul / accumulate / SIMD op
    WRITE_BACK = "write-back"        # results to the host


@dataclass(frozen=True)
class Step:
    """One numbered operation of a Figure 11/12 sequence."""

    kind: StepKind
    description: str
    bytes_moved: int = 0


@dataclass(frozen=True)
class OperationTrace:
    """A full operation sequence on one microarchitecture."""

    machine: str
    operation: str
    steps: Tuple[Step, ...]

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def buffer_trips(self) -> int:
        """Unified-Buffer reads + writes (zero for ProSE by design)."""
        return sum(1 for step in self.steps
                   if step.kind in (StepKind.BUFFER_READ,
                                    StepKind.BUFFER_WRITE))

    @property
    def intermediate_bytes(self) -> int:
        """Bytes parked in local scratch between dependent operations."""
        return sum(step.bytes_moved for step in self.steps
                   if step.kind in (StepKind.BUFFER_READ,
                                    StepKind.BUFFER_WRITE))


def tpu_matmul_trace(m: int, k: int, n: int,
                     element_bytes: int = 2) -> OperationTrace:
    """The eight TPUv2 operations of Figure 11(a) for one MatMul step."""
    a_bytes = m * k * element_bytes
    b_bytes = k * n * element_bytes
    c_bytes = m * n * element_bytes
    steps = (
        Step(StepKind.STREAM_IN, "load weight matrix B into the Weight "
             "FIFO from DDR", b_bytes),
        Step(StepKind.SETUP, "pre-load weights into the systolic array "
             "(weight-stationary)"),
        Step(StepKind.BUFFER_WRITE, "stream matrix A from the host into "
             "the Unified Buffer", a_bytes),
        Step(StepKind.SETUP, "set up input matrix A"),
        Step(StepKind.BUFFER_READ, "shift input matrix A into the "
             "systolic array", a_bytes),
        Step(StepKind.COMPUTE, "perform MatMul"),
        Step(StepKind.COMPUTE, "perform accumulation"),
        Step(StepKind.BUFFER_WRITE, "write partial results to the "
             "Unified Buffer", c_bytes),
    )
    return OperationTrace(machine="TPUv2", operation="MatMul", steps=steps)


def prose_matmul_trace(m: int, k: int, n: int,
                       element_bytes: int = 2) -> OperationTrace:
    """The four ProSE operations of Figure 11(b) for one MatMul step."""
    steps = (
        Step(StepKind.STREAM_IN, "stream matrix B from the host and "
             "shift into the systolic array", k * n * element_bytes),
        Step(StepKind.STREAM_IN, "stream matrix A from the host and "
             "shift into the systolic array", m * k * element_bytes),
        Step(StepKind.COMPUTE, "perform MatMul (accumulate in the "
             "32-bit accumulators)"),
        Step(StepKind.WRITE_BACK, "write partial results back to the "
             "host", m * n * element_bytes),
    )
    return OperationTrace(machine="ProSE", operation="MatMul", steps=steps)


def tpu_muladd_trace(m: int, n: int,
                     element_bytes: int = 2) -> OperationTrace:
    """TPUv2's global-dataflow MulAdd of Figure 12(a): α·A + B.

    Three trips through the pipeline: scale A through Normalization,
    stage B, then add — each round-tripping the Unified Buffer.
    """
    tensor = m * n * element_bytes
    steps = (
        Step(StepKind.BUFFER_WRITE, "stream matrix A into the Unified "
             "Buffer", tensor),
        Step(StepKind.SETUP, "load all-ones weights into the array"),
        Step(StepKind.BUFFER_READ, "shift A through the array", tensor),
        Step(StepKind.COMPUTE, "scale by alpha in Normalization"),
        Step(StepKind.BUFFER_WRITE, "write alpha*A back to the Unified "
             "Buffer", tensor),
        Step(StepKind.BUFFER_WRITE, "stream matrix B into the Unified "
             "Buffer", tensor),
        Step(StepKind.BUFFER_READ, "stage B in the Accumulation unit",
             tensor),
        Step(StepKind.BUFFER_READ, "stream alpha*A back through the "
             "array", tensor),
        Step(StepKind.COMPUTE, "ADD in the Accumulation stage"),
        Step(StepKind.BUFFER_WRITE, "write alpha*A + B to the Unified "
             "Buffer", tensor),
    )
    return OperationTrace(machine="TPUv2", operation="MulAdd", steps=steps)


def prose_muladd_trace(m: int, n: int,
                       element_bytes: int = 2) -> OperationTrace:
    """ProSE's local-dataflow MulAdd of Figure 12(b): one trip, chained."""
    tensor = m * n * element_bytes
    steps = (
        Step(StepKind.STREAM_IN, "stream matrix A and shift into the "
             "systolic array", tensor),
        Step(StepKind.SETUP, "broadcast scalar alpha to the SIMD ALUs"),
        Step(StepKind.COMPUTE, "left-rotate and multiply alpha*A in the "
             "SIMD ALUs"),
        Step(StepKind.STREAM_IN, "stream matrix B into the vector "
             "register", tensor),
        Step(StepKind.COMPUTE, "left-rotate and add alpha*A + B"),
        Step(StepKind.WRITE_BACK, "write results back to the host",
             tensor),
    )
    return OperationTrace(machine="ProSE", operation="MulAdd", steps=steps)


@dataclass(frozen=True)
class StepComparison:
    """Side-by-side step economics of the two microarchitectures."""

    operation: str
    tpu: OperationTrace
    prose: OperationTrace

    @property
    def step_ratio(self) -> float:
        return self.tpu.num_steps / self.prose.num_steps

    @property
    def prose_has_no_buffer_trips(self) -> bool:
        return self.prose.buffer_trips == 0


def compare_matmul(m: int = 4, k: int = 4, n: int = 4) -> StepComparison:
    """Figure 11's MatMul comparison at the given shape."""
    return StepComparison(operation="MatMul",
                          tpu=tpu_matmul_trace(m, k, n),
                          prose=prose_matmul_trace(m, k, n))


def compare_muladd(m: int = 4, n: int = 4) -> StepComparison:
    """Figure 12's MulAdd comparison at the given shape."""
    return StepComparison(operation="MulAdd",
                          tpu=tpu_muladd_trace(m, n),
                          prose=prose_muladd_trace(m, n))


def format_comparison(comparison: StepComparison) -> str:
    lines = [f"== {comparison.operation} ==" ]
    for trace in (comparison.tpu, comparison.prose):
        lines.append(f"{trace.machine}: {trace.num_steps} operations, "
                     f"{trace.buffer_trips} Unified-Buffer trips, "
                     f"{trace.intermediate_bytes} intermediate bytes")
        for index, step in enumerate(trace.steps, start=1):
            lines.append(f"  {index}. [{step.kind.value}] "
                         f"{step.description}")
    return "\n".join(lines)
