"""ProSE hardware configurations (Figure 9, Table 4).

A ProSE instance is a heterogeneous collection of systolic arrays —
M-Type (matmul + SIMD), G-Type (+ GELU LUTs), E-Type (+ Exp LUTs) — of
varying sizes and counts, fed by a statically partitioned host link.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..dataflow.patterns import ArrayType
from .interconnect import LanePartition, LinkConfig, make_partition, nvlink

#: Double-pumped matmul clock (paper Section 4.1).
MATMUL_FREQUENCY = 1.6e9

#: Halved SIMD / special-function clock.
SIMD_FREQUENCY = 0.8e9

#: Thread count chosen "through experimentation" in the paper.
DEFAULT_THREADS = 32


@dataclass(frozen=True)
class ArrayGroup:
    """A set of identical systolic arrays within one ProSE instance."""

    array_type: ArrayType
    size: int
    count: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.count <= 0:
            raise ValueError("array size and count must be positive")

    @property
    def pes(self) -> int:
        return self.count * self.size * self.size

    @property
    def label(self) -> str:
        return f"{self.count}x {self.size}x{self.size} {self.array_type.value}"


@dataclass(frozen=True)
class HardwareConfig:
    """One complete ProSE accelerator instance.

    Attributes:
        name: configuration label ("BestPerf", "MostEfficient", ...).
        groups: one :class:`ArrayGroup` per (type, size) combination; all
            three types must be present (functionality requires them).
        link: host-accelerator link operating point.
        partition: static lane split across array types.
        threads: orchestration software threads.
        use_input_buffer: provision the partial input buffer for A-operand
            reuse (Figure 11d).
        pooled: homogeneous-baseline mode — every array carries both LUT
            kinds (the 64×64 yes/yes row of Table 2) and may execute any
            dataflow, as the four-identical-arrays baseline of Figure 4.
        chained: ProSE's novel left-rotation dataflow chaining: chained
            MatMul→SIMD sequences keep intermediates in the accumulators.
            When False (conventional systolic baseline), every elementwise
            op costs a drain + host round trip + reload of the resident
            matrix — the "global dataflow" of Figure 11/12's TPU contrast.
        matmul_frequency / simd_frequency: the two clock domains.
    """

    name: str
    groups: Tuple[ArrayGroup, ...]
    link: LinkConfig = field(default_factory=lambda: nvlink(2, 0.9))
    partition: LanePartition = field(
        default_factory=lambda: make_partition(2, 2, 2))
    threads: int = DEFAULT_THREADS
    use_input_buffer: bool = True
    pooled: bool = False
    chained: bool = True
    matmul_frequency: float = MATMUL_FREQUENCY
    simd_frequency: float = SIMD_FREQUENCY

    def __post_init__(self) -> None:
        present = {group.array_type for group in self.groups}
        if present != set(ArrayType):
            raise ValueError(
                f"{self.name}: all of M, G, E types are required, "
                f"got {sorted(t.value for t in present)}")
        if self.threads <= 0:
            raise ValueError("threads must be positive")

    @property
    def total_pes(self) -> int:
        return sum(group.pes for group in self.groups)

    def groups_of(self, array_type: ArrayType) -> Tuple[ArrayGroup, ...]:
        return tuple(g for g in self.groups if g.array_type is array_type)

    def count_of(self, array_type: ArrayType) -> int:
        return sum(g.count for g in self.groups_of(array_type))

    def type_bandwidth(self, array_type: ArrayType) -> float:
        """Bytes/second the static partition grants this type group."""
        return self.partition.bandwidth(array_type, self.link)

    def with_link(self, link: LinkConfig) -> "HardwareConfig":
        """The same hardware at a different link operating point."""
        return replace(self, link=link)

    def with_threads(self, threads: int) -> "HardwareConfig":
        return replace(self, threads=threads)

    def summary(self) -> Dict[str, str]:
        return {
            "name": self.name,
            "arrays": ", ".join(group.label for group in self.groups),
            "PEs": str(self.total_pes),
            "link": self.link.name,
            "threads": str(self.threads),
        }


def _config(name: str, m: Tuple[int, int], g: Tuple[int, int],
            e: Tuple[int, int], partition: LanePartition,
            pooled: bool = False, chained: bool = True) -> HardwareConfig:
    return HardwareConfig(name=name, groups=(
        ArrayGroup(ArrayType.M, size=m[0], count=m[1]),
        ArrayGroup(ArrayType.G, size=g[0], count=g[1]),
        ArrayGroup(ArrayType.E, size=e[0], count=e[1]),
    ), partition=partition, pooled=pooled, chained=chained)


def best_perf() -> HardwareConfig:
    """Table 4 'BestPerf': 2× 64×64 M, 10× 16×16 G, 22× 16×16 E (16K PEs)."""
    return _config("BestPerf", (64, 2), (16, 10), (16, 22),
                   make_partition(2, 2, 2))


def most_efficient() -> HardwareConfig:
    """Table 4 'MostEfficient': 2× 64×64 M, 3× 32×32 G, 20× 16×16 E."""
    return _config("MostEfficient", (64, 2), (32, 3), (16, 20),
                   make_partition(2, 2, 2))


def homogeneous() -> HardwareConfig:
    """Table 4 'Homogeneous': 4× 64×64 arrays (one TPU-array equivalent)."""
    return _config("Homogeneous", (64, 2), (64, 1), (64, 1),
                   make_partition(2, 2, 2), pooled=True, chained=False)


def best_perf_plus() -> HardwareConfig:
    """Table 4 'BestPerf+': 20K PEs, NVLink 3.0-class links."""
    config = _config("BestPerf+", (64, 2), (32, 5), (32, 7),
                     make_partition(2, 2, 2))
    return config.with_link(nvlink(3, 0.9))


def most_efficient_plus() -> HardwareConfig:
    """Table 4 'MostEfficient+' (same mix as BestPerf+ per the DSE)."""
    config = _config("MostEfficient+", (64, 2), (32, 5), (32, 7),
                     make_partition(2, 2, 2))
    return config.with_link(nvlink(3, 0.9))


def homogeneous_plus() -> HardwareConfig:
    """Table 4 'Homogeneous+': 2+1+2 64×64 arrays (20K PEs)."""
    config = _config("Homogeneous+", (64, 2), (64, 1), (64, 2),
                     make_partition(2, 2, 2), pooled=True, chained=False)
    return config.with_link(nvlink(3, 0.9))


def table4_configs() -> Tuple[HardwareConfig, ...]:
    """All six select configurations of Table 4."""
    return (best_perf(), most_efficient(), homogeneous(),
            best_perf_plus(), most_efficient_plus(), homogeneous_plus())
