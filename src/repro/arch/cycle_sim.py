"""Cycle-by-cycle PE-grid simulation of one ProSE systolic array.

This plays the role of the paper's Verilog functional simulation (Figure
15): every register transfer is modeled — skewed operand injection, per-PE
MAC, left-rotation through the SIMD column — so the fast functional model
in :mod:`repro.arch.systolic` can be validated against it bit-for-bit on
small matrices.

Only use this for small arrays/tests; it is intentionally literal and slow.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..model.tensors import to_bfloat16
from .pe import ProcessingElement


class CycleAccurateArray:
    """An n×n output-stationary systolic array simulated per cycle.

    Args:
        size: array dimension ``n``.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.grid: List[List[ProcessingElement]] = [
            [ProcessingElement() for _ in range(size)] for _ in range(size)]
        self.cycles_elapsed = 0

    def clear(self) -> None:
        """Zero every accumulator (start of a new output tile)."""
        for row in self.grid:
            for pe in row:
                pe.clear()

    def accumulators(self) -> np.ndarray:
        """Snapshot of all accumulator values (fp32)."""
        return np.array([[pe.accumulator for pe in row] for row in self.grid],
                        dtype=np.float32)

    def load_accumulators(self, values: np.ndarray) -> None:
        """Preload accumulators (e.g. to test simd mode in isolation)."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (self.size, self.size):
            raise ValueError("accumulator preload must be n×n")
        for i, row in enumerate(self.grid):
            for j, pe in enumerate(row):
                pe.accumulator = float(values[i, j])

    # ------------------------------------------------------------------
    # matmul mode (Figure 5b): data moves top→bottom and left→right with
    # skewed injection; each PE MACs its two registers every cycle.
    # ------------------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute ``A @ B`` for A of shape (n, k) and B of shape (k, n).

        Operands are rounded to bfloat16 at the streaming buffers; the MAC
        accumulates in fp32.  Returns the accumulator grid after draining.
        """
        n = self.size
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.shape[0] != n or b.shape[1] != n or a.shape[1] != b.shape[0]:
            raise ValueError("matmul operands must be (n,k) and (k,n)")
        k = a.shape[1]
        a = to_bfloat16(a)
        b = to_bfloat16(b)

        self.clear()
        total_cycles = k + 2 * (n - 1) + 1
        for cycle in range(total_cycles):
            # Shift right/down starting from the far corner so each register
            # reads its neighbour's *previous* value.
            for i in range(n - 1, -1, -1):
                for j in range(n - 1, -1, -1):
                    pe = self.grid[i][j]
                    a_in = (self.grid[i][j - 1].reg_a if j > 0
                            else self._edge(a, i, cycle - i, from_left=True))
                    b_in = (self.grid[i - 1][j].reg_b if i > 0
                            else self._edge(b, cycle - j, j, from_left=False))
                    pe.reg_a = a_in
                    pe.reg_b = b_in
            for row in self.grid:
                for pe in row:
                    pe.mac()
            self.cycles_elapsed += 1
        return self.accumulators()

    @staticmethod
    def _edge(matrix: np.ndarray, i: int, j: int, from_left: bool) -> float:
        """Skewed edge injection; zero outside the valid operand window."""
        k = matrix.shape[1] if from_left else matrix.shape[0]
        index = j if from_left else i
        if 0 <= index < k:
            return float(matrix[i, j])
        return 0.0

    # ------------------------------------------------------------------
    # simd mode (Figure 5c): the array acts as a large left column rotator.
    # Each cycle the leftmost column exits into the SIMD ALUs, the result
    # wraps into the rightmost column, everything else shifts left.
    # ------------------------------------------------------------------

    def simd_rotate(self, alu: Callable[[np.ndarray, int], np.ndarray],
                    frequency_ratio: int = 2) -> np.ndarray:
        """Apply one elementwise op to the resident matrix via left rotation.

        Args:
            alu: callable ``(column_values, column_index) -> results``; the
                column index identifies which original matrix column is at
                the SIMD ALUs this cycle (so a streamed vector operand can
                supply the matching column).
            frequency_ratio: matmul-clock cycles per simd-clock cycle (the
                paper double-pumps matmul at 1.6 GHz vs simd at 800 MHz).

        Returns:
            The accumulator grid after n rotations (back in place).
        """
        n = self.size
        for step in range(n):
            column = np.array([self.grid[i][0].accumulator for i in range(n)],
                              dtype=np.float32)
            results = to_bfloat16(np.asarray(alu(column, step),
                                             dtype=np.float32))
            if results.shape != (n,):
                raise ValueError("ALU must return one result per row")
            for i in range(n):
                for j in range(n - 1):
                    self.grid[i][j].accumulator = self.grid[i][j + 1].accumulator
                self.grid[i][n - 1].accumulator = float(results[i])
            self.cycles_elapsed += frequency_ratio
        return self.accumulators()

    def readout(self) -> np.ndarray:
        """bfloat16 view of the accumulators (the PE OUTPUT[31:16] port)."""
        return to_bfloat16(self.accumulators())
