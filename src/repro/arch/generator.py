"""Structural hardware generator — the Chisel-flow analogue.

The paper's implementation methodology (Section 4.1) generates systolic
arrays, GELU units, and Exp units in Chisel, compiles to Verilog, and
synthesizes them.  This module is the Python analogue of that generator:
given (size, LUT options) it elaborates the design into a component
inventory — MAC datapaths, operand/accumulator registers, rotation muxes,
SIMD ALUs, LUT bits, streaming-buffer bits — and rolls the inventory up
into power/area estimates that can be cross-checked against the
synthesized anchors of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..dataflow.patterns import ArrayType
from .lut import EXP_SPEC, GELU_SPEC
from .streaming import DEFAULT_DEPTH

#: Per-component 7 nm unit costs, fit from the Table 2 anchors: a bf16
#: multiplier + fp32 adder MAC datapath dominates; registers and muxes
#: fill in the linear-in-n terms.
MAC_POWER_MW = 0.55
MAC_AREA_UM2 = 620.0
REGISTER_BIT_POWER_MW = 0.00035
REGISTER_BIT_AREA_UM2 = 0.28
MUX_POWER_MW = 0.012
MUX_AREA_UM2 = 12.0
ALU_POWER_MW = 0.30
ALU_AREA_UM2 = 300.0
LUT_BIT_POWER_MW = 0.00018
LUT_BIT_AREA_UM2 = 0.11


@dataclass(frozen=True)
class ComponentInventory:
    """Elaborated structure of one ProSE systolic array.

    Counts follow the microarchitecture of Figures 5 and 10: one MAC per
    PE; two 16-bit operand registers and one 32-bit accumulator per PE;
    one left-rotation mux per PE; n SIMD ALUs with vector/scalar
    registers; n LUT replicas per attached special function; two 8-deep
    n-wide streaming buffers.
    """

    size: int
    array_type: ArrayType
    macs: int
    operand_register_bits: int
    accumulator_bits: int
    rotation_muxes: int
    simd_alus: int
    vector_register_bits: int
    lut_bits: int
    stream_buffer_bits: int

    @property
    def total_register_bits(self) -> int:
        return (self.operand_register_bits + self.accumulator_bits
                + self.vector_register_bits + self.stream_buffer_bits)

    def power_mw(self) -> float:
        """Roll-up dynamic+leakage power estimate at 7 nm."""
        return (self.macs * MAC_POWER_MW
                + self.total_register_bits * REGISTER_BIT_POWER_MW
                + self.rotation_muxes * MUX_POWER_MW
                + self.simd_alus * ALU_POWER_MW
                + self.lut_bits * LUT_BIT_POWER_MW)

    def area_mm2(self) -> float:
        """Roll-up area estimate at 7 nm."""
        total_um2 = (self.macs * MAC_AREA_UM2
                     + self.total_register_bits * REGISTER_BIT_AREA_UM2
                     + self.rotation_muxes * MUX_AREA_UM2
                     + self.simd_alus * ALU_AREA_UM2
                     + self.lut_bits * LUT_BIT_AREA_UM2)
        return total_um2 / 1e6


def elaborate(size: int, array_type: ArrayType,
              buffer_depth: int = DEFAULT_DEPTH) -> ComponentInventory:
    """Elaborate an (n, type) systolic array into its component counts."""
    if size <= 0:
        raise ValueError("array size must be positive")
    pes = size * size
    lut_bits = 0
    if array_type.has_gelu:
        lut_bits += size * GELU_SPEC.table_bytes * 8
    if array_type.has_exp:
        lut_bits += size * EXP_SPEC.table_bytes * 8
    return ComponentInventory(
        size=size,
        array_type=array_type,
        macs=pes,
        operand_register_bits=pes * 2 * 16,
        accumulator_bits=pes * 32,
        rotation_muxes=pes,
        simd_alus=size,
        vector_register_bits=size * 16 + 16,      # vector + scalar regs
        lut_bits=lut_bits,
        stream_buffer_bits=2 * buffer_depth * size * 16,
    )


def elaboration_report(size: int, array_type: ArrayType) -> str:
    """Human-readable elaboration summary with the roll-up estimates."""
    inventory = elaborate(size, array_type)
    lines = [
        f"{size}x{size} {array_type.value}-Type systolic array",
        f"  MAC datapaths:        {inventory.macs}",
        f"  operand registers:    {inventory.operand_register_bits} bits",
        f"  accumulators:         {inventory.accumulator_bits} bits",
        f"  rotation muxes:       {inventory.rotation_muxes}",
        f"  SIMD ALUs:            {inventory.simd_alus}",
        f"  LUT storage:          {inventory.lut_bits // 8} bytes",
        f"  streaming buffers:    {inventory.stream_buffer_bits} bits",
        f"  roll-up power:        {inventory.power_mw():.1f} mW",
        f"  roll-up area:         {inventory.area_mm2():.3f} mm2",
    ]
    return "\n".join(lines)


def crosscheck_against_table2() -> Dict[Tuple[int, str], Tuple[float, float]]:
    """Compare roll-up estimates with the synthesized Table 2 anchors.

    Returns:
        Mapping (size, type letter) -> (power ratio, area ratio), where a
        ratio of 1.0 means the structural roll-up reproduces the
        synthesized value exactly.
    """
    from ..physical.synthesis import characteristics

    ratios = {}
    for size in (16, 32, 64):
        for array_type in (ArrayType.M, ArrayType.G, ArrayType.E):
            inventory = elaborate(size, array_type)
            anchor = characteristics(size, gelu=array_type.has_gelu,
                                     exp=array_type.has_exp)
            ratios[(size, array_type.value)] = (
                inventory.power_mw() / anchor.power_mw,
                inventory.area_mm2() / anchor.area_mm2)
    return ratios
