"""Host-accelerator interconnect model (NVLink lanes, Section 4.2).

ProSE streams continuously from the host, so the external link is a
first-class architectural resource.  The paper provisions NVLink 2.0 as six
45 GB/s lanes (270 GB/s at a conservative 90% of the 300 GB/s spec) and
*statically partitions* the lanes across the M-, G-, and E-Type systolic
array groups; NVLink 3.0 doubles the per-generation total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..dataflow.patterns import ArrayType

GB = 1e9

#: Published per-generation raw link totals (bytes/second).
NVLINK_RAW_BANDWIDTH: Dict[str, float] = {
    "nvlink2": 300 * GB,
    "nvlink3": 600 * GB,
}

#: Lane counts per generation (six 45/90 GB/s lanes at 90% efficiency).
NVLINK_LANES = 6

#: One-way transfer latency (conservative NVLink small-transfer latency).
LINK_LATENCY_SECONDS = 1.3e-6

#: Fixed software dispatch cost per host-accelerator transfer (driver,
#: doorbell, and the mutex-guarded I/O buffer handoff).
DISPATCH_OVERHEAD_SECONDS = 2.0e-6


@dataclass(frozen=True)
class LinkConfig:
    """An interconnect operating point.

    Attributes:
        name: label used in result tables ("NVLink 2.0 @ 90%", ...).
        total_bandwidth: achievable bytes/second across all lanes.
        lanes: number of independently assignable lanes.
        latency: one-way latency in seconds.
    """

    name: str
    total_bandwidth: float
    lanes: int = NVLINK_LANES
    latency: float = LINK_LATENCY_SECONDS

    def __post_init__(self) -> None:
        if self.total_bandwidth <= 0 or self.lanes <= 0:
            raise ValueError("bandwidth and lanes must be positive")

    @property
    def lane_bandwidth(self) -> float:
        return self.total_bandwidth / self.lanes


def nvlink(generation: int, efficiency: float = 0.9) -> LinkConfig:
    """Standard operating points used throughout the evaluation.

    Args:
        generation: 2 or 3.
        efficiency: achievable fraction of raw bandwidth (paper uses 80%
            and 90%).
    """
    key = f"nvlink{generation}"
    if key not in NVLINK_RAW_BANDWIDTH:
        raise ValueError("NVLink generation must be 2 or 3")
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    total = NVLINK_RAW_BANDWIDTH[key] * efficiency
    return LinkConfig(
        name=f"NVLink {generation}.0 @ {int(efficiency * 100)}% "
             f"{total / GB:.0f} GB/s",
        total_bandwidth=total)


def infinite_link() -> LinkConfig:
    """The evaluation's 'Infinite' bandwidth point."""
    return LinkConfig(name="Infinite", total_bandwidth=1e18, latency=0.0)


def custom_link(bandwidth_gbps: float) -> LinkConfig:
    """A link with an arbitrary total bandwidth in GB/s (roofline sweeps)."""
    return LinkConfig(name=f"{bandwidth_gbps:.0f} GB/s",
                      total_bandwidth=bandwidth_gbps * GB)


@dataclass(frozen=True)
class LanePartition:
    """A static assignment of link lanes to array-type groups.

    Attributes:
        lanes_by_type: lanes granted to each of M, G, E.  Every type needs
            at least one lane (all types are required for functionality).
    """

    lanes_by_type: Tuple[Tuple[ArrayType, int], ...]

    def __post_init__(self) -> None:
        seen = {t for t, _ in self.lanes_by_type}
        if seen != set(ArrayType):
            raise ValueError("partition must cover M, G, and E types")
        if any(count < 1 for _, count in self.lanes_by_type):
            raise ValueError("every array type needs at least one lane")

    @property
    def total_lanes(self) -> int:
        return sum(count for _, count in self.lanes_by_type)

    def lanes(self, array_type: ArrayType) -> int:
        for candidate, count in self.lanes_by_type:
            if candidate is array_type:
                return count
        raise KeyError(array_type)

    def bandwidth(self, array_type: ArrayType, link: LinkConfig) -> float:
        """Bytes/second available to one array-type group."""
        return link.lane_bandwidth * self.lanes(array_type)


def make_partition(m_lanes: int, g_lanes: int, e_lanes: int) -> LanePartition:
    """Convenience constructor for a static M/G/E lane split."""
    return LanePartition(lanes_by_type=(
        (ArrayType.M, m_lanes), (ArrayType.G, g_lanes), (ArrayType.E, e_lanes)))


def enumerate_partitions(total_lanes: int = NVLINK_LANES):
    """All static partitions of ``total_lanes`` over the three types.

    The DSE sweeps this set per hardware mix ("The number of lanes per
    systolic array type is swept as part of the design space exploration").
    """
    partitions = []
    for m in range(1, total_lanes - 1):
        for g in range(1, total_lanes - m):
            e = total_lanes - m - g
            if e >= 1:
                partitions.append(make_partition(m, g, e))
    return partitions
