"""Host-accelerator command interface (the ProSE "ISA").

Every dataflow dispatch crosses the link as a small command packet ahead
of the operand streams: which operation sequence to run, the tile shapes,
the scalar constants (MulAdd's α/β, MatDiv's reciprocal), and the target
array.  This module defines those packets and a deterministic binary
encoding, modeling the software-hardware contract of the paper's
orchestration layer (Section 3.1).

The encoding is little-endian and fixed-layout:

    byte 0      magic (0xC5)
    byte 1      opcode
    byte 2      array type (0=M, 1=G, 2=E)
    byte 3      flags (bit 0: use partial input buffer)
    bytes 4-27  three u64 dims (m, k, n) — unused dims zero
    bytes 28-35 f32 alpha, f32 beta
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..dataflow.patterns import ArrayType, Dataflow
from ..trace.ops import Op, OpKind

#: First byte of every valid command packet.
PACKET_MAGIC = 0xC5

#: Fixed packet size in bytes.
PACKET_BYTES = 36

_HEADER = struct.Struct("<BBBB")
_BODY = struct.Struct("<QQQff")


class Opcode(enum.Enum):
    """The five primitive operations of Section 3.2, plus control."""

    MATMUL = 0x01     # C = A x B
    MULADD = 0x02     # C = alpha*A + beta*B
    MATDIV = 0x03     # C = A * (1/alpha)
    EXP = 0x04        # C = exp(A) via LUT
    GELU = 0x05       # C = GELU(A) via LUT
    WRITEBACK = 0x0F  # drain the accumulators to the host


_ARRAY_CODES = {ArrayType.M: 0, ArrayType.G: 1, ArrayType.E: 2}
_ARRAY_FROM_CODE = {code: t for t, code in _ARRAY_CODES.items()}


@dataclass(frozen=True)
class Command:
    """One decoded command packet.

    Attributes:
        opcode: the primitive to execute.
        array_type: which array group the packet is routed to.
        dims: (m, k, n) for GEMMs; (elements, 0, 0) for SIMD ops.
        alpha / beta: scalar constants (MulAdd, MatDiv).
        use_input_buffer: request partial-input-buffer reuse.
    """

    opcode: Opcode
    array_type: ArrayType
    dims: Tuple[int, int, int] = (0, 0, 0)
    alpha: float = 1.0
    beta: float = 1.0
    use_input_buffer: bool = True

    def encode(self) -> bytes:
        """Serialize to the fixed 36-byte wire format."""
        if any(d < 0 for d in self.dims):
            raise ValueError("command dims must be non-negative")
        flags = 1 if self.use_input_buffer else 0
        header = _HEADER.pack(PACKET_MAGIC, self.opcode.value,
                              _ARRAY_CODES[self.array_type], flags)
        body = _BODY.pack(*self.dims, self.alpha, self.beta)
        return header + body


class CommandDecodeError(ValueError):
    """Raised on malformed command packets."""


def decode(packet: bytes) -> Command:
    """Parse one wire-format packet back into a :class:`Command`."""
    if len(packet) != PACKET_BYTES:
        raise CommandDecodeError(
            f"packet must be {PACKET_BYTES} bytes, got {len(packet)}")
    magic, opcode_value, array_code, flags = _HEADER.unpack(packet[:4])
    if magic != PACKET_MAGIC:
        raise CommandDecodeError(f"bad magic 0x{magic:02X}")
    try:
        opcode = Opcode(opcode_value)
    except ValueError as error:
        raise CommandDecodeError(f"unknown opcode {opcode_value}") from error
    if array_code not in _ARRAY_FROM_CODE:
        raise CommandDecodeError(f"unknown array code {array_code}")
    m, k, n, alpha, beta = _BODY.unpack(packet[4:])
    return Command(opcode=opcode, array_type=_ARRAY_FROM_CODE[array_code],
                   dims=(m, k, n), alpha=alpha, beta=beta,
                   use_input_buffer=bool(flags & 1))


def _op_to_command(op: Op, array_type: ArrayType,
                   use_input_buffer: bool) -> Command:
    """Lower one traced op to a command packet."""
    if op.kind is OpKind.MATMUL:
        return Command(Opcode.MATMUL, array_type, op.shape,
                       use_input_buffer=use_input_buffer)
    if op.kind is OpKind.BMM:
        batch, m, k, n = op.shape
        return Command(Opcode.MATMUL, array_type, (batch * m, k, n),
                       use_input_buffer=use_input_buffer)
    if op.kind is OpKind.ADD:
        return Command(Opcode.MULADD, array_type, (op.elements, 0, 0),
                       alpha=1.0, beta=1.0,
                       use_input_buffer=use_input_buffer)
    if op.kind in (OpKind.MUL, OpKind.DIV):
        divisor = dict(op.metadata).get("divisor", 1.0)
        alpha = divisor if op.kind is OpKind.DIV else 1.0
        return Command(Opcode.MATDIV, array_type, (op.elements, 0, 0),
                       alpha=float(alpha),
                       use_input_buffer=use_input_buffer)
    if op.kind is OpKind.EXP:
        return Command(Opcode.EXP, array_type, (op.elements, 0, 0),
                       use_input_buffer=use_input_buffer)
    if op.kind is OpKind.GELU:
        return Command(Opcode.GELU, array_type, (op.elements, 0, 0),
                       use_input_buffer=use_input_buffer)
    raise ValueError(f"op kind {op.kind} has no accelerator opcode")


def lower_dataflow(dataflow: Dataflow,
                   use_input_buffer: bool = True) -> List[Command]:
    """Lower a dataflow to its dispatch command sequence.

    The sequence ends with a WRITEBACK draining the final result; for
    Dataflow 3 an extra WRITEBACK follows the Exp (the softmax numerators
    return to the host before the second MatMul).
    """
    commands: List[Command] = []
    for op in dataflow.ops:
        commands.append(_op_to_command(op, dataflow.array_type,
                                       use_input_buffer))
        if op.kind is OpKind.EXP and dataflow.host_ops:
            commands.append(Command(Opcode.WRITEBACK, dataflow.array_type))
    commands.append(Command(Opcode.WRITEBACK, dataflow.array_type))
    return commands


def encode_stream(commands: Sequence[Command]) -> bytes:
    """Concatenate packets into one dispatch stream."""
    return b"".join(command.encode() for command in commands)


def decode_stream(stream: bytes) -> List[Command]:
    """Split and decode a dispatch stream."""
    if len(stream) % PACKET_BYTES != 0:
        raise CommandDecodeError("stream length not a packet multiple")
    return [decode(stream[offset:offset + PACKET_BYTES])
            for offset in range(0, len(stream), PACKET_BYTES)]
