"""Two-level indexed lookup tables for GELU and Exp (Figures 12-14).

ProSE implements its special functions as per-ALU lookup tables over the
bfloat16 input domain.  A bfloat16 value has 1 sign, 8 exponent, and 7
mantissa bits; the two-level lookup indexes first on (sign, exponent) to
select a 128-entry second-level table, then on the mantissa — one lookup
per cycle.

Only a window of exponents is stored (Figure 13/14):

* GELU stores unbiased exponents in ``[-4, 3]``.  Below the window the
  output is approximated as 0; above it, by the identity for positive
  inputs (GELU(x) → x) and 0 for negative inputs.
* Exp stores unbiased exponents in ``[-6, 5]``.  Below the window
  exp(x) ≈ 1; above it the output saturates (largest-finite bfloat16 for
  positive x, 0 for negative x).

With bfloat16 (2-byte) entries this yields exactly the table sizes the
paper reports: GELU 8 exponents × 2 signs × 128 × 2 B = 4 KB, and Exp
12 × 2 × 128 × 2 B = 6 KB.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..model.activations import exp as exp_reference
from ..model.activations import gelu as gelu_reference
from ..model.tensors import (
    BF16_MANTISSA_BITS,
    EXPONENT_BIAS,
    bf16_compose,
    to_bfloat16,
)

#: Largest finite bfloat16 magnitude (used to saturate Exp overflow).
BF16_MAX = float(bf16_compose(0, 0xFE, (1 << BF16_MANTISSA_BITS) - 1))

#: Unbiased exponent windows from Figures 13 and 14.
GELU_EXPONENT_WINDOW: Tuple[int, int] = (-4, 3)
EXP_EXPONENT_WINDOW: Tuple[int, int] = (-6, 5)

#: Second-level table length: one entry per mantissa pattern.
MANTISSA_ENTRIES = 1 << BF16_MANTISSA_BITS


@dataclass(frozen=True)
class LutSpec:
    """Static description of one special-function lookup table."""

    name: str
    exponent_window: Tuple[int, int]
    reference: Callable[[np.ndarray], np.ndarray]
    #: Outputs for inputs below the window (too small in magnitude).
    below_positive: float
    below_negative: float
    #: Outputs for inputs above the window.  ``None`` means "identity".
    above_positive: Optional[float] = None
    above_negative: float = 0.0

    @property
    def num_exponents(self) -> int:
        low, high = self.exponent_window
        return high - low + 1

    @property
    def table_bytes(self) -> int:
        """Total storage: signs × exponents × mantissa entries × 2 bytes."""
        return 2 * self.num_exponents * MANTISSA_ENTRIES * 2


GELU_SPEC = LutSpec(
    name="gelu",
    exponent_window=GELU_EXPONENT_WINDOW,
    reference=gelu_reference,
    below_positive=0.0,
    below_negative=0.0,
    above_positive=None,   # identity: GELU(x) -> x for large x
    above_negative=0.0,    # GELU(x) -> 0 for very negative x
)

EXP_SPEC = LutSpec(
    name="exp",
    exponent_window=EXP_EXPONENT_WINDOW,
    reference=exp_reference,
    below_positive=1.0,    # exp(x) -> 1 as |x| -> 0
    below_negative=1.0,
    above_positive=BF16_MAX,
    above_negative=0.0,
)


class SpecialFunctionLut:
    """A populated two-level lookup table evaluating one special function.

    The table is built once from the float reference, rounding each entry
    to bfloat16 — exactly what the synthesis flow would burn into SRAM/ROM.

    Args:
        spec: which function and window to build.
    """

    def __init__(self, spec: LutSpec) -> None:
        self.spec = spec
        low, high = spec.exponent_window
        # First level: (sign, biased exponent) -> second-level table.
        self._tables: Dict[Tuple[int, int], np.ndarray] = {}
        for sign in (0, 1):
            for unbiased in range(low, high + 1):
                biased = unbiased + EXPONENT_BIAS
                inputs = np.array(
                    [bf16_compose(sign, biased, m)
                     for m in range(MANTISSA_ENTRIES)], dtype=np.float32)
                outputs = to_bfloat16(spec.reference(inputs))
                # Tables are shared across arrays (the make_* factories
                # memoize); freeze them so sharing stays safe.
                outputs.setflags(write=False)
                self._tables[(sign, biased)] = outputs
        self._dense = self._build_dense()

    def _build_dense(self) -> np.ndarray:
        """Flatten the two-level tables into one dense 65,536-entry array.

        A bfloat16 value is identified by the high 16 bits of its float32
        pattern: 1 sign + 8 exponent + 7 mantissa.  Indexing the dense
        table with ``bits >> 16`` therefore evaluates sign/window routing
        *and* the two-level lookup in a single gather.  Out-of-window and
        identity regions are baked in here, mirroring
        :meth:`lookup_grouped` exactly; the in-window runs are the very
        second-level tables built above, scattered at
        ``(sign << 15) | (biased_exponent << 7)`` (the mantissa occupies
        the low 7 index bits, so each table lands as one contiguous run).
        """
        spec = self.spec
        low, high = spec.exponent_window
        index = np.arange(1 << 16, dtype=np.uint32)
        signs = index >> np.uint32(15)
        unbiased = ((index >> np.uint32(7)) & np.uint32(0xFF)).astype(
            np.int64) - EXPONENT_BIAS
        as_float = (index << np.uint32(16)).view(np.float32)

        dense = np.empty(1 << 16, dtype=np.float32)
        below = unbiased < low
        dense[below & (signs == 0)] = spec.below_positive
        dense[below & (signs == 1)] = spec.below_negative
        above = unbiased > high
        above_pos = above & (signs == 0)
        if spec.above_positive is None:
            dense[above_pos] = as_float[above_pos]
        else:
            dense[above_pos] = spec.above_positive
        dense[above & (signs == 1)] = spec.above_negative
        for (sign, biased), table in self._tables.items():
            base = (sign << 15) | (biased << BF16_MANTISSA_BITS)
            dense[base:base + MANTISSA_ENTRIES] = table
        dense.setflags(write=False)
        return dense

    @property
    def table_bytes(self) -> int:
        """Bytes of LUT storage (4 KB for GELU, 6 KB for Exp)."""
        return self.spec.table_bytes

    @property
    def num_entries(self) -> int:
        return len(self._tables) * MANTISSA_ENTRIES

    def lookup_scalar(self, value: float) -> float:
        """Evaluate the function for one bfloat16 input (1-cycle path)."""
        result = self.lookup(np.array([value], dtype=np.float32))
        return float(result[0])

    def lookup(self, values: np.ndarray,
               assume_bf16: bool = False) -> np.ndarray:
        """Vectorized table evaluation over bfloat16 inputs.

        Inputs are rounded to bfloat16 (the datapath carries bf16) and the
        high 16 bits of each float32 pattern index the dense table — one
        fancy-index gather evaluates the whole tensor.  Callers whose
        values are already exact bfloat16 patterns (e.g. prior SIMD-stage
        outputs) pass ``assume_bf16=True`` to skip the redundant rounding;
        ``to_bfloat16`` is idempotent, so the results are identical.
        """
        array = np.asarray(values, dtype=np.float32)
        if not assume_bf16:
            array = to_bfloat16(array)
        flat = np.ascontiguousarray(array).ravel()
        bits = flat.view(np.uint32)
        return self._dense[bits >> np.uint32(16)].reshape(np.shape(array))

    def lookup_grouped(self, values: np.ndarray) -> np.ndarray:
        """Legacy two-level evaluation (reference for parity tests).

        Extracts the (sign, exponent, mantissa) fields and routes each
        element to the in-window table or the out-of-window approximation,
        gathering one (sign, exponent) group at a time — the code the
        dense table in :meth:`lookup` was flattened from.
        """
        spec = self.spec
        array = to_bfloat16(np.asarray(values, dtype=np.float32))
        flat = np.ascontiguousarray(array).ravel()
        bits = flat.view(np.uint32)
        signs = (bits >> np.uint32(31)) & np.uint32(1)
        exponents = ((bits >> np.uint32(23)) & np.uint32(0xFF)).astype(np.int64)
        mantissas = ((bits >> np.uint32(23 - BF16_MANTISSA_BITS))
                     & np.uint32(MANTISSA_ENTRIES - 1)).astype(np.int64)
        unbiased = exponents - EXPONENT_BIAS

        low, high = spec.exponent_window
        output = np.empty_like(flat)

        below = unbiased < low
        output[below & (signs == 0)] = spec.below_positive
        output[below & (signs == 1)] = spec.below_negative

        above = unbiased > high
        above_pos = above & (signs == 0)
        if spec.above_positive is None:
            output[above_pos] = flat[above_pos]
        else:
            output[above_pos] = spec.above_positive
        output[above & (signs == 1)] = spec.above_negative

        in_window = ~(below | above)
        if in_window.any():
            # Group by (sign, exponent) so each second-level table is hit
            # with one gather — mirrors the hardware's two-level indexing.
            keys = signs[in_window] * 512 + exponents[in_window]
            positions = np.flatnonzero(in_window)
            for key in np.unique(keys):
                sign, biased = int(key) // 512, int(key) % 512
                select = positions[keys == key]
                table = self._tables[(sign, biased)]
                output[select] = table[mantissas[select]]
        return output.reshape(np.shape(array))

    def max_absolute_error(self, values: np.ndarray) -> float:
        """Worst-case |LUT - float reference| over ``values``."""
        reference = self.spec.reference(np.asarray(values, dtype=np.float32))
        return float(np.max(np.abs(self.lookup(values) - reference)))


@functools.lru_cache(maxsize=None)
def make_gelu_lut() -> SpecialFunctionLut:
    """The 4 KB GELU lookup table (built once, shared and immutable).

    Every ``ProSEArray``/G-Type instantiation uses the same table the
    synthesis flow would burn into ROM, so construction is memoized at
    module level; the returned object's tables are read-only.
    """
    return SpecialFunctionLut(GELU_SPEC)


@functools.lru_cache(maxsize=None)
def make_exp_lut() -> SpecialFunctionLut:
    """The 6 KB Exp lookup table (built once, shared and immutable)."""
    return SpecialFunctionLut(EXP_SPEC)
