"""Processing element (PE) microarchitecture (Figure 10b).

Each PE holds two 16-bit operand registers (REG_A, REG_B), a bfloat16
multiplier, and a 32-bit accumulator used both for MAC accumulation and as
the *only* intermediate storage in the ProSE design (no scratchpad).  In
matmul mode operands flow top→bottom and left→right; in simd mode the
accumulator contents rotate right→left toward the SIMD column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..model.tensors import to_bfloat16


@dataclass
class ProcessingElement:
    """One multiply-accumulate cell of a ProSE systolic array.

    Attributes:
        reg_a: operand register fed from the left neighbour (bfloat16).
        reg_b: operand register fed from the top neighbour (bfloat16).
        accumulator: 32-bit accumulation register; doubles as intermediate
            storage between chained dataflow ops.
    """

    reg_a: float = 0.0
    reg_b: float = 0.0
    accumulator: float = 0.0
    mac_count: int = field(default=0, repr=False)

    def load(self, a_in: float, b_in: float) -> None:
        """Latch new operands arriving from the left and top."""
        self.reg_a = float(to_bfloat16(np.float32(a_in)))
        self.reg_b = float(to_bfloat16(np.float32(b_in)))

    def mac(self) -> None:
        """accumulator += reg_a * reg_b with bf16 multiply, fp32 add."""
        product = np.float32(self.reg_a) * np.float32(self.reg_b)
        self.accumulator = float(np.float32(self.accumulator) + product)
        self.mac_count += 1

    def clear(self) -> None:
        """Reset the accumulator for a new output tile."""
        self.accumulator = 0.0

    @property
    def output(self) -> float:
        """The accumulator value truncated to bfloat16 on read-out.

        Figure 10(b) labels the PE output ``OUTPUT[31:16]`` — the high half
        of the 32-bit accumulator, i.e. a bfloat16 view of the result.
        """
        return float(to_bfloat16(np.float32(self.accumulator)))
