"""Streaming input buffers and their Little's-law sizing check.

Each ProSE systolic array front-ends its two operand streams with 8-deep
streaming buffers (Figure 10a).  The paper validates the depth "using
Little's Law and our performance model": the buffer must hold enough
in-flight elements to cover the host-link round-trip latency at the
provisioned per-array bandwidth, so the array never starves while a
transfer is in flight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..model.tensors import to_bfloat16

#: Depth of the streaming buffers in the shipped ProSE design.
DEFAULT_DEPTH = 8

#: Bytes per buffered element (one bfloat16 operand row-slice entry).
ELEMENT_BYTES = 2

#: Credit-return / flow-control round trip on the accelerator card.  A
#: continuously streaming link never stops, so the buffer only has to
#: absorb the local handshake latency between the per-type I/O buffer and
#: the array edge — not the full microsecond-scale NVLink end-to-end
#: latency (whose bandwidth-delay product the host-side I/O buffer covers).
FLOW_CONTROL_LATENCY_SECONDS = 20e-9


@dataclass(frozen=True)
class StreamingRequirement:
    """Result of the Little's-law sizing analysis for one array.

    Attributes:
        arrival_rate: buffer entries consumed per second in steady state.
        latency_seconds: link round-trip latency the buffer must cover.
        required_depth: minimum entries (arrival rate × latency, ceil).
        provisioned_depth: entries actually provisioned.
    """

    arrival_rate: float
    latency_seconds: float
    required_depth: int
    provisioned_depth: int = DEFAULT_DEPTH

    @property
    def sufficient(self) -> bool:
        return self.provisioned_depth >= self.required_depth


def littles_law_depth(per_array_bandwidth: float,
                      link_latency: float = FLOW_CONTROL_LATENCY_SECONDS,
                      array_size: int = 16, frequency: float = 1.6e9,
                      depth: int = DEFAULT_DEPTH) -> StreamingRequirement:
    """Size a streaming buffer via Little's law (L = λ·W).

    The buffer is organised as entries of one operand column-slice
    (``array_size`` bfloat16 values).  In steady state the array consumes at
    most one entry per matmul cycle, but never faster than the link can
    deliver, so the occupancy the buffer must absorb is the *delivery* rate
    times the latency the buffer must hide — the on-card flow-control
    round trip (the continuous stream itself never stops, so the NVLink
    end-to-end latency is pipelined away).

    Args:
        per_array_bandwidth: bytes/second the link share delivers.
        link_latency: latency in seconds the buffer must hide (default:
            the on-card credit-return round trip).
        array_size: n for an n×n array (entry width).
        frequency: matmul clock in Hz.
        depth: provisioned depth to check (paper: 8).
    """
    if min(per_array_bandwidth, link_latency, array_size, frequency) <= 0:
        raise ValueError("all streaming parameters must be positive")
    entry_bytes = array_size * ELEMENT_BYTES
    delivery_rate = per_array_bandwidth / entry_bytes      # entries / second
    consumption_rate = frequency                           # entries / second
    arrival_rate = min(delivery_rate, consumption_rate)
    required = math.ceil(arrival_rate * link_latency)
    return StreamingRequirement(arrival_rate=arrival_rate,
                                latency_seconds=link_latency,
                                required_depth=required,
                                provisioned_depth=depth)


class StreamingBuffer:
    """A functional FIFO matching the 8-deep register streaming buffer."""

    def __init__(self, depth: int = DEFAULT_DEPTH, width: int = 16) -> None:
        if depth <= 0 or width <= 0:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self._entries: List[np.ndarray] = []
        self.total_pushed = 0
        self.stall_count = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.occupancy >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: np.ndarray) -> bool:
        """Enqueue one operand slice; returns False (stall) when full."""
        if self.full:
            self.stall_count += 1
            return False
        entry = np.asarray(entry, dtype=np.float32)
        if entry.shape != (self.width,):
            raise ValueError(f"entry must have width {self.width}")
        self._entries.append(to_bfloat16(entry))
        self.total_pushed += 1
        return True

    def pop(self) -> np.ndarray:
        """Dequeue the oldest operand slice."""
        if self.empty:
            raise IndexError("pop from empty streaming buffer")
        return self._entries.pop(0)
