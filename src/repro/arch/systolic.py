"""Fast functional model of a ProSE systolic array.

Numerically equivalent to the cycle-by-cycle PE-grid simulation in
:mod:`repro.arch.cycle_sim` (validated by tests), but vectorized: operands
are rounded to bfloat16, MACs accumulate in fp32, SIMD ALU results and
read-outs round to bfloat16, and GELU/Exp go through the same lookup tables
the hardware stores.

The model also counts tiles and cycles so callers can cross-check the
analytic timing model against the functional execution.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple, Union

import numpy as np

from ..dataflow.patterns import ArrayType
from ..model.tensors import to_bfloat16
from .lut import SpecialFunctionLut, make_exp_lut, make_gelu_lut

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..reliability.faults import FaultModel


class SimdOpcode(enum.Enum):
    """SIMD ALU operations the left-rotating array supports."""

    ADD = "add"            # acc + streamed vector / scalar
    MUL = "mul"            # acc * streamed vector / scalar
    GELU = "gelu"          # LUT special function (G-Type only)
    EXP = "exp"            # LUT special function (E-Type only)


@dataclass(frozen=True)
class SimdStep:
    """One elementwise step in a chained dataflow.

    Attributes:
        opcode: ALU operation.
        operand: scalar constant, a matrix matching the GEMM output shape,
            or None for LUT functions.
        broadcast_rows: when the operand is 1-D of width n, broadcast it to
            every row (bias addition).
    """

    opcode: SimdOpcode
    operand: Union[None, float, np.ndarray] = None
    broadcast_rows: bool = False


@dataclass
class ExecutionStats:
    """Tile and cycle accounting from one functional execution."""

    tiles: int = 0
    matmul_cycles: int = 0
    simd_cycles: int = 0
    streamed_bytes: int = 0
    mac_operations: int = 0


class SystolicArray:
    """An n×n ProSE systolic array (functional model).

    Args:
        size: array dimension n (the paper uses 16, 32, 64).
        array_type: M (matmul+SIMD), G (adds GELU LUTs), or E (adds Exp).
        fault_model: optional :class:`~repro.reliability.FaultModel`;
            when active, GEMM tiles suffer seeded bfloat16 bit flips
            checked by ABFT column sums, and LUT evaluations suffer
            silent flips.  ``None`` (or an inert model) leaves every
            result bit-identical to the fault-free datapath.
    """

    def __init__(self, size: int, array_type: ArrayType = ArrayType.M,
                 fault_model: Optional["FaultModel"] = None) -> None:
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.array_type = array_type
        self.fault_model = fault_model
        self._gelu: Optional[SpecialFunctionLut] = (
            make_gelu_lut() if array_type.has_gelu else None)
        self._exp: Optional[SpecialFunctionLut] = (
            make_exp_lut() if array_type.has_exp else None)

    @property
    def num_pes(self) -> int:
        return self.size * self.size

    @property
    def num_simd_alus(self) -> int:
        """One ALU per row, fed by the rotating leftmost column."""
        return self.size

    def _tile_counts(self, m: int, n_out: int) -> Tuple[int, int]:
        return (math.ceil(m / self.size), math.ceil(n_out / self.size))

    def matmul(self, a: np.ndarray, b: np.ndarray,
               stats: Optional[ExecutionStats] = None) -> np.ndarray:
        """Compute ``A @ B`` with bf16 operands and fp32 accumulation.

        Shapes are unrestricted; larger matrices are tiled over the array
        exactly as Figure 11(c) decomposes them (accounted in ``stats``).
        """
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad matmul shapes {a.shape} x {b.shape}")
        m, k = a.shape
        n_out = b.shape[1]
        a_bf16 = to_bfloat16(a)
        b_bf16 = to_bfloat16(b)
        result = a_bf16 @ b_bf16
        if self.fault_model is not None and self.fault_model.active:
            result = self.fault_model.corrupt_gemm(result, a_bf16, b_bf16,
                                                   self.size)
        if stats is not None:
            rows, cols = self._tile_counts(m, n_out)
            tiles = rows * cols
            stats.tiles += tiles
            stats.matmul_cycles += tiles * (k + 2 * self.size)
            stats.mac_operations += m * k * n_out
            stats.streamed_bytes += 2 * (rows * self.size * k      # A tiles
                                         + tiles * k * self.size)  # B tiles
        return result.astype(np.float32, copy=False)

    def simd(self, resident: np.ndarray, step: SimdStep,
             stats: Optional[ExecutionStats] = None,
             assume_bf16: bool = False) -> np.ndarray:
        """Apply one SIMD/special-function step to the resident matrix.

        The accumulators hold fp32 values; ALU inputs and outputs are
        bfloat16, matching the left-rotation datapath of Figure 5(c).

        ``assume_bf16=True`` skips the input rounding when the caller
        knows ``resident`` already holds exact bfloat16 patterns (every
        SIMD output is one — ADD/MUL round through ``to_bfloat16``, LUT
        results are bf16 table entries, and fault injection only flips
        bits within the bf16 pattern).  ``to_bfloat16`` is idempotent, so
        the elision is bit-identical.
        """
        resident = np.asarray(resident, dtype=np.float32)
        values = resident if assume_bf16 else to_bfloat16(resident)
        if step.opcode is SimdOpcode.GELU:
            if self._gelu is None:
                raise ValueError(
                    f"{self.array_type.value}-Type array has no GELU LUT")
            result = self._maybe_corrupt_lut(
                self._gelu.lookup(values, assume_bf16=True))
        elif step.opcode is SimdOpcode.EXP:
            if self._exp is None:
                raise ValueError(
                    f"{self.array_type.value}-Type array has no Exp LUT")
            result = self._maybe_corrupt_lut(
                self._exp.lookup(values, assume_bf16=True))
        else:
            operand = step.operand
            if operand is None:
                raise ValueError(f"{step.opcode} requires an operand")
            operand = np.asarray(operand, dtype=np.float32)
            if step.broadcast_rows and operand.ndim == 1:
                operand = np.broadcast_to(operand, resident.shape)
            operand = to_bfloat16(operand)
            if step.opcode is SimdOpcode.ADD:
                result = to_bfloat16(values + operand)
            elif step.opcode is SimdOpcode.MUL:
                result = to_bfloat16(values * operand)
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unknown opcode {step.opcode}")
        if stats is not None:
            rows, cols = self._tile_counts(*resident.shape)
            # One left-rotation pass: n simd-clock cycles per tile.
            stats.simd_cycles += rows * cols * self.size
            if step.opcode in (SimdOpcode.ADD, SimdOpcode.MUL) and not (
                    np.isscalar(step.operand) or
                    isinstance(step.operand, float)):
                stats.streamed_bytes += 2 * int(np.prod(resident.shape))
        return np.asarray(result, dtype=np.float32)

    def execute_chain(self, a: np.ndarray, b: np.ndarray,
                      steps: Tuple[SimdStep, ...] = (),
                      stats: Optional[ExecutionStats] = None) -> np.ndarray:
        """Run MatMul followed by chained SIMD steps in one local dataflow.

        This is the paper's central mechanism: the GEMM result never leaves
        the accumulators; each chained elementwise op reads and rewrites
        them via left rotation, with zero intermediate traffic to the host.

        Only the first SIMD step rounds its input: the GEMM result carries
        fp32 accumulations, but every step *output* is already exact
        bfloat16, so subsequent steps (and the final read-out) skip the
        redundant re-rounding.
        """
        resident = self.matmul(a, b, stats)
        is_bf16 = False
        for step in steps:
            resident = self.simd(resident, step, stats,
                                 assume_bf16=is_bf16)
            is_bf16 = True
        if stats is not None:
            stats.streamed_bytes += 2 * int(np.prod(resident.shape))
        return resident if is_bf16 else to_bfloat16(resident)

    def _maybe_corrupt_lut(self, result: np.ndarray) -> np.ndarray:
        """Inject silent LUT-output bit flips when a fault model is active."""
        if self.fault_model is not None and self.fault_model.active:
            return self.fault_model.corrupt_lut(result, self.size)
        return result


def make_array(size: int, array_type: ArrayType,
               fault_model: Optional["FaultModel"] = None) -> SystolicArray:
    """Factory mirroring the hardware generator's (size, type) parameters."""
    return SystolicArray(size=size, array_type=array_type,
                         fault_model=fault_model)
