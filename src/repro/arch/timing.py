"""Analytic cycle/latency model for dataflows on ProSE systolic arrays.

The cycle-accurate performance simulator of Figure 15 combines three parts:
this per-dataflow timing model, the orchestration/scheduling model in
:mod:`repro.sched`, and the host-communication model.  Here we compute, for
one dataflow mapped onto one systolic array:

* matmul-mode cycles: tiled output-stationary GEMM, ``k + 2n`` cycles per
  n×n output tile (streaming fill + compute + drain), at the double-pumped
  1.6 GHz matmul clock;
* simd-mode cycles: one full left-rotation (n cycles) per resident tile per
  chained elementwise/special-function op, at the 800 MHz SIMD clock;
* streamed bytes: both GEMM operands in (with optional partial-input-buffer
  reuse of the A operand, Figure 11d), SIMD matrix operands in, and the
  final result out — but *zero* bytes for intermediates, which stay in the
  PE accumulators.

Dataflow 3 splits into accel → host → accel segments around the softmax
summation/division the host performs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from ..dataflow.patterns import Dataflow, DataflowKind
from ..trace.ops import Op, OpKind
from .config import HardwareConfig

#: Bytes per streamed element (bfloat16 datapath).
ELEMENT_BYTES = 2


@dataclass(frozen=True)
class Segment:
    """One schedulable piece of a dataflow.

    Attributes:
        resource: ``"accel"`` (occupies a systolic array + its type's link
            channel) or ``"host"`` (occupies a host CPU slot).
        compute_seconds: pure compute time of the segment.
        stream_bytes: host-link traffic attributable to the segment.
        host_flops: host-side FLOPs (host segments only).
    """

    resource: str
    compute_seconds: float
    stream_bytes: int = 0
    host_flops: int = 0


@dataclass(frozen=True)
class DataflowTiming:
    """Complete timing decomposition of one dataflow on one array.

    The per-segment aggregates (stream bytes, accel/host compute seconds,
    accel dispatch count) are precomputed once at construction: the
    orchestrator reads them per placement *and* per earliest-finish
    projection, which used to re-sum the segment generators thousands of
    times per schedule.
    """

    dataflow_name: str
    array_size: int
    segments: Tuple[Segment, ...]
    matmul_cycles: int
    simd_cycles: int
    total_stream_bytes: int = field(init=False)
    accel_compute_seconds: float = field(init=False)
    host_compute_seconds: float = field(init=False)
    #: Number of accelerator segments (= host-link dispatches performed).
    accel_segments: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "total_stream_bytes",
                           sum(s.stream_bytes for s in self.segments))
        object.__setattr__(self, "accel_compute_seconds",
                           sum(s.compute_seconds for s in self.segments
                               if s.resource == "accel"))
        object.__setattr__(self, "host_compute_seconds",
                           sum(s.compute_seconds for s in self.segments
                               if s.resource == "host"))
        object.__setattr__(self, "accel_segments",
                           sum(1 for s in self.segments
                               if s.resource == "accel"))

    def bound_total_seconds(self, type_bandwidth: float) -> float:
        """Lower-bound latency: per-segment max(compute, stream)."""
        total = 0.0
        for segment in self.segments:
            stream = segment.stream_bytes / type_bandwidth \
                if type_bandwidth > 0 else 0.0
            total += max(segment.compute_seconds, stream)
        return total


def _is_vector_operand(op: Op) -> bool:
    """True for elementwise ops whose streamed operand is a vector (bias)."""
    return any(key == "vector_operand" for key, _ in op.metadata)


def dataflow_signature(dataflow: Dataflow) -> Tuple:
    """Content key under which two dataflows share a timing decomposition.

    :func:`time_dataflow` reads only the op sequence (kind, shape,
    metadata), the dataflow kind (Dataflow 3 splits around its host
    segment), and the host-op FLOP counts — never the name or layer
    index.  Dataflows with equal signatures therefore time identically on
    a given array size and hardware config, which lets the orchestrator
    compute one :class:`DataflowTiming` for the 12 identical encoder
    layers instead of 12.
    """
    return (dataflow.kind,
            tuple((op.kind, op.shape, op.metadata) for op in dataflow.ops),
            tuple(op.flops for op in dataflow.host_ops))


def gemm_tiles(op: Op, array_size: int) -> Tuple[int, int, int]:
    """(tile_rows, tile_cols, batch) decomposition of a GEMM on the array."""
    if op.kind is OpKind.MATMUL:
        m, _, n_out = op.shape
        batch = 1
    elif op.kind is OpKind.BMM:
        batch, m, _, n_out = op.shape
    else:
        raise ValueError(f"not a GEMM op: {op.kind}")
    return (math.ceil(m / array_size), math.ceil(n_out / array_size), batch)


def gemm_cycles(op: Op, array_size: int) -> int:
    """Matmul-mode cycles for one GEMM: tiles × (k + 2n)."""
    rows, cols, batch = gemm_tiles(op, array_size)
    k = op.shape[1] if op.kind is OpKind.MATMUL else op.shape[2]
    return batch * rows * cols * (k + 2 * array_size)


def gemm_stream_bytes(op: Op, array_size: int, use_input_buffer: bool) -> int:
    """Input traffic for one tiled GEMM.

    Without the partial input buffer the design is purely streaming: the A
    operand strip re-streams for every output tile and the B operand panel
    for every tile as well (Figure 11b), so traffic scales with the tile
    count.  With the partial input buffer (Figure 11d) the local dataflow
    reuses buffered operand strips — the A strip is held across a tile row
    and shared weight panels are multicast through the per-type I/O buffer
    across arrays and tile rows — so each operand element crosses the link
    once per GEMM (the algorithmic minimum).  See DESIGN.md, "Calibration
    decisions".
    """
    rows, cols, batch = gemm_tiles(op, array_size)
    if op.kind is OpKind.MATMUL:
        m, k, n_out = op.shape
    else:
        _, m, k, n_out = op.shape
    if use_input_buffer:
        a_bytes = batch * m * k * ELEMENT_BYTES
        b_bytes = batch * k * n_out * ELEMENT_BYTES
    else:
        a_bytes = batch * rows * cols * array_size * k * ELEMENT_BYTES
        b_bytes = batch * rows * cols * k * array_size * ELEMENT_BYTES
    return a_bytes + b_bytes


def simd_cycles_for(elements: int, array_size: int) -> int:
    """SIMD-mode cycles to apply one op to ``elements`` resident values.

    Each resident n×n tile needs one full left rotation: n cycles, during
    which all n² elements pass the n SIMD ALUs (n per cycle).
    """
    return math.ceil(elements / array_size)


def simd_stream_bytes(op: Op) -> int:
    """Streamed operand traffic for one SIMD op.

    Matrix operands (residual additions) stream fully; vector operands
    (biases) stream once per output column — negligible, counted exactly;
    reciprocal-constant multiplies, Exp, and GELU stream nothing.
    """
    if op.kind is OpKind.ADD and not _is_vector_operand(op):
        return op.elements * ELEMENT_BYTES
    if op.kind is OpKind.ADD:
        return op.shape[-1] * ELEMENT_BYTES
    return 0


def time_dataflow(dataflow: Dataflow, array_size: int,
                  config: HardwareConfig,
                  host_elementwise_throughput: float = 2.0e10
                  ) -> DataflowTiming:
    """Time one dataflow on one array of ``array_size``.

    Args:
        dataflow: the op chain to execute.
        array_size: n of the target n×n systolic array.
        config: clocks and input-buffer provisioning.
        host_elementwise_throughput: host softmax elements/second (used for
            the Dataflow 3 host segment; the scheduler may override).

    Returns:
        A :class:`DataflowTiming` whose segments alternate accel/host for
        Dataflow 3 and form a single accel segment otherwise.
    """
    segments: List[Segment] = []
    total_matmul_cycles = 0
    total_simd_cycles = 0

    accel_matmul_cycles = 0
    accel_simd_cycles = 0
    accel_bytes = 0
    result_elements = 0

    def flush_accel() -> None:
        nonlocal accel_matmul_cycles, accel_simd_cycles, accel_bytes
        if accel_matmul_cycles == 0 and accel_simd_cycles == 0:
            return
        seconds = (accel_matmul_cycles / config.matmul_frequency
                   + accel_simd_cycles / config.simd_frequency)
        segments.append(Segment(resource="accel", compute_seconds=seconds,
                                stream_bytes=accel_bytes))
        accel_matmul_cycles = accel_simd_cycles = accel_bytes = 0

    host_iter = iter(dataflow.host_ops)
    for op in dataflow.ops:
        if op.kind in (OpKind.MATMUL, OpKind.BMM):
            cycles = gemm_cycles(op, array_size)
            accel_matmul_cycles += cycles
            total_matmul_cycles += cycles
            accel_bytes += gemm_stream_bytes(op, array_size,
                                             config.use_input_buffer)
            result_elements = op.elements
        else:
            cycles = simd_cycles_for(op.elements, array_size)
            if not config.chained:
                # Conventional (non-chained) systolic baseline: the resident
                # matrix drains to the host and reloads around every
                # elementwise op — global dataflow instead of ProSE's local
                # dataflow.  Three rotation passes (drain, reload, compute)
                # and a full round trip of the intermediate on the link.
                cycles *= 3
                accel_bytes += 2 * op.elements * ELEMENT_BYTES
            accel_simd_cycles += cycles
            total_simd_cycles += cycles
            accel_bytes += simd_stream_bytes(op)
            result_elements = op.elements
        if (dataflow.kind is DataflowKind.DATAFLOW_3
                and op.kind is OpKind.EXP):
            # Exp results return to the host for softmax sum + divide, then
            # the normalized probabilities stream back for the second BMM.
            accel_bytes += op.elements * ELEMENT_BYTES
            flush_accel()
            host_flops = sum(h.flops for h in host_iter)
            host_seconds = (2 * op.elements) / host_elementwise_throughput
            segments.append(Segment(resource="host",
                                    compute_seconds=host_seconds,
                                    host_flops=host_flops))

    accel_bytes += result_elements * ELEMENT_BYTES   # final result out
    flush_accel()
    return DataflowTiming(dataflow_name=dataflow.name,
                          array_size=array_size,
                          segments=tuple(segments),
                          matmul_cycles=total_matmul_cycles,
                          simd_cycles=total_simd_cycles)


def best_array_size(dataflow: Dataflow, config: HardwareConfig) -> int:
    """The array size the config provisions for this dataflow's type."""
    groups = config.groups_of(dataflow.array_type)
    return max(group.size for group in groups)
