"""Commodity baseline device models: A100, TPUv2, TPUv3."""

from .calibration import (
    CalibrationTarget,
    calibrate,
    calibration_residual,
)
from .gpu import (
    A100_MEASURED_POWER_WATTS,
    A100_MEMORY_BANDWIDTH,
    A100_PEAK_BF16_FLOPS,
    A100_PLATFORM,
    a100,
    a100_spec,
)
from .roofline import (
    OTHER_KINDS,
    DeviceSpec,
    RooflineDevice,
    best_batch_for_length,
    saturating,
)
from .tpu import (
    MXU_SIZE,
    TPUV2_POWER_WATTS,
    TPUV3_POWER_WATTS,
    tpu_v2,
    tpu_v2_spec,
    tpu_v3,
    tpu_v3_spec,
)

__all__ = [
    "CalibrationTarget",
    "calibrate",
    "calibration_residual",
    "A100_MEASURED_POWER_WATTS",
    "A100_MEMORY_BANDWIDTH",
    "A100_PEAK_BF16_FLOPS",
    "A100_PLATFORM",
    "DeviceSpec",
    "MXU_SIZE",
    "OTHER_KINDS",
    "RooflineDevice",
    "TPUV2_POWER_WATTS",
    "TPUV3_POWER_WATTS",
    "a100",
    "a100_spec",
    "best_batch_for_length",
    "saturating",
    "tpu_v2",
    "tpu_v2_spec",
    "tpu_v3",
    "tpu_v3_spec",
]
