"""Baseline-model calibration solver.

The A100/TPU device models carry exactly two free scalars each —
``matmul_efficiency`` and ``elementwise_efficiency``.  This module is the
solver that produced the constants baked into :mod:`repro.baselines.gpu`
and :mod:`repro.baselines.tpu`: given a target accelerated-portion
throughput and a target matmul share of total runtime at a reference
operating point, it splits the time budget between the GEMM and
elementwise cost pools and rescales the two efficiencies to match.

Keeping the solver in the library makes the calibration reproducible and
lets users re-target the baselines to their own measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..model.config import BertConfig, protein_bert_base
from ..trace.ops import OpKind
from ..trace.tracer import TraceSpec, trace_model
from .roofline import OTHER_KINDS, DeviceSpec, RooflineDevice


@dataclass(frozen=True)
class CalibrationTarget:
    """What the calibrated device must reproduce.

    Attributes:
        throughput: accelerated-portion inferences/second at the
            reference operating point.
        matmul_share: fraction of accelerated time spent in GEMMs.
        batch / seq_len: the reference operating point.
    """

    throughput: float
    matmul_share: float
    batch: int = 128
    seq_len: int = 512

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("target throughput must be positive")
        if not 0 < self.matmul_share < 1:
            raise ValueError("matmul share must be in (0, 1)")


def _split_times(spec: DeviceSpec, config: BertConfig,
                 target: CalibrationTarget) -> Tuple[float, float]:
    """(GEMM seconds, elementwise seconds) for the reference batch."""
    device = RooflineDevice(spec)
    ops = trace_model(TraceSpec(config, batch=target.batch,
                                seq_len=target.seq_len))
    gemm = elementwise = 0.0
    for op in ops:
        if op.kind in OTHER_KINDS:
            continue
        seconds = device.op_seconds(op)
        if op.kind in (OpKind.MATMUL, OpKind.BMM):
            gemm += seconds
        else:
            elementwise += seconds
    return gemm, elementwise


def calibrate(spec: DeviceSpec, target: CalibrationTarget,
              config: Optional[BertConfig] = None,
              iterations: int = 8) -> DeviceSpec:
    """Solve the two efficiency scalars against ``target``.

    Time scales inversely with each efficiency, so the fixed-point
    converges in a handful of iterations (kernel-launch overheads make it
    slightly nonlinear).

    Returns:
        A copy of ``spec`` with calibrated efficiencies.
    """
    config = config or protein_bert_base()
    total_budget = target.batch / target.throughput
    gemm_budget = target.matmul_share * total_budget
    elementwise_budget = (1.0 - target.matmul_share) * total_budget
    for _ in range(iterations):
        gemm, elementwise = _split_times(spec, config, target)
        spec = dataclasses.replace(
            spec,
            matmul_efficiency=float(np.clip(
                spec.matmul_efficiency * gemm / gemm_budget, 1e-4, 1.0)),
            elementwise_efficiency=float(np.clip(
                spec.elementwise_efficiency * elementwise
                / elementwise_budget, 1e-4, 1.0)))
    return spec


def calibration_residual(spec: DeviceSpec, target: CalibrationTarget,
                         config: Optional[BertConfig] = None
                         ) -> Tuple[float, float]:
    """(throughput error, matmul-share error), both relative.

    Zero residuals mean the spec reproduces the target exactly.
    """
    config = config or protein_bert_base()
    gemm, elementwise = _split_times(spec, config, target)
    total = gemm + elementwise
    throughput = target.batch / total
    share = gemm / total
    return (throughput / target.throughput - 1.0,
            share / target.matmul_share - 1.0)
