"""NVIDIA A100 baseline model (Table 1 platform).

Public device parameters (A100-SXM4-40GB): 312 TFLOPS bf16 tensor-core
peak, 1555 GB/s HBM2 bandwidth, measured power 395 W under ProteinBERT
load (the paper's nvidia-smi reading; published TDP 400 W).

PyTorch executes the model as a stream of ATen kernels: GEMMs hit the
tensor cores with shape-dependent utilization (small attention dot
products underutilize the 4×4×8 MMA pipes badly — the mismatch the paper
highlights), and elementwise/softmax kernels are memory-bound over fp32
intermediates.  The two framework-efficiency scalars are calibrated so the
seq-512/batch-128 accelerated-portion throughput matches the paper's
published ProSE:A100 speedup ratio (DESIGN.md, "Calibration targets").
"""

from __future__ import annotations

from typing import Dict

from .roofline import DeviceSpec, RooflineDevice, saturating

#: Published A100 specs.
A100_PEAK_BF16_FLOPS = 312e12
A100_MEMORY_BANDWIDTH = 1555e9
A100_MEASURED_POWER_WATTS = 395.0

#: Table 1: host of the A100 platform (for documentation/tests).
A100_PLATFORM: Dict[str, str] = {
    "Host Processor": "Intel Xeon 96C, 3GHz",
    "Memory": "1152GiB DDR4",
    "GPU": "A100-SXM4 6912 CUDA Cores, 432 Tensor Cores",
    "GPU Memory": "40GiB HBM2",
    "External Interface": "NVLink 3.0",
}

#: Calibrated fraction of tensor-core peak through PyTorch on large GEMMs.
A100_MATMUL_EFFICIENCY = 0.0607

#: Calibrated fraction of HBM peak for unfused elementwise kernels.
A100_ELEMENTWISE_EFFICIENCY = 0.1131

#: CUDA kernel launch + framework dispatch overhead.
A100_KERNEL_OVERHEAD = 6e-6


def _a100_matmul_utilization(m: int, k: int, n: int) -> float:
    """Tensor-core utilization vs GEMM shape.

    Saturates for large well-aligned GEMMs; collapses for the short-k
    attention dot products (k = 64) that fall between the tensor core's
    4×4×8 tiles and efficient software tiling.
    """
    return (saturating(m, 256.0) * saturating(k, 192.0)
            * saturating(n, 128.0))


def a100_spec() -> DeviceSpec:
    """The calibrated A100 device specification."""
    return DeviceSpec(
        name="A100",
        peak_matmul_flops=A100_PEAK_BF16_FLOPS,
        memory_bandwidth=A100_MEMORY_BANDWIDTH,
        tdp_watts=A100_MEASURED_POWER_WATTS,
        matmul_efficiency=A100_MATMUL_EFFICIENCY,
        elementwise_efficiency=A100_ELEMENTWISE_EFFICIENCY,
        elementwise_bytes=4,
        kernel_overhead=A100_KERNEL_OVERHEAD,
        gelu_expansion=1,
        softmax_passes=4,
        matmul_utilization=_a100_matmul_utilization)


def a100() -> RooflineDevice:
    """An evaluable A100 baseline."""
    return RooflineDevice(a100_spec())
