"""Generic roofline + utilization model for commodity baselines.

The paper *measures* the A100 and TPU systems; we rebuild them as analytic
models: every traced op costs the max of its compute time (peak throughput
× a shape-dependent utilization) and its memory time (bytes at effective
bandwidth), plus a per-kernel launch overhead.  Two scalar efficiency
knobs per device are calibrated against the paper's published end-to-end
ratios (see DESIGN.md, "Calibration targets"); everything else is derived
from public device specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..model.config import BertConfig
from ..trace.ops import Op, OpKind
from ..trace.tracer import TraceSpec, trace_model

#: Op kinds in the paper's "Other" category — excluded when comparing
#: "the accelerated portions" (Section 4.1).
OTHER_KINDS = (OpKind.LAYERNORM, OpKind.EMBEDDING, OpKind.TRANSPOSE,
               OpKind.OTHER)


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of one commodity baseline device.

    Attributes:
        name: device label.
        peak_matmul_flops: peak tensor/MXU throughput (FLOPs/s).
        memory_bandwidth: peak memory bandwidth (bytes/s).
        tdp_watts: power charged to the device (published TDP / measured).
        matmul_efficiency: calibrated fraction of peak reachable on large,
            well-shaped GEMMs through the framework stack.
        elementwise_efficiency: calibrated fraction of peak memory
            bandwidth for streaming elementwise kernels.
        elementwise_bytes: bytes per element for intermediate tensors
            (4 for fp32 PyTorch intermediates on the GPU).
        kernel_overhead: per-kernel launch latency in seconds.
        gelu_expansion: elementwise passes needed for GELU (the TPU lacks a
            GELU unit and expands it into 10+ MulAdd operations).
        softmax_passes: memory passes for a softmax kernel.
        matmul_utilization: shape-dependent GEMM utilization in (0, 1].
    """

    name: str
    peak_matmul_flops: float
    memory_bandwidth: float
    tdp_watts: float
    matmul_efficiency: float
    elementwise_efficiency: float
    elementwise_bytes: int
    kernel_overhead: float
    gelu_expansion: int
    softmax_passes: int
    matmul_utilization: Callable[[int, int, int], float]

    def __post_init__(self) -> None:
        if min(self.peak_matmul_flops, self.memory_bandwidth,
               self.tdp_watts) <= 0:
            raise ValueError("device peaks must be positive")
        if not 0 < self.matmul_efficiency <= 1:
            raise ValueError("matmul_efficiency must be in (0, 1]")
        if not 0 < self.elementwise_efficiency <= 1:
            raise ValueError("elementwise_efficiency must be in (0, 1]")


class RooflineDevice:
    """Evaluates traced op streams on a :class:`DeviceSpec`."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec

    def op_seconds(self, op: Op) -> float:
        """Latency of one traced op on this device."""
        spec = self.spec
        if op.kind in (OpKind.MATMUL, OpKind.BMM):
            if op.kind is OpKind.MATMUL:
                m, k, n = op.shape
            else:
                _batch, m, k, n = op.shape
            utilization = spec.matmul_utilization(m, k, n)
            effective = (spec.peak_matmul_flops * spec.matmul_efficiency
                         * utilization)
            compute = op.flops / effective
            memory = (op.bytes_moved(2) / spec.memory_bandwidth)
            return max(compute, memory) + spec.kernel_overhead

        bandwidth = spec.memory_bandwidth * spec.elementwise_efficiency
        elements = op.elements
        if op.kind is OpKind.SOFTMAX:
            passes = spec.softmax_passes
            # Softmax reads/writes the full scores tensor, not the reduced
            # output: use the input element count.
            elements = 1
            for dim in op.shape:
                elements *= dim
        elif op.kind in (OpKind.GELU, OpKind.TANH):
            passes = 2 * spec.gelu_expansion
            elements = 1
            for dim in op.shape:
                elements *= dim
        elif op.kind in (OpKind.ADD, OpKind.MUL, OpKind.DIV):
            passes = 3       # two operands in, one result out
        elif op.kind is OpKind.LAYERNORM:
            passes = 4       # stats pass + normalize pass
            elements = 1
            for dim in op.shape:
                elements *= dim
        elif op.kind in (OpKind.EXP, OpKind.SUM):
            passes = 2
        else:                # EMBEDDING / TRANSPOSE / OTHER
            passes = 2
        seconds = passes * elements * spec.elementwise_bytes / bandwidth
        return seconds + spec.kernel_overhead

    def batch_seconds(self, ops: Sequence[Op],
                      accelerated_only: bool = True) -> float:
        """Total time for one batched inference's op stream."""
        total = 0.0
        for op in ops:
            if accelerated_only and op.kind in OTHER_KINDS:
                continue
            total += self.op_seconds(op)
        return total

    def category_seconds(self, ops: Sequence[Op]) -> Dict[str, float]:
        """Per-Figure-3-category time totals (for the runtime breakdown)."""
        totals: Dict[str, float] = {}
        for op in ops:
            category = op.figure3_category
            totals[category] = totals.get(category, 0.0) + self.op_seconds(op)
        return totals

    def throughput(self, config: BertConfig, batch: int, seq_len: int,
                   accelerated_only: bool = True) -> float:
        """Inferences per second at the given batch and length."""
        ops = trace_model(TraceSpec(config=config, batch=batch,
                                    seq_len=seq_len))
        return batch / self.batch_seconds(ops, accelerated_only)

    def efficiency(self, config: BertConfig, batch: int, seq_len: int,
                   accelerated_only: bool = True) -> float:
        """Inferences per second per Watt (the Figure 1 metric)."""
        return (self.throughput(config, batch, seq_len, accelerated_only)
                / self.spec.tdp_watts)


def saturating(value: int, half_point: float) -> float:
    """Utilization curve value/(value + half_point) in (0, 1)."""
    return value / (value + half_point)


def best_batch_for_length(seq_len: int) -> int:
    """The paper's per-length A100 profiling batch sizes (Section 2.3)."""
    table = {32: 24576, 64: 12288, 128: 6144, 256: 2048, 512: 512,
             1024: 128, 2048: 64}
    if seq_len in table:
        return table[seq_len]
    # Interpolate geometrically for unlisted lengths; memory-bound scaling.
    best: List[int] = sorted(table)
    for known in best:
        if seq_len < known:
            return table[known]
    return table[best[-1]]
