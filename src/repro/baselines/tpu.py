"""Google TPUv2 / TPUv3 baseline models.

One TPU "instance" as the paper measures it is a 4-chip board: TPUv3 has 8
cores × 2 MXUs... in the paper's accounting, 262K PEs total and a published
board TDP the paper quotes as 280 W/chip for v2 (1120 W/board); TPUv3 runs
hotter (≈450 W/chip, 1800 W/board).

The model captures the TPU's two structural weaknesses on long-input
BERT-style models:

* weight-stationary 128×128 MXUs pad short-k GEMMs (the k = 64 attention
  dot products waste half the array) and pay fill/drain per tile;
* no GELU unit — the activation expands into "10+ MulAdd operations"
  through the Unified Buffer (global dataflow), and elementwise traffic in
  general round-trips the UB at modest effective bandwidth.
"""

from __future__ import annotations

import math

from .roofline import DeviceSpec, RooflineDevice, saturating

#: Published board-level peaks (4-chip devices, as measured in the paper).
TPUV3_PEAK_FLOPS = 420e12
TPUV2_PEAK_FLOPS = 180e12

#: Board HBM bandwidth: v3 = 4 chips × 900 GB/s, v2 = 4 × 700 GB/s.
TPUV3_MEMORY_BANDWIDTH = 3600e9
TPUV2_MEMORY_BANDWIDTH = 2800e9

#: Power: the paper uses published TDPs (no measurement tooling exists).
TPUV2_POWER_WATTS = 1120.0
TPUV3_POWER_WATTS = 1800.0

#: MXU dimension shared by TPUv2 and TPUv3.
MXU_SIZE = 128

#: Calibrated framework efficiencies (see DESIGN.md calibration targets).
TPUV3_MATMUL_EFFICIENCY = 0.0327
TPUV2_MATMUL_EFFICIENCY = 0.0330
TPUV3_ELEMENTWISE_EFFICIENCY = 0.0547
TPUV2_ELEMENTWISE_EFFICIENCY = 0.0305

#: XLA executes fused graphs: fewer, heavier kernels than PyTorch.
TPU_KERNEL_OVERHEAD = 10e-6

#: GELU expands into 10+ MulAdds on the TPU (paper Section 3.2).
TPU_GELU_EXPANSION = 10


def _mxu_utilization(m: int, k: int, n: int) -> float:
    """Weight-stationary 128×128 MXU utilization vs GEMM shape.

    The array pads k and n up to multiples of 128 (a k = 64 dot product
    occupies half the rows with zeros) and pays a fill/drain ramp in m.
    """
    k_util = k / (MXU_SIZE * math.ceil(k / MXU_SIZE))
    n_util = n / (MXU_SIZE * math.ceil(n / MXU_SIZE))
    m_util = saturating(m, float(MXU_SIZE))
    return k_util * n_util * m_util


def tpu_v3_spec() -> DeviceSpec:
    """The calibrated TPUv3 (4-chip board) specification."""
    return DeviceSpec(
        name="TPUv3",
        peak_matmul_flops=TPUV3_PEAK_FLOPS,
        memory_bandwidth=TPUV3_MEMORY_BANDWIDTH,
        tdp_watts=TPUV3_POWER_WATTS,
        matmul_efficiency=TPUV3_MATMUL_EFFICIENCY,
        elementwise_efficiency=TPUV3_ELEMENTWISE_EFFICIENCY,
        elementwise_bytes=2,
        kernel_overhead=TPU_KERNEL_OVERHEAD,
        gelu_expansion=TPU_GELU_EXPANSION,
        softmax_passes=4,
        matmul_utilization=_mxu_utilization)


def tpu_v2_spec() -> DeviceSpec:
    """The calibrated TPUv2 (4-chip board) specification."""
    return DeviceSpec(
        name="TPUv2",
        peak_matmul_flops=TPUV2_PEAK_FLOPS,
        memory_bandwidth=TPUV2_MEMORY_BANDWIDTH,
        tdp_watts=TPUV2_POWER_WATTS,
        matmul_efficiency=TPUV2_MATMUL_EFFICIENCY,
        elementwise_efficiency=TPUV2_ELEMENTWISE_EFFICIENCY,
        elementwise_bytes=2,
        kernel_overhead=TPU_KERNEL_OVERHEAD,
        gelu_expansion=TPU_GELU_EXPANSION,
        softmax_passes=4,
        matmul_utilization=_mxu_utilization)


def tpu_v3() -> RooflineDevice:
    """An evaluable TPUv3 baseline."""
    return RooflineDevice(tpu_v3_spec())


def tpu_v2() -> RooflineDevice:
    """An evaluable TPUv2 baseline."""
    return RooflineDevice(tpu_v2_spec())
