"""Benchmark observatory: scenario registry, recorder, and comparator.

Three pieces on top of :mod:`repro.telemetry`:

* :mod:`repro.bench.scenarios` — named, seeded, picklable perf
  scenarios covering the stack's hot paths;
* :mod:`repro.bench.recorder` — median-of-N timing into schema-versioned
  ``BENCH_<seq>.json`` records (git SHA, machine fingerprint, metric
  snapshot) that form the repository's performance trajectory;
* :mod:`repro.bench.compare` — noise-aware regression detection against
  the trajectory (min-of-medians floor, configurable ±% band).

Driven by ``python -m repro.cli bench``; profiler-to-span hotspot
attribution lives in :mod:`repro.telemetry.profiling`.
"""

from .attribution import (
    ScenarioAttribution,
    attribute_comparison,
    attribution_trace_report,
    format_attribution,
    select_scenarios,
)
from .compare import (
    DEFAULT_BAND_PCT,
    DEFAULT_MIN_DELTA_SECONDS,
    STATUS_IMPROVEMENT,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    ScenarioDelta,
    TrajectoryComparison,
    compare_records,
    format_comparison,
)
from .recorder import (
    DEFAULT_REPEAT,
    SCHEMA,
    SCHEMA_VERSION,
    append_artifact_timing,
    build_record,
    build_rollups,
    git_sha,
    list_bench_paths,
    load_record,
    load_records,
    machine_fingerprint,
    next_bench_path,
    run_scenarios,
    seq_of,
    time_scenario,
    validate_record,
    write_record,
)
from .scenarios import (
    FAST_TAG,
    SEED,
    Scenario,
    get_scenario,
    register,
    scenario_names,
    scenarios,
    trace_scenario,
    traced_scenario_names,
)

__all__ = [
    "DEFAULT_BAND_PCT",
    "DEFAULT_MIN_DELTA_SECONDS",
    "DEFAULT_REPEAT",
    "FAST_TAG",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SEED",
    "Scenario",
    "ScenarioAttribution",
    "ScenarioDelta",
    "STATUS_IMPROVEMENT",
    "STATUS_NEW",
    "STATUS_OK",
    "STATUS_REGRESSION",
    "TrajectoryComparison",
    "append_artifact_timing",
    "attribute_comparison",
    "attribution_trace_report",
    "build_record",
    "build_rollups",
    "compare_records",
    "format_attribution",
    "format_comparison",
    "get_scenario",
    "git_sha",
    "list_bench_paths",
    "load_record",
    "load_records",
    "machine_fingerprint",
    "next_bench_path",
    "register",
    "run_scenarios",
    "scenario_names",
    "scenarios",
    "select_scenarios",
    "seq_of",
    "time_scenario",
    "trace_scenario",
    "traced_scenario_names",
    "validate_record",
    "write_record",
]
