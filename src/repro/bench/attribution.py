"""Regression attribution: from "scenario X got slower" to "span Y did".

The comparator (:mod:`repro.bench.compare`) says *which* scenario moved
against the trajectory; this module says *where inside it*.  For every
scenario picked for attribution it re-runs the scenario's traced
variant (:func:`repro.bench.scenarios.trace_scenario`), aggregates the
trace into a rollup, and diffs it against the baseline:

* when a baseline record embeds a rollup for the scenario (records
  written with ``build_rollups``), the diff attributes the delta span
  group by span group — without replaying the baseline commit's code;
* when no baseline rollup exists (records that predate the section),
  the report falls back to the *current composition*: the top span
  groups and critical-path hops of the fresh trace, flagged as such —
  still enough to see what dominates the regressed scenario.

Scenario selection mirrors what a human would do at a red comparison:
attribute every regressed scenario that can be traced; if none of the
regressed scenarios are traceable (or nothing regressed at all),
attribute the traceable scenario with the largest absolute delta so the
table is never empty on an explicit ``--attribute`` request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..telemetry.analyze import (
    TraceDiff,
    build_rollup,
    diff_rollups,
    extract_critical_path,
    format_critical_path,
    format_diff,
)
from .compare import STATUS_REGRESSION, TrajectoryComparison
from .scenarios import trace_scenario, traced_scenario_names

#: Span groups shown per attributed scenario.
DEFAULT_TOP = 10


@dataclass(frozen=True)
class ScenarioAttribution:
    """Attribution outcome for one scenario.

    ``diff`` is present when a baseline rollup was available; otherwise
    ``rollup`` (the fresh trace's composition) carries the fallback
    report and ``note`` says why.
    """

    name: str
    status: str
    delta_pct: float
    rollup: Dict[str, Any]
    diff: Optional[TraceDiff] = None
    note: str = ""

    def as_dict(self, top: int = DEFAULT_TOP) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name, "status": self.status,
            "delta_pct": self.delta_pct, "note": self.note}
        if self.diff is not None:
            data["diff"] = self.diff.as_dict(top=top)
        else:
            data["rollup"] = self.rollup
        return data


def _baseline_rollup(baselines: Sequence[Dict[str, Any]],
                     name: str) -> Optional[Dict[str, Any]]:
    """The newest embedded rollup for ``name`` across the baselines."""
    for record in reversed(list(baselines)):
        rollup = (record.get("rollups") or {}).get(name)
        if isinstance(rollup, dict):
            return rollup
    return None


def select_scenarios(comparison: TrajectoryComparison) -> List[str]:
    """Which scenarios an ``--attribute`` run should trace.

    Every traceable regression; with none, the single traceable
    scenario that moved the most (largest ``|delta_pct|``) so an
    explicit attribution request always yields a table.
    """
    traceable = set(traced_scenario_names())
    regressed = [delta.name for delta in comparison.deltas
                 if delta.status == STATUS_REGRESSION
                 and delta.name in traceable]
    if regressed:
        return regressed
    movers = sorted((delta for delta in comparison.deltas
                     if delta.name in traceable),
                    key=lambda delta: (-abs(delta.delta_pct), delta.name))
    return [movers[0].name] if movers else []


def attribute_comparison(comparison: TrajectoryComparison,
                         baselines: Sequence[Dict[str, Any]],
                         scenarios: Optional[Sequence[str]] = None
                         ) -> List[ScenarioAttribution]:
    """Trace, roll up, and diff the scenarios behind a comparison.

    Args:
        comparison: the comparator outcome being explained.
        baselines: the same prior records the comparison ran against
            (their embedded rollups are the diff baselines).
        scenarios: explicit scenario names to attribute; default is
            :func:`select_scenarios` over the comparison.
    """
    names = list(scenarios) if scenarios is not None else (
        select_scenarios(comparison))
    by_name = {delta.name: delta for delta in comparison.deltas}
    attributions: List[ScenarioAttribution] = []
    for name in names:
        delta = by_name.get(name)
        tracer, _fingerprint = trace_scenario(name)
        rollup = build_rollup(tracer)
        baseline = _baseline_rollup(baselines, name)
        if baseline is not None:
            attributions.append(ScenarioAttribution(
                name=name,
                status=delta.status if delta else "unknown",
                delta_pct=delta.delta_pct if delta else 0.0,
                rollup=rollup,
                diff=diff_rollups(baseline, rollup)))
        else:
            attributions.append(ScenarioAttribution(
                name=name,
                status=delta.status if delta else "unknown",
                delta_pct=delta.delta_pct if delta else 0.0,
                rollup=rollup,
                note=("no baseline rollup recorded; showing current "
                      "span composition")))
    return attributions


def _format_composition(rollup: Dict[str, Any], top: int) -> str:
    """Fallback table: where the scenario's time goes right now."""
    lines = [f"  current composition of '{rollup.get('root')}' "
             f"({float(rollup.get('root_seconds', 0.0)) * 1e3:.3f} ms "
             f"end-to-end):"]
    spans = sorted(rollup.get("spans", []),
                   key=lambda entry: -float(entry["total_seconds"]))[:top]
    width = max([len(str(entry["name"])) for entry in spans] or [8])
    for entry in spans:
        lines.append(
            f"    {float(entry['total_seconds']) * 1e3:9.3f} ms  "
            f"{str(entry['name']):<{width}s}  "
            f"[{entry.get('category', 'span')}] x{entry.get('count', 1)}")
    critical = sorted(rollup.get("critical", []),
                      key=lambda entry: -float(entry["self_seconds"]))[:3]
    if critical:
        heads = ", ".join(
            f"{entry['name']} "
            f"{float(entry['self_seconds']) * 1e3:.3f} ms"
            for entry in critical)
        lines.append(f"    critical path dominated by: {heads}")
    return "\n".join(lines)


def format_attribution(attributions: Sequence[ScenarioAttribution],
                       top: int = DEFAULT_TOP) -> str:
    """The attribution tables ``bench --compare --attribute`` prints."""
    if not attributions:
        return ("attribution: no traceable scenario in this comparison "
                f"(traceable: {', '.join(traced_scenario_names())})")
    lines: List[str] = []
    for attribution in attributions:
        lines.append(f"attribution for '{attribution.name}' "
                     f"({attribution.status}, "
                     f"{attribution.delta_pct:+.1f}% vs floor):")
        if attribution.note:
            lines.append(f"  note: {attribution.note}")
        if attribution.diff is not None:
            for line in format_diff(attribution.diff, top=top).splitlines():
                lines.append(f"  {line}")
        else:
            lines.append(_format_composition(attribution.rollup, top))
        lines.append("")
    return "\n".join(lines).rstrip()


def attribution_trace_report(name: str, top: int = DEFAULT_TOP) -> str:
    """One scenario's fresh critical path, for ad-hoc inspection."""
    tracer, _fingerprint = trace_scenario(name)
    return format_critical_path(extract_critical_path(tracer), top=top)
