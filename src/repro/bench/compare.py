"""Trajectory comparator: noise-aware regression detection over records.

Per scenario, the baseline is the *minimum of the medians* across every
prior record that measured it — the best time the trajectory has ever
credibly seen, which filters out noisy (slow) historical runs without
letting a single lucky sample set the bar (medians already absorb
per-run jitter).  The current median is then compared against that
floor with a configurable ±% band: above the band is a regression,
below it an improvement, inside it OK.  An absolute ``min_delta_seconds``
guard suppresses regressions on millisecond-scale scenarios, where
scheduler jitter alone can exceed any reasonable ratio band.  A changed
result fingerprint is flagged separately — that is semantic drift, not
a perf delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default tolerance band (percent) around the baseline floor.
DEFAULT_BAND_PCT = 25.0

#: Default absolute slowdown (seconds) below which a ratio-band breach
#: is not flagged — sub-millisecond deltas are scheduler noise.
DEFAULT_MIN_DELTA_SECONDS = 0.0

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_NEW = "new"


@dataclass(frozen=True)
class ScenarioDelta:
    """One scenario's position relative to its trajectory baseline.

    Attributes:
        name: scenario name.
        current_seconds: median of the run under test.
        baseline_seconds: min-of-medians across baselines (None if the
            scenario has no history — status ``new``).
        ratio: current / baseline (1.0 when new).
        status: ``ok`` / ``regression`` / ``improvement`` / ``new``.
        fingerprint_changed: the result scalar differs from the most
            recent baseline that recorded one.
        baseline_count: how many prior records measured this scenario.
    """

    name: str
    current_seconds: float
    baseline_seconds: Optional[float]
    ratio: float
    status: str
    fingerprint_changed: bool = False
    baseline_count: int = 0

    @property
    def delta_pct(self) -> float:
        """Signed percent change vs the baseline floor (0.0 when new)."""
        return (self.ratio - 1.0) * 100.0


@dataclass(frozen=True)
class TrajectoryComparison:
    """Outcome of comparing one record against the trajectory."""

    deltas: Tuple[ScenarioDelta, ...]
    band_pct: float
    baselines: int
    notes: Tuple[str, ...] = ()

    @property
    def regressions(self) -> Tuple[ScenarioDelta, ...]:
        return tuple(d for d in self.deltas
                     if d.status == STATUS_REGRESSION)

    @property
    def improvements(self) -> Tuple[ScenarioDelta, ...]:
        return tuple(d for d in self.deltas
                     if d.status == STATUS_IMPROVEMENT)

    @property
    def ok(self) -> bool:
        """True when no scenario regressed beyond the band."""
        return not self.regressions


def _scenario_median(record: Dict[str, Any], name: str) -> Optional[float]:
    timing = record.get("scenarios", {}).get(name)
    if not isinstance(timing, dict):
        return None
    median = timing.get("median_seconds")
    return float(median) if isinstance(median, (int, float)) else None


def _latest_fingerprint(baselines: Sequence[Dict[str, Any]],
                        name: str) -> Optional[float]:
    for record in reversed(list(baselines)):
        timing = record.get("scenarios", {}).get(name)
        if isinstance(timing, dict):
            fingerprint = timing.get("fingerprint")
            if isinstance(fingerprint, (int, float)):
                return float(fingerprint)
    return None


def compare_records(current: Dict[str, Any],
                    baselines: Sequence[Dict[str, Any]],
                    band_pct: float = DEFAULT_BAND_PCT,
                    min_delta_seconds: float = DEFAULT_MIN_DELTA_SECONDS
                    ) -> TrajectoryComparison:
    """Compare ``current`` against prior records of the trajectory.

    Args:
        current: the record under test (recorder format).
        baselines: prior records, oldest first; scenarios absent from
            every baseline are reported as ``new`` and never fail.
        band_pct: tolerance band in percent; a scenario regresses when
            ``current_median > floor * (1 + band_pct / 100)``.
        min_delta_seconds: absolute guard — a band breach only counts
            as a regression when ``current_median - floor`` also
            exceeds this many seconds.  Percent bands alone over-flag
            millisecond-scale scenarios, where a context switch is a
            double-digit percentage of the whole measurement.
    """
    if band_pct < 0:
        raise ValueError(f"band_pct must be >= 0, got {band_pct}")
    if min_delta_seconds < 0:
        raise ValueError(
            f"min_delta_seconds must be >= 0, got {min_delta_seconds}")
    notes: List[str] = []
    current_machine = current.get("machine") or {}
    for record in baselines:
        machine = record.get("machine") or {}
        if machine and current_machine and machine != current_machine:
            notes.append(
                f"machine fingerprint differs from baseline "
                f"seq {record.get('seq')}; cross-machine timings need a "
                f"wide band")
            break
    current_workers = (current.get("executor") or {}).get("workers")
    for record in baselines:
        workers = (record.get("executor") or {}).get("workers")
        if (workers is not None and current_workers is not None
                and workers != current_workers):
            notes.append(
                f"worker count differs (current {current_workers} vs "
                f"baseline {workers}); parallel timing is "
                f"contention-noisy")
            break
    deltas: List[ScenarioDelta] = []
    for name, timing in current.get("scenarios", {}).items():
        current_median = float(timing["median_seconds"])
        medians = [m for record in baselines
                   if (m := _scenario_median(record, name)) is not None]
        fingerprint = timing.get("fingerprint")
        baseline_fp = _latest_fingerprint(baselines, name)
        fingerprint_changed = (
            isinstance(fingerprint, (int, float))
            and baseline_fp is not None
            and float(fingerprint) != baseline_fp)
        if not medians:
            deltas.append(ScenarioDelta(
                name=name, current_seconds=current_median,
                baseline_seconds=None, ratio=1.0, status=STATUS_NEW,
                fingerprint_changed=fingerprint_changed))
            continue
        floor = min(medians)
        ratio = current_median / floor if floor > 0 else 1.0
        limit = 1.0 + band_pct / 100.0
        if ratio > limit and current_median - floor > min_delta_seconds:
            status = STATUS_REGRESSION
        elif ratio < 1.0 / limit:
            status = STATUS_IMPROVEMENT
        else:
            status = STATUS_OK
        deltas.append(ScenarioDelta(
            name=name, current_seconds=current_median,
            baseline_seconds=floor, ratio=ratio, status=status,
            fingerprint_changed=fingerprint_changed,
            baseline_count=len(medians)))
    return TrajectoryComparison(deltas=tuple(deltas), band_pct=band_pct,
                                baselines=len(list(baselines)),
                                notes=tuple(notes))


def format_comparison(comparison: TrajectoryComparison) -> str:
    """Fixed-width report, one scenario per line, verdict last."""
    lines = [f"trajectory: {comparison.baselines} baseline record(s), "
             f"band ±{comparison.band_pct:g}%"]
    for note in comparison.notes:
        lines.append(f"  note: {note}")
    width = max([len(d.name) for d in comparison.deltas] or [8])
    for delta in comparison.deltas:
        current = f"{delta.current_seconds * 1e3:9.3f} ms"
        if delta.baseline_seconds is None:
            line = (f"  {delta.name:<{width}s} {current}  (new scenario, "
                    f"no baseline)")
        else:
            base = f"{delta.baseline_seconds * 1e3:9.3f} ms"
            line = (f"  {delta.name:<{width}s} {current}  vs floor {base} "
                    f" {delta.delta_pct:+7.1f}%  {delta.status}")
        if delta.fingerprint_changed:
            line += "  [fingerprint changed]"
        lines.append(line)
    verdict = "PASS" if comparison.ok else (
        f"REGRESSION in {len(comparison.regressions)} scenario(s)")
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)
