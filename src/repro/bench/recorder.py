"""Benchmark recorder: run scenarios, persist ``BENCH_<seq>.json`` records.

A record is a schema-versioned JSON document at the repository root
carrying the git SHA, a machine fingerprint, per-scenario wall-clock
samples with their median, a snapshot of :class:`MetricsRegistry`
counters/histograms accumulated during the run, and (optionally) paper
-artifact timings appended by ``benchmarks/conftest.py``.  The committed
sequence of records is the repository's performance trajectory — the
baseline every perf PR proves its speedup (or absence of regression)
against via :mod:`repro.bench.compare`.
"""

from __future__ import annotations

import json
import os
import re
import statistics
import subprocess
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..parallel.executor import SweepExecutor
from .scenarios import get_scenario, trace_scenario, traced_scenario_names

#: Record format identifier and version; bump on incompatible changes.
SCHEMA = "repro.bench"
SCHEMA_VERSION = 1

#: Default repeat count (median-of-N) for one recording run.
DEFAULT_REPEAT = 5

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


# -- timing --------------------------------------------------------------

def time_scenario(name: str, repeat: int = DEFAULT_REPEAT
                  ) -> Dict[str, Any]:
    """Run one scenario's setup once, then time ``repeat`` executions.

    Returns a JSON-ready dict with the raw samples, their median (the
    headline number), min/max/mean, and the result fingerprint.  The
    fingerprint must be identical across repeats; ``stable`` records
    whether it was.
    """
    if repeat <= 0:
        raise ValueError(f"repeat must be positive, got {repeat}")
    scenario = get_scenario(name)
    if scenario.setup is not None:
        scenario.setup()
    samples: List[float] = []
    fingerprint: Optional[float] = None
    stable = True
    for _ in range(repeat):
        start = time.perf_counter()
        value = float(scenario.fn())
        samples.append(time.perf_counter() - start)
        if fingerprint is None:
            fingerprint = value
        elif value != fingerprint:
            stable = False
    return {
        "name": name,
        "repeat": repeat,
        "samples": samples,
        "median_seconds": statistics.median(samples),
        "min_seconds": min(samples),
        "max_seconds": max(samples),
        "mean_seconds": statistics.fmean(samples),
        "fingerprint": fingerprint,
        "stable": stable,
    }


def _time_scenario_task(item: Tuple[str, int]) -> Dict[str, Any]:
    """Module-level task wrapper so SweepExecutor can fork it."""
    name, repeat = item
    return time_scenario(name, repeat)


def run_scenarios(names: Sequence[str], repeat: int = DEFAULT_REPEAT, *,
                  executor: Optional[SweepExecutor] = None,
                  tracer=None, metrics=None) -> Dict[str, Dict[str, Any]]:
    """Time every named scenario, optionally fanned out over workers.

    With ``workers>1`` each scenario is timed in its own forked process
    (isolated caches, no cross-scenario interference); results come back
    in input order either way.
    """
    executor = executor or SweepExecutor()
    timings = executor.map(_time_scenario_task,
                           [(name, repeat) for name in names],
                           tracer=tracer, metrics=metrics, label="bench")
    return {timing["name"]: timing for timing in timings}


def build_rollups(names: Sequence[str]) -> Dict[str, Dict[str, Any]]:
    """Span rollups for every traceable scenario among ``names``.

    Re-runs each scenario once with tracing (untimed — rollups describe
    structure, not speed) and aggregates the trace via
    :func:`repro.telemetry.analyze.build_rollup`.  Scenarios without a
    traced variant are skipped; records that embed the result let
    future ``bench --compare --attribute`` runs diff a regression
    against this commit's span composition without re-running its code.
    """
    from ..telemetry.analyze import build_rollup

    traceable = set(traced_scenario_names())
    rollups: Dict[str, Dict[str, Any]] = {}
    for name in names:
        if name in traceable:
            tracer, _fingerprint = trace_scenario(name)
            rollups[name] = build_rollup(tracer)
    return rollups


# -- environment fingerprint ---------------------------------------------

def machine_fingerprint() -> Dict[str, Any]:
    """CPU count, platform, interpreter, and numpy version."""
    import platform

    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def git_sha(root: str = ".") -> Optional[str]:
    """HEAD commit SHA, or None outside a git checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=root,
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


# -- record file naming ---------------------------------------------------

def seq_of(path: str) -> Optional[int]:
    """Sequence number parsed from a ``BENCH_<seq>.json`` basename."""
    match = _BENCH_NAME.match(os.path.basename(path))
    return int(match.group(1)) if match else None


def list_bench_paths(root: str = ".") -> List[str]:
    """Committed trajectory files under ``root``, in sequence order."""
    try:
        entries = os.listdir(root)
    except OSError:
        return []
    paths = [os.path.join(root, entry) for entry in entries
             if _BENCH_NAME.match(entry)]
    return sorted(paths, key=lambda p: seq_of(p) or 0)


def next_bench_path(root: str = ".") -> str:
    """The next free ``BENCH_<seq>.json`` path under ``root``."""
    taken = [seq_of(path) or 0 for path in list_bench_paths(root)]
    seq = (max(taken) + 1) if taken else 1
    return os.path.join(root, f"BENCH_{seq:04d}.json")


# -- records --------------------------------------------------------------

def build_record(timings: Dict[str, Dict[str, Any]],
                 repeat: int = DEFAULT_REPEAT, *,
                 metrics=None, root: str = ".",
                 rollups: Optional[Dict[str, Dict[str, Any]]] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble a schema-versioned record from scenario timings.

    ``rollups`` (optional, see :func:`build_rollups`) embeds per-
    scenario span rollups so later attribution runs can diff against
    this record without replaying its commit.  Absent on older records;
    every reader treats the section as optional.
    """
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "git_sha": git_sha(root),
        "machine": machine_fingerprint(),
        "repeat": repeat,
        "scenarios": dict(timings),
        "metrics": metrics.rows() if metrics is not None else [],
        "artifacts": {},
    }
    if rollups:
        record["rollups"] = dict(rollups)
    if extra:
        record.update(extra)
    return record


def validate_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Check the BENCH schema; returns the record, raises ValueError."""
    if not isinstance(record, dict):
        raise ValueError("BENCH record must be a JSON object")
    if record.get("schema") != SCHEMA:
        raise ValueError(f"not a {SCHEMA} record: "
                         f"schema={record.get('schema')!r}")
    version = record.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(f"record schema_version {version} is newer than "
                         f"this reader ({SCHEMA_VERSION})")
    scenarios = record.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ValueError("record must carry a 'scenarios' object")
    for name, timing in scenarios.items():
        if not isinstance(timing, dict):
            raise ValueError(f"scenario '{name}' entry must be an object")
        median = timing.get("median_seconds")
        if not isinstance(median, (int, float)) or median < 0:
            raise ValueError(f"scenario '{name}': bad median_seconds "
                             f"{median!r}")
        samples = timing.get("samples")
        if not isinstance(samples, list) or not samples:
            raise ValueError(f"scenario '{name}': missing samples")
    if not isinstance(record.get("machine"), dict):
        raise ValueError("record must carry a 'machine' fingerprint")
    if not isinstance(record.get("artifacts", {}), dict):
        raise ValueError("'artifacts' must be an object")
    rollups = record.get("rollups")
    if rollups is not None:
        from ..telemetry.analyze import validate_rollup

        if not isinstance(rollups, dict):
            raise ValueError("'rollups' must map scenario names to "
                             "trace rollups")
        for name, rollup in rollups.items():
            try:
                validate_rollup(rollup)
            except ValueError as error:
                raise ValueError(
                    f"rollup for scenario '{name}': {error}") from error
    return record


def write_record(record: Dict[str, Any], path: str) -> str:
    """Validate and atomically write a record; returns ``path``."""
    record = dict(record)
    seq = seq_of(path)
    if seq is not None:
        record["seq"] = seq
    validate_record(record)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1, sort_keys=False)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_record(path: str) -> Dict[str, Any]:
    """Load and validate one record."""
    with open(path, encoding="utf-8") as handle:
        return validate_record(json.load(handle))


def load_records(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load several records, ordered by sequence number then mtime."""
    records = []
    for path in paths:
        record = load_record(path)
        record.setdefault("seq", seq_of(path))
        records.append(record)
    records.sort(key=lambda r: (r.get("seq") is None, r.get("seq") or 0))
    return records


# -- paper-artifact feed (benchmarks/conftest.py) -------------------------

def append_artifact_timing(path: str, name: str, seconds: float) -> None:
    """Append one paper-artifact wall-clock sample to a record file.

    Creates a minimal (scenario-less) record when ``path`` does not
    exist, so ``REPRO_BENCH_APPEND=path pytest benchmarks/`` can start a
    fresh file; appending to a recorder-written file shares its format.
    """
    if os.path.exists(path):
        record = load_record(path)
    else:
        record = build_record({}, repeat=0,
                              root=os.path.dirname(path) or ".")
    artifacts = record.setdefault("artifacts", {})
    entry = artifacts.setdefault(name, {"samples": []})
    entry["samples"].append(float(seconds))
    entry["median_seconds"] = statistics.median(entry["samples"])
    write_record(record, path)
