"""Curated, seeded performance scenarios for the benchmark observatory.

Each scenario is a named, module-level (therefore picklable) callable
exercising one hot path of the simulated stack: cold trace build, cold
cycle-level scheduling, systolic bf16 GEMM emulation, the functional
forward pass, a cold DSE point, and a cold serving campaign.  Scenarios
return a scalar *fingerprint* of their result so the recorder can detect
semantic drift (a perf delta with a changed fingerprint means the code
computes something different, not just slower/faster).

A scenario may declare a ``setup`` callable that runs once, untimed,
before the repeat loop — used to warm process-wide state (LUT caches,
model weights, the A100 reference latency) that would otherwise make the
first sample an outlier.  Scenarios tagged ``cold`` clear the in-memory
trace/schedule caches inside the timed body so every repeat measures the
same cold-path work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Every scenario derives its randomness from this seed.
SEED = 2022

#: Workload shape shared by the workload-level scenarios.
BATCH = 8
SEQ_LEN = 128

#: Tag selecting the cheap subset CI smoke-checks on every push.
FAST_TAG = "fast"


@dataclass(frozen=True)
class Scenario:
    """One registered perf scenario.

    Attributes:
        name: registry key (also the key in BENCH records).
        description: one-line summary shown by ``bench --list``.
        fn: the timed body; returns a scalar result fingerprint.
        setup: optional untimed warm-up run once before the repeats.
        tags: free-form labels; ``fast`` marks the CI smoke subset.
        traced: optional variant taking a ``Tracer``; runs the same
            simulated work with sim-time spans recorded so the trace
            analytics engine (:mod:`repro.telemetry.analyze`) can
            attribute a regression to specific spans.  Only scenarios
            whose timed body is a simulation have one — array-kernel
            and datapath microbenchmarks have no sim-time structure.
    """

    name: str
    description: str
    fn: Callable[[], float]
    setup: Optional[Callable[[], None]] = None
    tags: Tuple[str, ...] = ()
    traced: Optional[Callable[..., float]] = None


_REGISTRY: Dict[str, Scenario] = {}

#: Per-scenario state populated by setup callables (model instances,
#: prebuilt workloads); forked workers inherit a warm copy.
_STATE: Dict[str, object] = {}


def register(name: str, description: str, *,
             setup: Optional[Callable[[], None]] = None,
             tags: Sequence[str] = (),
             traced: Optional[Callable[..., float]] = None
             ) -> Callable[[Callable[[], float]], Callable[[], float]]:
    """Class-less decorator registering a module-level scenario callable."""
    def decorate(fn: Callable[[], float]) -> Callable[[], float]:
        if name in _REGISTRY:
            raise ValueError(f"scenario '{name}' already registered")
        _REGISTRY[name] = Scenario(name=name, description=description,
                                   fn=fn, setup=setup, tags=tuple(tags),
                                   traced=traced)
        return fn
    return decorate


def traced_scenario_names() -> List[str]:
    """Scenarios with a traced variant, in registration order."""
    return [name for name, scenario in _REGISTRY.items()
            if scenario.traced is not None]


def trace_scenario(name: str):
    """Run a scenario's traced variant; returns ``(tracer, fingerprint)``.

    Runs the scenario's ``setup`` first (untimed state, as in a normal
    recording run) and then its traced body against a fresh tracer.
    Raises ``KeyError`` for unknown scenarios and ``ValueError`` for
    scenarios with no traced variant.
    """
    from ..telemetry import Tracer

    scenario = get_scenario(name)
    if scenario.traced is None:
        have = ", ".join(traced_scenario_names())
        raise ValueError(f"scenario '{name}' has no traced variant; "
                         f"traceable: {have}")
    if scenario.setup is not None:
        scenario.setup()
    tracer = Tracer()
    fingerprint = float(scenario.traced(tracer))
    return tracer, fingerprint


def scenarios() -> Dict[str, Scenario]:
    """The registry, in registration order (a copy; mutating is safe)."""
    return dict(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    scenario = _REGISTRY.get(name)
    if scenario is None:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown scenario '{name}'; choose from: {known}")
    return scenario


def scenario_names(selector: Optional[str] = None) -> List[str]:
    """Resolve a ``--scenarios`` selector to registry names.

    ``None``/``"all"`` selects everything, a tag (e.g. ``"fast"``)
    selects every scenario carrying it, and otherwise the selector is a
    comma-separated list of scenario names.
    """
    if selector is None or selector == "all":
        return list(_REGISTRY)
    tagged = [name for name, scenario in _REGISTRY.items()
              if selector in scenario.tags]
    if tagged:
        return tagged
    names = [part.strip() for part in selector.split(",") if part.strip()]
    if not names:
        raise KeyError("empty scenario selector")
    for name in names:
        get_scenario(name)  # raises KeyError with the known list
    return names


# -- shared fixtures -----------------------------------------------------

def _base_config():
    from ..model.config import protein_bert_base

    return protein_bert_base()


def _tiny_config():
    from ..model.config import protein_bert_tiny

    return protein_bert_tiny(num_layers=2, hidden_size=64, num_heads=4,
                             intermediate_size=128)


def _hardware():
    from ..arch.config import table4_configs

    for config in table4_configs():
        if config.name == "BestPerf":
            return config
    return table4_configs()[0]  # pragma: no cover - table always has it


# -- scenarios -----------------------------------------------------------

@register("trace_build",
          "cold symbolic trace + dataflow-graph build "
          f"(batch {BATCH}, seq {SEQ_LEN})",
          tags=(FAST_TAG, "cold"))
def scenario_trace_build() -> float:
    from ..dataflow.builder import build_graph_for

    graph = build_graph_for(_base_config(), batch=BATCH, seq_len=SEQ_LEN)
    return float(len(graph))


def _setup_schedule() -> None:
    scenario_schedule()  # warms the trace cache; scheduling itself is cold


def _traced_schedule(tracer) -> float:
    from ..sched.orchestrator import Orchestrator

    result = Orchestrator(_hardware()).run(_base_config(), batch=BATCH,
                                           seq_len=SEQ_LEN, tracer=tracer)
    return float(result.makespan_seconds)


@register("schedule",
          "cold cycle-level schedule of one batched inference "
          "(warm trace cache)",
          setup=_setup_schedule, tags=(FAST_TAG, "cold"),
          traced=_traced_schedule)
def scenario_schedule() -> float:
    from ..sched.orchestrator import Orchestrator

    result = Orchestrator(_hardware()).run(_base_config(), batch=BATCH,
                                           seq_len=SEQ_LEN)
    return float(result.makespan_seconds)


def _setup_systolic_gemm() -> None:
    scenario_systolic_gemm()  # warms the shared GELU LUT


@register("systolic_gemm",
          "bf16 systolic GEMM + bias + GELU chain (256x256x256, G-Type)",
          setup=_setup_systolic_gemm, tags=(FAST_TAG,))
def scenario_systolic_gemm() -> float:
    from ..arch.systolic import (
        ExecutionStats,
        SimdOpcode,
        SimdStep,
        make_array,
    )
    from ..dataflow.patterns import ArrayType

    rng = np.random.default_rng(SEED)
    a = rng.standard_normal((256, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)
    array = make_array(16, ArrayType.G)
    stats = ExecutionStats()
    out = array.execute_chain(
        a, b, (SimdStep(SimdOpcode.ADD, 0.5), SimdStep(SimdOpcode.GELU)),
        stats)
    return float(np.abs(out).sum())


def _setup_functional_forward() -> None:
    from ..arch.accelerated_model import AcceleratedProteinBert
    from ..model.bert import ProteinBert

    _STATE["functional_forward"] = AcceleratedProteinBert(
        ProteinBert(_tiny_config(), seed=SEED))


@register("functional_forward",
          "functional bf16/LUT forward pass (tiny model, 2x32 tokens)",
          setup=_setup_functional_forward, tags=(FAST_TAG,))
def scenario_functional_forward() -> float:
    model = _STATE.get("functional_forward")
    if model is None:
        _setup_functional_forward()
        model = _STATE["functional_forward"]
    rng = np.random.default_rng(SEED)
    tokens = rng.integers(0, _tiny_config().vocab_size, size=(2, 32))
    hidden = model.forward(tokens)
    return float(np.abs(hidden).sum())


def _setup_dse_point() -> None:
    from ..dse.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(batch=BATCH, seq_len=SEQ_LEN)
    explorer.a100_runtime()  # memoize the reference latency untimed
    _STATE["dse_point"] = explorer


def _traced_dse_point(tracer) -> float:
    # The explorer's cached path has no tracer plumbing; the sim-time
    # content of a DSE point is its cold schedule, so trace that.
    from ..parallel.cache import clear_caches
    from ..sched.orchestrator import Orchestrator

    clear_caches()
    result = Orchestrator(_hardware()).run(_base_config(), batch=BATCH,
                                           seq_len=SEQ_LEN, tracer=tracer)
    return float(result.makespan_seconds)


@register("dse_point",
          "cold DSE point: trace + schedule + power/area for BestPerf",
          setup=_setup_dse_point, tags=("cold",),
          traced=_traced_dse_point)
def scenario_dse_point() -> float:
    from ..parallel.cache import clear_caches

    explorer = _STATE.get("dse_point")
    if explorer is None:
        _setup_dse_point()
        explorer = _STATE["dse_point"]
    clear_caches()  # in-memory only: every repeat re-traces + re-schedules
    point = explorer.evaluate(_hardware())
    return float(point.normalized_runtime)


def _setup_campaign_simulate() -> None:
    from ..proteins.workloads import uniprot_like_workload
    from ..system.serving import CampaignSimulator

    _STATE["campaign_simulate"] = (
        CampaignSimulator(model_config=_base_config(), max_batch=BATCH),
        uniprot_like_workload(count=16, seed=SEED))


def _traced_campaign_simulate(tracer) -> float:
    from ..parallel.cache import clear_caches

    state = _STATE.get("campaign_simulate")
    if state is None:
        _setup_campaign_simulate()
        state = _STATE["campaign_simulate"]
    simulator, workload = state
    clear_caches()
    report = simulator.run_on_prose(workload, tracer=tracer)
    return float(report.total_seconds)


@register("campaign_simulate",
          "cold serving campaign: bucket + schedule 16 UniProt-like "
          "sequences",
          setup=_setup_campaign_simulate, tags=("cold",),
          traced=_traced_campaign_simulate)
def scenario_campaign_simulate() -> float:
    from ..parallel.cache import clear_caches

    state = _STATE.get("campaign_simulate")
    if state is None:
        _setup_campaign_simulate()
        state = _STATE["campaign_simulate"]
    simulator, workload = state
    clear_caches()  # cold: per-bucket schedules are recomputed
    report = simulator.run_on_prose(workload)
    return float(report.total_seconds)


def _setup_fleet_simulate() -> None:
    from ..fleet import FleetSimulator, build_fleet, build_scenario
    from ..model.config import protein_bert_tiny
    from ..reliability import DegradationPolicy, FaultModel

    topology = build_fleet(racks=2, hosts_per_rack=2, instances_per_host=2)
    simulator = FleetSimulator(
        topology, model_config=protein_bert_tiny(),
        fault_model=FaultModel(seed=SEED),
        policy=DegradationPolicy(min_capacity_fraction=0.25),
        seq_len=64, reference_batch=4)
    simulator.nominal_makespan(64)  # warm the schedule cache
    _STATE["fleet_simulate"] = (
        simulator, build_scenario("rack_power_loss", topology))


def _traced_fleet_simulate(tracer) -> float:
    state = _STATE.get("fleet_simulate")
    if state is None:
        _setup_fleet_simulate()
        state = _STATE["fleet_simulate"]
    simulator, scenario = state
    report = simulator.run(batch=64, scenario=scenario, tracer=tracer)
    return float(report.makespan_seconds)


@register("fleet_simulate",
          "fleet chaos recovery: rack power loss over 2x2x2, detect + "
          "re-shard + drain",
          setup=_setup_fleet_simulate, tags=(FAST_TAG,),
          traced=_traced_fleet_simulate)
def scenario_fleet_simulate() -> float:
    state = _STATE.get("fleet_simulate")
    if state is None:
        _setup_fleet_simulate()
        state = _STATE["fleet_simulate"]
    simulator, scenario = state
    report = simulator.run(batch=64, scenario=scenario)
    return float(report.makespan_seconds)


def _setup_lut_lookup() -> None:
    from ..arch.lut import make_exp_lut, make_gelu_lut

    rng = np.random.default_rng(SEED)
    # Mix of magnitudes spanning in-window, below-window, and above-window
    # exponents for both LUTs, both signs.
    values = np.concatenate([
        rng.standard_normal(131072).astype(np.float32),          # in-window
        rng.standard_normal(65536).astype(np.float32) * 1e-4,    # below
        rng.standard_normal(65536).astype(np.float32) * 1e4,     # above
    ])
    rng.shuffle(values)
    _STATE["lut_lookup"] = (make_gelu_lut(), make_exp_lut(),
                            values.reshape(512, 512))


@register("lut_lookup",
          "dense bulk LUT gather: GELU + Exp over a 512x512 bf16 tensor "
          "spanning all exponent regions",
          setup=_setup_lut_lookup, tags=(FAST_TAG,))
def scenario_lut_lookup() -> float:
    state = _STATE.get("lut_lookup")
    if state is None:
        _setup_lut_lookup()
        state = _STATE["lut_lookup"]
    gelu, exp, values = state
    gelu_out = gelu.lookup(values)
    # exp over -|x| keeps every output finite (saturating positives would
    # swamp the fingerprint sum with BF16_MAX).
    exp_out = exp.lookup(-np.abs(values))
    return float(np.abs(gelu_out).sum() + exp_out.sum())


def _setup_timeline_reserve() -> None:
    rng = np.random.default_rng(SEED)
    ready = np.cumsum(rng.uniform(0.5, 1.5, size=10000))
    # ~5% of requests rewind: an earlier-ready thread backfilling a gap.
    rewind = rng.random(10000) < 0.05
    ready[rewind] *= rng.uniform(0.2, 0.8, size=int(rewind.sum()))
    durations = rng.uniform(0.1, 2.0, size=10000)
    _STATE["timeline_reserve"] = (ready.tolist(), durations.tolist())


@register("timeline_reserve",
          "10k gap-aware Timeline reservations (~5% out-of-order backfills)",
          setup=_setup_timeline_reserve, tags=(FAST_TAG,))
def scenario_timeline_reserve() -> float:
    from ..sched.events import Timeline

    state = _STATE.get("timeline_reserve")
    if state is None:
        _setup_timeline_reserve()
        state = _STATE["timeline_reserve"]
    ready, durations = state
    timeline = Timeline("bench")
    total = 0.0
    for earliest, duration in zip(ready, durations):
        start, _end = timeline.reserve(earliest, duration)
        total += start
    return total + timeline.busy_seconds


def _setup_trace_analyze() -> None:
    from ..telemetry import Tracer

    tracer = Tracer()
    _traced_schedule(tracer)
    _STATE["trace_analyze"] = tracer


@register("trace_analyze",
          "trace analytics over a warm schedule trace: critical path + "
          "utilization + self-diff",
          setup=_setup_trace_analyze, tags=(FAST_TAG,))
def scenario_trace_analyze() -> float:
    from ..telemetry import analyze_trace, build_rollup, diff_rollups

    tracer = _STATE.get("trace_analyze")
    if tracer is None:
        _setup_trace_analyze()
        tracer = _STATE["trace_analyze"]
    analysis = analyze_trace(tracer)
    rollup = build_rollup(tracer)
    diff = diff_rollups(rollup, rollup)
    # Folds in the path shape, idle gaps, resource concurrency, and the
    # (expected-zero) self-diff so any analytics drift moves the number.
    return (analysis.path.total_seconds
            + len(analysis.path.hops)
            + analysis.path.gap_seconds
            + analysis.utilization.mean_concurrency
            + abs(diff.delta_seconds))


@register("monitor_overhead",
          "fleet_simulate with a live SLO monitor attached: time-series "
          "sampling + burn-rate alerting on top of the same run",
          setup=_setup_fleet_simulate, tags=(FAST_TAG,))
def scenario_monitor_overhead() -> float:
    from ..monitor import fleet_monitor

    state = _STATE.get("fleet_simulate")
    if state is None:
        _setup_fleet_simulate()
        state = _STATE["fleet_simulate"]
    simulator, scenario = state
    # A Monitor arms once per run, so building it is part of the timed
    # body; the delta vs fleet_simulate is the monitoring overhead.
    report = simulator.run(batch=64, scenario=scenario,
                           monitor=fleet_monitor())
    # Fingerprint folds in the alert count: a run that stops paging (or
    # pages more) drifts the fingerprint even at identical makespan.
    return float(report.makespan_seconds) * (1.0 + report.slo.alerts)
