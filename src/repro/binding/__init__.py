"""The in-silico binding-affinity study (Section 2.2)."""

from .experiment import (
    PAPER_RANK_CORRELATION,
    BindingStudyResult,
    default_extractor_config,
    run_binding_study,
)
from .features import FeatureExtractor
from .metrics import pearson, rankdata, spearman
from .regression import PcaRidgeModel, RidgeRegression

__all__ = [
    "PAPER_RANK_CORRELATION",
    "BindingStudyResult",
    "FeatureExtractor",
    "PcaRidgeModel",
    "RidgeRegression",
    "default_extractor_config",
    "pearson",
    "rankdata",
    "run_binding_study",
    "spearman",
]
