"""The in-silico binding-affinity validation (paper Section 2.2).

Pipeline: Protein BERT feature extraction over Fab variant sequences →
ridge regression trained on the Herceptin-like variant library → rank
correlation evaluated on the independent BH1-like library (both bind the
same HER2 epitope in the synthetic ground truth).  The paper reports a
rank correlation of 0.5161 — "near or above 0.5" is the bar for
experimental validity.

The default extractor is a scaled Protein BERT (4 layers, hidden 256);
the paper's full 12×768 encoder plugs in unchanged via ``model`` but costs
minutes of NumPy time on a laptop.  The paper itself notes the workflow
"automatically improves ... as larger and more powerful Protein BERT-style
models are developed".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..model.bert import ProteinBert
from ..model.config import BertConfig
from ..model.weights import pretrained_like_weights
from ..proteins.datasets import BindingDataset, make_binding_dataset
from .features import FeatureExtractor
from .metrics import pearson, spearman
from .regression import PcaRidgeModel

#: The paper's reported rank correlation for the software experiment.
PAPER_RANK_CORRELATION = 0.5161


def default_extractor_config() -> BertConfig:
    """Scaled Protein BERT used by the default binding study."""
    return BertConfig(hidden_size=256, num_layers=4, num_heads=8,
                      intermediate_size=512, max_position=512)


@dataclass(frozen=True)
class BindingStudyResult:
    """Outcome of one binding-affinity experiment.

    Attributes:
        rank_correlation: Spearman ρ on the independent BH1 test set.
        pearson_correlation: Pearson r on the same predictions.
        train_rank_correlation: in-sample ρ (sanity/overfitting signal).
        num_train / num_test: dataset sizes (paper: 39 / 35).
    """

    rank_correlation: float
    pearson_correlation: float
    train_rank_correlation: float
    num_train: int
    num_test: int

    @property
    def experimentally_valid(self) -> bool:
        """The paper's validity bar: rank correlation near or above 0.5."""
        return self.rank_correlation >= 0.40


def run_binding_study(dataset: Optional[BindingDataset] = None,
                      model: Optional[ProteinBert] = None,
                      alpha: float = 1.0, components: int = 4,
                      seed: int = 2022) -> BindingStudyResult:
    """Run the full Section 2.2 experiment.

    Args:
        dataset: the Fab variant libraries; synthesized deterministically
            when omitted (39 Herceptin-like train, 35 BH1-like test).
        model: the feature-extraction encoder; defaults to the scaled
            Protein BERT with pretrained-like (descriptor-structured)
            weights — see :func:`pretrained_like_weights`.
        alpha: ridge regularization strength (in PCA space).
        components: principal components kept by the downstream model.
        seed: seed for dataset synthesis and default model weights.

    Returns:
        A :class:`BindingStudyResult` with train/test correlations.
    """
    if dataset is None:
        dataset = make_binding_dataset(seed=seed)
    if model is None:
        config = default_extractor_config()
        model = ProteinBert(config,
                            weights=pretrained_like_weights(config,
                                                            seed=seed))

    extractor = FeatureExtractor(model)
    train_features = extractor.extract(dataset.train_sequences)
    test_features = extractor.extract(dataset.test_sequences)

    regression = PcaRidgeModel(components=components, alpha=alpha).fit(
        train_features, dataset.train_affinities)
    test_predictions = regression.predict(test_features)
    train_predictions = regression.predict(train_features)

    return BindingStudyResult(
        rank_correlation=spearman(test_predictions,
                                  dataset.test_affinities),
        pearson_correlation=pearson(test_predictions,
                                    dataset.test_affinities),
        train_rank_correlation=spearman(train_predictions,
                                        dataset.train_affinities),
        num_train=len(dataset.train),
        num_test=len(dataset.test))
