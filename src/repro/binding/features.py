"""BERT feature extraction for downstream protein tasks.

The downstream binding model "performs feature extraction via the Protein
BERT model from TAPE": sequences are tokenized, encoded by the BERT stack,
and the final hidden states are mean-pooled over real tokens into one
fixed-width feature vector per protein.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..model.bert import ProteinBert
from ..proteins.tokenizer import ProteinTokenizer


class FeatureExtractor:
    """Extracts pooled Protein BERT embeddings for protein sequences.

    Args:
        model: the encoder to extract with.
        tokenizer: protein tokenizer (defaults to the standard one).
        batch_size: sequences encoded per forward pass.
    """

    def __init__(self, model: ProteinBert,
                 tokenizer: Optional[ProteinTokenizer] = None,
                 batch_size: int = 8) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.tokenizer = tokenizer or ProteinTokenizer()
        self.batch_size = batch_size

    @property
    def feature_dim(self) -> int:
        return self.model.config.hidden_size

    def extract(self, sequences: Sequence[str]) -> np.ndarray:
        """Features of shape ``(len(sequences), hidden_size)``."""
        if not sequences:
            raise ValueError("extract requires at least one sequence")
        chunks: List[np.ndarray] = []
        for start in range(0, len(sequences), self.batch_size):
            batch = sequences[start:start + self.batch_size]
            encoding = self.tokenizer.encode_batch(batch)
            chunks.append(self.model.features(
                encoding.ids, attention_mask=encoding.attention_mask))
        return np.concatenate(chunks, axis=0)
