"""Rank-correlation metrics for the binding-affinity study.

The paper measures test-set accuracy with rank correlation — "a statistic
that measures the degree of similarity between different rankings of the
same variables" — reporting 0.5161 for the Herceptin→BH1 transfer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Ranks (1-based) with ties averaged, matching scipy.stats.rankdata."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("rankdata expects a 1-D sequence")
    order = np.argsort(array, kind="mergesort")
    ranks = np.empty(len(array), dtype=np.float64)
    ranks[order] = np.arange(1, len(array) + 1)
    # Average ranks within tie groups.
    sorted_values = array[order]
    index = 0
    while index < len(array):
        stop = index
        while (stop + 1 < len(array)
               and sorted_values[stop + 1] == sorted_values[index]):
            stop += 1
        if stop > index:
            mean_rank = ranks[order[index:stop + 1]].mean()
            ranks[order[index:stop + 1]] = mean_rank
        index = stop + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation between two equal-length sequences."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("spearman expects two equal-length 1-D sequences")
    if len(x) < 2:
        raise ValueError("spearman needs at least two observations")
    rx, ry = rankdata(x), rankdata(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx ** 2).sum() * (ry ** 2).sum())
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation (secondary metric for the study)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("pearson expects two equal-length 1-D sequences")
    xc, yc = x - x.mean(), y - y.mean()
    denom = np.sqrt((xc ** 2).sum() * (yc ** 2).sum())
    if denom == 0:
        return 0.0
    return float((xc * yc).sum() / denom)
