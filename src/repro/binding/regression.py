"""Regularized linear regression for the downstream binding model.

The paper "fits a regularized linear regression model [3] on 39 variant
Herceptin Fab sequences" — a ridge regression over BERT-extracted
features, the standard TAPE/low-N protein engineering setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class RidgeRegression:
    """Closed-form ridge regression with feature standardization.

    Args:
        alpha: L2 regularization strength.
    """

    alpha: float = 1.0
    _weights: Optional[np.ndarray] = None
    _bias: float = 0.0
    _mean: Optional[np.ndarray] = None
    _scale: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray
            ) -> "RidgeRegression":
        """Fit on ``(samples, features)`` X and ``(samples,)`` y."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or targets.ndim != 1:
            raise ValueError("fit expects 2-D features and 1-D targets")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("sample counts differ")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")

        self._mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        x = (features - self._mean) / scale
        y_mean = targets.mean()
        y = targets - y_mean

        # Solve (XᵀX + αI) w = Xᵀy in the smaller of the two dimensions.
        samples, width = x.shape
        if width <= samples:
            gram = x.T @ x + self.alpha * np.eye(width)
            self._weights = np.linalg.solve(gram, x.T @ y)
        else:
            # Dual form: w = Xᵀ (XXᵀ + αI)⁻¹ y — cheaper when width > n.
            kernel = x @ x.T + self.alpha * np.eye(samples)
            self._weights = x.T @ np.linalg.solve(kernel, y)
        self._bias = float(y_mean)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``(samples, features)`` X."""
        if self._weights is None:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        x = (features - self._mean) / self._scale
        return x @ self._weights + self._bias

    def score_spearman(self, features: np.ndarray,
                       targets: np.ndarray) -> float:
        """Spearman rank correlation between predictions and targets."""
        from .metrics import spearman

        return spearman(self.predict(features), np.asarray(targets))


@dataclass
class PcaRidgeModel:
    """PCA-reduced ridge regression — the low-N downstream model.

    With tens of training variants and hundreds of feature dimensions, a
    plain ridge overfits library-specific directions that do not transfer
    across antibody scaffolds.  Projecting onto the top principal
    components of the *training* features first (standard practice in
    low-N protein engineering [Biswas et al.]) keeps the high-variance,
    composition-level directions that do transfer.

    Args:
        components: principal components retained.
        alpha: ridge strength in the reduced space.
    """

    components: int = 4
    alpha: float = 1.0
    _ridge: Optional[RidgeRegression] = None
    _mean: Optional[np.ndarray] = None
    _basis: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray
            ) -> "PcaRidgeModel":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("fit expects 2-D features")
        if not 1 <= self.components <= min(features.shape):
            raise ValueError("components out of range for the data")
        self._mean = features.mean(axis=0)
        centered = features - self._mean
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        self._basis = vt[:self.components]
        self._ridge = RidgeRegression(alpha=self.alpha).fit(
            centered @ self._basis.T, np.asarray(targets))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._ridge is None:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        return self._ridge.predict((features - self._mean) @ self._basis.T)
