"""Command-line interface for the ProSE reproduction.

    python -m repro.cli simulate --batch 128 --seq-len 512
    python -m repro.cli compare --baseline a100
    python -m repro.cli experiments --only "Figure 18"
    python -m repro.cli dse --limit 40
    python -m repro.cli binding
    python -m repro.cli embed MEYQKLVIV ACDEFGHIK
    python -m repro.cli zoo
    python -m repro.cli reliability --fault-rate 0.05 --seed 7
    python -m repro.cli fleet --scenario rack_power_loss --trace-out fleet.json
    python -m repro.cli monitor --scenario rack_power_loss
    python -m repro.cli trace --seq-len 128 --batch 8 --out trace.json
    python -m repro.cli bench --repeat 5 --compare BENCH_0001.json --check
    python -m repro.cli analyze --scenario dse_point --format ascii
    python -m repro.cli analyze --trace now.json --against before.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .arch.config import HardwareConfig, table4_configs
from .core.engine import ProSEEngine
from .core.session import InferenceSession
from .model.zoo import describe, zoo_names


def _hardware_by_name(name: str) -> HardwareConfig:
    for config in table4_configs():
        if config.name.lower() == name.lower():
            return config
    names = ", ".join(config.name for config in table4_configs())
    raise SystemExit(f"unknown hardware '{name}'; choose from: {names}")


def cmd_simulate(args: argparse.Namespace) -> int:
    engine = ProSEEngine(hardware=_hardware_by_name(args.hardware))
    report = engine.simulate(batch=args.batch, seq_len=args.seq_len,
                             threads=args.threads)
    print(f"configuration:    {report.config_name}")
    print(f"throughput:       {report.throughput:.1f} inferences/s")
    print(f"batch latency:    {report.latency_seconds * 1e3:.1f} ms")
    print(f"system power:     {report.system_power_watts:.1f} W")
    print(f"efficiency:       {report.efficiency:.2f} inf/s/W")
    print(f"bottleneck:       {report.schedule.bottleneck}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    engine = ProSEEngine(hardware=_hardware_by_name(args.hardware))
    devices = {"a100": engine.a100, "tpuv2": engine.tpu_v2,
               "tpuv3": engine.tpu_v3}
    names = [args.baseline] if args.baseline != "all" else list(devices)
    for name in names:
        comparison = engine.compare(devices[name], batch=args.batch,
                                    seq_len=args.seq_len)
        print(f"vs {comparison.baseline_name:6s}: "
              f"{comparison.speedup:5.2f}x speedup, "
              f"{comparison.efficiency_gain:7.1f}x power efficiency")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import run_all

    run_all(only=args.only or None, workers=args.workers)
    return 0


def _print_design_points(result) -> None:
    print(f"evaluated {len(result.points)} configurations")
    for label, point in (("BestPerf", result.best_perf),
                         ("MostPowerEfficient",
                          result.most_power_efficient),
                         ("MostAreaEfficient",
                          result.most_area_efficient)):
        print(f"{label:>20s}: {point.config.name} "
              f"runtime(norm)={point.normalized_runtime:.3f} "
              f"power={point.power_watts:.2f}W "
              f"area={point.area_mm2:.2f}mm2")


def cmd_dse(args: argparse.Namespace) -> int:
    from .dse.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(batch=args.batch,
                                   seq_len=args.seq_len)
    result = explorer.sweep(limit=args.limit, workers=args.workers)
    _print_design_points(result)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from .dse.explorer import DesignSpaceExplorer
    from .dse.space import DEFAULT_PE_BUDGET
    from .parallel import (
        SweepExecutor,
        cache_stats,
        clear_caches,
        configure,
        record_cache_metrics,
    )
    from .telemetry import MetricsRegistry, Tracer, write_chrome_trace

    if args.cache_dir:
        configure(disk_dir=args.cache_dir)
    if args.no_cache:
        configure(enabled=False)
    if args.clear_cache:
        clear_caches(disk=True)

    tracer = Tracer() if args.trace_out else None
    metrics = MetricsRegistry()
    executor = SweepExecutor(SweepExecutor.resolve_workers(args.workers))
    explorer = DesignSpaceExplorer(batch=args.batch, seq_len=args.seq_len)
    started = time.perf_counter()
    result = explorer.sweep(pe_budget=args.budget or DEFAULT_PE_BUDGET,
                            limit=args.limit, executor=executor,
                            tracer=tracer, metrics=metrics)
    elapsed = time.perf_counter() - started
    _print_design_points(result)
    print(f"wall time: {elapsed:.3f}s "
          f"({executor.workers} worker(s), mode={executor.last_mode})")
    worker_stats = executor.last_cache_stats
    parent_stats = cache_stats()
    for name in sorted(set(worker_stats) | set(parent_stats)):
        snap = worker_stats.get(name) or parent_stats.get(name)
        print(f"cache[{name}]: {snap.hits} hits, {snap.misses} misses, "
              f"{snap.disk_hits} disk hits")
    record_cache_metrics(metrics, worker_stats or None)
    if args.trace_out:
        data = write_chrome_trace(
            tracer, args.trace_out,
            metadata={"tool": "repro.cli sweep", "version": __version__,
                      "workers": executor.workers,
                      "mode": executor.last_mode})
        print(f"trace: {len(data['traceEvents'])} events -> "
              f"{args.trace_out}")
    return 0


def cmd_binding(args: argparse.Namespace) -> int:
    from .binding.experiment import run_binding_study
    from .experiments.binding_study import format_result

    print(format_result(run_binding_study(seed=args.seed)))
    return 0


def cmd_embed(args: argparse.Namespace) -> int:
    session = InferenceSession.small(functional=args.functional)
    result = session.embed(args.sequences)
    print(f"embedded {len(args.sequences)} sequences -> "
          f"{result.embeddings.shape[1]}-d features "
          f"({'functional datapath' if result.functional else 'reference'})")
    print(f"estimated ProSE latency: "
          f"{result.estimated_latency_seconds * 1e3:.3f} ms, energy: "
          f"{result.estimated_energy_joules * 1e3:.2f} mJ")
    for sequence, row in zip(args.sequences, result.embeddings):
        head = " ".join(f"{value:+.3f}" for value in row[:4])
        print(f"  {sequence[:20]:<22s} [{head} ...]")
    return 0


def _write_metrics_out(metrics, path: str) -> None:
    """Dump a registry to ``path``; the suffix picks CSV vs JSONL."""
    from .telemetry import write_metrics_csv, write_metrics_jsonl

    if path.endswith(".csv"):
        write_metrics_csv(metrics, path)
    else:
        write_metrics_jsonl(metrics, path)
    print(f"metrics:   {len(metrics)} series -> {path}")


def cmd_reliability(args: argparse.Namespace) -> int:
    from .experiments import fault_campaign
    from .model.config import protein_bert_tiny
    from .reliability import FaultModel, FaultRates
    from .system.multi import ProSESystem
    from .telemetry import MetricsRegistry

    metrics = MetricsRegistry("reliability") if args.metrics_out else None
    if args.sweep:
        result = fault_campaign.run(seed=args.seed, workers=args.workers,
                                    metrics=metrics)
        print(fault_campaign.format_result(result))
        if args.metrics_out:
            _write_metrics_out(metrics, args.metrics_out)
        return 0

    rate = args.fault_rate
    result = fault_campaign.run(fault_rates=(rate,), seed=args.seed,
                                metrics=metrics)
    report = result.serving_reports[0]
    print(f"serving campaign @ fault rate {rate:g} (seed {args.seed}):")
    print(f"  {report.summary()}")

    config = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                               intermediate_size=512, max_position=2048)
    fault_model = FaultModel(
        FaultRates(instance_failure=rate, link_transient=rate / 10.0),
        seed=args.seed)
    scenario = ProSESystem(instances=args.instances).simulate_with_faults(
        config, batch=args.batch, seq_len=args.seq_len,
        fault_model=fault_model)
    reliability = scenario.reliability
    print(f"{args.instances}-instance system @ instance-failure rate "
          f"{rate:g}:")
    print(f"  {reliability.summary()}")
    print(f"  survivors: {scenario.survivors}, energy "
          f"{scenario.energy_joules:.3f} J "
          f"(fault-free {scenario.fault_free_energy_joules:.3f} J)")
    if args.metrics_out:
        _write_metrics_out(metrics, args.metrics_out)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from .experiments import chaos_campaign
    from .fleet import (
        SCENARIO_BUILDERS,
        FleetSimulator,
        build_fleet,
        build_scenario,
    )
    from .model.config import protein_bert_base, protein_bert_tiny
    from .reliability import (
        DegradationPolicy,
        FaultModel,
        FaultRates,
        derive_task_seed,
    )
    from .telemetry import (
        MetricsRegistry,
        Tracer,
        validate_chrome_trace,
        write_chrome_trace,
    )

    if args.list:
        topology = build_fleet(racks=args.racks,
                               hosts_per_rack=args.hosts_per_rack,
                               instances_per_host=args.instances_per_host,
                               heterogeneous=args.heterogeneous)
        width = max(len(name) for name in SCENARIO_BUILDERS)
        for name, builder in SCENARIO_BUILDERS.items():
            print(f"{name:<{width}s}  {builder(topology).description}")
        return 0

    if args.scenario == "all":
        result = chaos_campaign.run(
            batch=args.batch, seed=args.seed, racks=args.racks,
            hosts_per_rack=args.hosts_per_rack,
            instances_per_host=args.instances_per_host,
            heterogeneous=args.heterogeneous, workers=args.workers)
        print(chaos_campaign.format_result(result))
        return 0

    topology = build_fleet(racks=args.racks,
                           hosts_per_rack=args.hosts_per_rack,
                           instances_per_host=args.instances_per_host,
                           hardware=_hardware_by_name(args.hardware),
                           heterogeneous=args.heterogeneous)
    scenario = (None if args.scenario == "none"
                else build_scenario(args.scenario, topology))
    config = protein_bert_tiny() if args.tiny else protein_bert_base()
    fault_model = FaultModel(
        FaultRates(link_transient=args.link_transient_rate),
        seed=derive_task_seed(args.seed, args.scenario))
    simulator = FleetSimulator(
        topology, model_config=config, fault_model=fault_model,
        policy=DegradationPolicy(
            min_capacity_fraction=args.min_capacity,
            circuit_breaker_failures=args.breaker_failures),
        seq_len=args.seq_len, reference_batch=args.reference_batch)
    tracer = Tracer() if args.trace_out else None
    metrics = MetricsRegistry()
    report = simulator.run(batch=args.batch, scenario=scenario,
                           tracer=tracer, metrics=metrics)

    print(f"fleet:     {report.topology}")
    if scenario is not None:
        print(f"scenario:  {scenario.name} — {scenario.description}")
    else:
        print("scenario:  none (clean run)")
    print(f"workload:  {report.batch} inferences, seq_len {args.seq_len}, "
          f"seed {args.seed}")
    print(f"makespan:  {report.makespan_seconds * 1e3:.3f} ms "
          f"(nominal {report.nominal_makespan_seconds * 1e3:.3f} ms, "
          f"availability {report.availability:.4f})")
    print(f"goodput:   {report.goodput:.1f} inf/s "
          f"({report.completed:.1f} done, {report.shed:.1f} shed)")
    print(f"recovery:  {report.failures} failure(s), "
          f"{report.detections} detection(s), {report.reshards} "
          f"re-shard(s) moving {report.resharded_inferences:.1f} inf "
          f"in {report.recovery_seconds * 1e3:.3f} ms")
    print(f"faults:    {report.link_retransmissions} link "
          f"retransmission(s), {report.brownouts} brownout(s)")
    print(f"energy:    {report.energy_joules:.3f} J")
    if args.per_instance:
        for outcome in report.per_instance:
            print(f"  {outcome.instance_id:<10s} {outcome.backend:<16s} "
                  f"alloc {outcome.allocated:7.2f}  "
                  f"done {outcome.completed:7.2f}  "
                  f"finish {outcome.finish_seconds * 1e3:8.3f} ms  "
                  f"{outcome.final_state}"
                  f"{'  [breaker open]' if outcome.breaker_open else ''}")
    if args.trace_out:
        data = write_chrome_trace(
            tracer, args.trace_out,
            metadata={"tool": "repro.cli fleet", "version": __version__,
                      "scenario": report.scenario, "batch": report.batch,
                      "seed": args.seed},
            metrics=metrics)
        counts = validate_chrome_trace(data)
        print(f"trace:     {counts['spans']} spans, "
              f"{counts['instants']} instants, "
              f"{counts['counters']} counters, "
              f"{counts['processes']} processes -> {args.trace_out} "
              f"(open at https://ui.perfetto.dev)")
    if args.metrics_out:
        _write_metrics_out(metrics, args.metrics_out)
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    from .fleet import (
        SCENARIO_BUILDERS,
        FleetSimulator,
        build_fleet,
        build_scenario,
    )
    from .model.config import protein_bert_base, protein_bert_tiny
    from .monitor import fleet_monitor, format_alert_report, render_dashboard
    from .reliability import (
        FaultModel,
        FaultRates,
        derive_task_seed,
    )
    from .telemetry import Tracer, validate_chrome_trace, write_chrome_trace

    config = protein_bert_tiny() if args.tiny else protein_bert_base()
    topology = build_fleet(racks=args.racks,
                           hosts_per_rack=args.hosts_per_rack,
                           instances_per_host=args.instances_per_host,
                           heterogeneous=args.heterogeneous)

    def _run(name: str):
        fault_model = FaultModel(
            FaultRates(link_transient=args.link_transient_rate),
            seed=derive_task_seed(args.seed, name))
        simulator = FleetSimulator(topology, model_config=config,
                                   fault_model=fault_model,
                                   seq_len=args.seq_len)
        scenario = (None if name == "none"
                    else build_scenario(name, topology))
        monitor = fleet_monitor(samples=args.samples)
        tracer = Tracer() if args.trace_out else None
        report = simulator.run(batch=args.batch, scenario=scenario,
                               tracer=tracer, monitor=monitor)
        return report, monitor, tracer

    def _ms(value) -> str:
        return f"{value * 1e3:9.3f}" if value is not None else f"{'-':>9s}"

    if args.scenario == "all":
        print(f"{'scenario':<18s} {'fault ms':>9s} {'detect ms':>9s} "
              f"{'page ms':>9s} {'Δpage ms':>9s} {'alerts':>6s} "
              f"{'pages':>5s} {'burn':>7s} {'budget':>7s}")
        for name in SCENARIO_BUILDERS:
            report, _monitor, _tracer = _run(name)
            outcome = report.slo
            print(f"{name:<18s} {_ms(outcome.fault_seconds)} "
                  f"{_ms(outcome.detection_seconds)} "
                  f"{_ms(outcome.first_page_seconds)} "
                  f"{_ms(outcome.page_delay_seconds)} "
                  f"{outcome.alerts:6d} {outcome.pages:5d} "
                  f"{outcome.worst_burn_rate:7.1f} "
                  f"{outcome.budget_remaining:6.1%}")
        return 0

    report, monitor, tracer = _run(args.scenario)
    print(f"fleet:     {report.topology}")
    print(f"scenario:  {report.scenario}")
    print(f"workload:  {report.batch} inferences, seq_len {args.seq_len}, "
          f"seed {args.seed}")
    print(f"makespan:  {report.makespan_seconds * 1e3:.3f} ms "
          f"(availability {report.availability:.4f})")
    print(f"slo:       {report.slo.summary()}")
    print()
    dashboard = render_dashboard(
        monitor, width=args.width,
        series_names=[name for name in monitor.store.names()
                      if name.startswith("fleet/")])
    print(dashboard)
    if args.dashboard_out:
        with open(args.dashboard_out, "w", encoding="utf-8") as handle:
            handle.write(dashboard + "\n")
        print(f"dashboard -> {args.dashboard_out}")
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(format_alert_report(monitor.report()) + "\n")
        print(f"alert report -> {args.report_out}")
    if args.trace_out:
        data = write_chrome_trace(
            tracer, args.trace_out,
            metadata={"tool": "repro.cli monitor",
                      "version": __version__,
                      "scenario": report.scenario, "batch": report.batch,
                      "seed": args.seed},
            series=monitor.store)
        counts = validate_chrome_trace(data)
        print(f"trace:     {counts['spans']} spans, "
              f"{counts['counters']} counter samples -> {args.trace_out} "
              f"(open at https://ui.perfetto.dev)")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .telemetry import (
        analyze_trace,
        critical_path_spans,
        format_analysis,
        load_trace,
        to_chrome_trace,
        validate_chrome_trace,
    )

    if bool(args.trace) == bool(args.scenario):
        raise SystemExit("analyze needs exactly one input: --trace "
                         "<exported.json> or --scenario <name>")
    if args.scenario:
        from .bench import trace_scenario

        try:
            tracer, _fingerprint = trace_scenario(args.scenario)
        except (KeyError, ValueError) as error:
            raise SystemExit(str(error)) from error
        source_label = f"scenario '{args.scenario}'"
    else:
        tracer = load_trace(args.trace)
        source_label = args.trace
    against = load_trace(args.against) if args.against else None

    try:
        analysis = analyze_trace(tracer, against=against, root=args.root)
    except ValueError as error:
        raise SystemExit(f"cannot analyze {source_label}: {error}") \
            from error

    if args.format == "json":
        text = analysis.to_json(top=args.top)
    elif args.format == "ascii":
        text = format_analysis(analysis, top=args.top)
    else:  # perfetto: re-export with the critical path as its own track
        out = args.out or "analysis.json"
        data = to_chrome_trace(
            tracer,
            metadata={"tool": "repro.cli analyze", "version": __version__,
                      "source": source_label,
                      "critical_path_hops": len(analysis.path.hops)},
            extra_spans=critical_path_spans(analysis.path))
        counts = validate_chrome_trace(data)
        import json as json_module

        with open(out, "w", encoding="utf-8") as handle:
            json_module.dump(data, handle, indent=1)
        print(f"{counts['spans']} spans on {counts['tracks']} tracks "
              f"(+1 critical-path track, {len(analysis.path.hops)} "
              f"hop(s)) -> {out} (open at https://ui.perfetto.dev)")
        print(format_analysis(analysis, top=args.top))
        return 0

    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"analysis -> {args.out}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        attribute_comparison,
        build_record,
        build_rollups,
        compare_records,
        format_attribution,
        format_comparison,
        load_records,
        next_bench_path,
        run_scenarios,
        scenario_names,
        scenarios,
        write_record,
    )
    from .parallel import SweepExecutor
    from .telemetry import MetricsRegistry, Tracer, validate_chrome_trace, write_chrome_trace
    from .telemetry.profiling import format_hotspots, profile

    registry = scenarios()
    if args.list:
        width = max(len(name) for name in registry)
        for name, scenario in registry.items():
            tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
            print(f"{name:<{width}s}  {scenario.description}{tags}")
        return 0
    try:
        names = scenario_names(args.scenarios)
    except KeyError as error:
        raise SystemExit(str(error)) from error
    if args.check and not args.compare:
        raise SystemExit("--check requires --compare BENCH_*.json "
                         "baseline(s)")
    if args.attribute and not args.compare:
        raise SystemExit("--attribute requires --compare BENCH_*.json "
                         "baseline(s)")

    executor = SweepExecutor(SweepExecutor.resolve_workers(args.workers))
    metrics = MetricsRegistry()
    timings = run_scenarios(names, repeat=args.repeat, executor=executor,
                            metrics=metrics)
    width = max(len(name) for name in names)
    for name in names:
        timing = timings[name]
        flag = "" if timing["stable"] else "  [unstable fingerprint]"
        print(f"{name:<{width}s}  median "
              f"{timing['median_seconds'] * 1e3:9.3f} ms  "
              f"[{timing['min_seconds'] * 1e3:9.3f}, "
              f"{timing['max_seconds'] * 1e3:9.3f}] ms  "
              f"x{timing['repeat']}{flag}")
    print(f"ran {len(names)} scenario(s) with {executor.workers} "
          f"worker(s), mode={executor.last_mode}")

    profiles = []
    if args.profile:
        tracer = Tracer()
        for name in names:
            scenario = registry[name]
            if scenario.setup is not None:
                scenario.setup()
            with profile(tracer, label=name) as report:
                with tracer.span(f"scenario:{name}", pid="bench"):
                    scenario.fn()
            profiles.append(report)
            print()
            print(format_hotspots(report, top=args.top))
        data = write_chrome_trace(
            tracer, args.profile_out,
            metadata={"tool": "repro.cli bench", "version": __version__,
                      "scenarios": ",".join(names)},
            profiles=profiles)
        counts = validate_chrome_trace(data)
        print(f"profile trace: {counts['spans']} spans on "
              f"{counts['tracks']} tracks -> {args.profile_out} "
              f"(open at https://ui.perfetto.dev)")

    rollups = build_rollups(names) if args.rollups else None
    record = build_record(
        timings, repeat=args.repeat, metrics=metrics, rollups=rollups,
        extra={"executor": {"workers": executor.workers,
                            "mode": executor.last_mode}})
    out = args.out or next_bench_path(".")
    write_record(record, out)
    suffix = (f" (+{len(rollups)} span rollup(s))" if rollups else "")
    print(f"record -> {out}{suffix}")

    if args.compare:
        baselines = load_records(args.compare)
        comparison = compare_records(record, baselines,
                                     band_pct=args.band,
                                     min_delta_seconds=args.min_delta)
        print()
        print(format_comparison(comparison))
        if args.attribute:
            attributions = attribute_comparison(comparison, baselines)
            print()
            print(format_attribution(attributions, top=args.top))
        if args.check and not comparison.ok:
            return 1
    return 0


def cmd_zoo(args: argparse.Namespace) -> int:
    for name in zoo_names():
        print(describe(name))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .model.config import protein_bert_base, protein_bert_tiny
    from .telemetry import (
        MetricsRegistry,
        Tracer,
        render_tracer,
        validate_chrome_trace,
        write_chrome_trace,
        write_metrics_csv,
        write_metrics_jsonl,
    )

    tracer = Tracer()
    metrics = MetricsRegistry()
    hardware = _hardware_by_name(args.hardware)
    config = protein_bert_base()
    workloads = (("schedule", "system", "serving", "functional")
                 if args.workload == "all" else (args.workload,))

    if "schedule" in workloads:
        from .sched.orchestrator import Orchestrator

        result = Orchestrator(hardware).run(
            config, batch=args.batch, seq_len=args.seq_len,
            threads=args.threads, tracer=tracer, metrics=metrics,
            trace_pid="schedule")
        print(f"schedule: makespan {result.makespan_seconds * 1e3:.3f} ms, "
              f"bottleneck {result.bottleneck}")
    if "system" in workloads:
        from .system.multi import ProSESystem

        system = ProSESystem(hardware=hardware, instances=args.instances)
        report = system.simulate(
            config, batch=max(args.batch, args.instances),
            seq_len=args.seq_len, tracer=tracer, metrics=metrics)
        print(f"system: {report.instances} instances, "
              f"{report.throughput:.1f} inf/s")
    if "serving" in workloads:
        from .proteins.workloads import uniprot_like_workload
        from .system.serving import CampaignSimulator

        simulator = CampaignSimulator(model_config=config,
                                      hardware=hardware,
                                      max_batch=max(args.batch, 1))
        campaign = simulator.run_on_prose(
            uniprot_like_workload(count=args.sequences, seed=args.seed),
            tracer=tracer, metrics=metrics)
        print(f"serving: {campaign.sequences} sequences in "
              f"{campaign.total_seconds:.3f} s")
    if "functional" in workloads:
        import numpy as np

        from .arch.accelerated_model import AcceleratedProteinBert
        from .model.bert import ProteinBert

        tiny = protein_bert_tiny(num_layers=2, hidden_size=64,
                                 num_heads=4, intermediate_size=128)
        accelerated = AcceleratedProteinBert(
            ProteinBert(tiny, seed=args.seed), tracer=tracer,
            metrics=metrics)
        rng = np.random.default_rng(args.seed)
        tokens = rng.integers(0, tiny.vocab_size,
                              size=(2, min(args.seq_len, 32)))
        accelerated.forward(tokens)
        tiles = metrics.get("functional/tiles")
        print(f"functional: {int(tiles.value)} GEMM tiles")

    data = write_chrome_trace(
        tracer, args.out,
        metadata={"tool": "repro.cli trace", "version": __version__,
                  "workloads": list(workloads), "batch": args.batch,
                  "seq_len": args.seq_len},
        metrics=metrics)
    counts = validate_chrome_trace(data)
    write_metrics_csv(metrics, args.metrics_csv)
    write_metrics_jsonl(metrics, args.metrics_jsonl)
    print(f"trace: {counts['spans']} spans, {counts['instants']} instants, "
          f"{counts['processes']} processes -> {args.out} "
          f"(open at https://ui.perfetto.dev)")
    print(f"metrics: {len(metrics)} series -> {args.metrics_csv}, "
          f"{args.metrics_jsonl}")
    if args.ascii:
        print()
        print(render_tracer(tracer, width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ProSE (ASPLOS 2022) reproduction CLI")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=False)

    simulate = sub.add_parser("simulate",
                              help="cycle-level ProSE simulation")
    simulate.add_argument("--hardware", default="BestPerf")
    simulate.add_argument("--batch", type=int, default=128)
    simulate.add_argument("--seq-len", type=int, default=512)
    simulate.add_argument("--threads", type=int, default=None)
    simulate.set_defaults(handler=cmd_simulate)

    compare = sub.add_parser("compare", help="compare vs a baseline")
    compare.add_argument("--hardware", default="BestPerf")
    compare.add_argument("--baseline", default="all",
                         choices=["a100", "tpuv2", "tpuv3", "all"])
    compare.add_argument("--batch", type=int, default=128)
    compare.add_argument("--seq-len", type=int, default=512)
    compare.set_defaults(handler=cmd_compare)

    experiments = sub.add_parser("experiments",
                                 help="regenerate paper artifacts")
    experiments.add_argument("only", nargs="*",
                             help='experiment ids, e.g. "Figure 18"')
    experiments.add_argument("--workers", type=int, default=None,
                             help="fan experiments out over N processes "
                                  "(default $REPRO_SWEEP_WORKERS or 1)")
    experiments.set_defaults(handler=cmd_experiments)

    dse = sub.add_parser("dse", help="design-space exploration")
    dse.add_argument("--batch", type=int, default=32)
    dse.add_argument("--seq-len", type=int, default=512)
    dse.add_argument("--limit", type=int, default=None)
    dse.add_argument("--workers", type=int, default=None,
                     help="evaluate configurations over N processes "
                          "(default $REPRO_SWEEP_WORKERS or 1)")
    dse.set_defaults(handler=cmd_dse)

    sweep = sub.add_parser(
        "sweep",
        help="parallel DSE sweep with shape-keyed memoization")
    sweep.add_argument("--batch", type=int, default=32)
    sweep.add_argument("--seq-len", type=int, default=512)
    sweep.add_argument("--limit", type=int, default=None,
                       help="evaluate only the first N configurations")
    sweep.add_argument("--budget", type=int, default=None,
                       help="PE budget (default 16384)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default "
                            "$REPRO_SWEEP_WORKERS or 1)")
    sweep.add_argument("--cache-dir", default=None,
                       help="on-disk cache directory (default "
                            "$REPRO_CACHE_DIR; unset disables the disk "
                            "layer)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the trace/schedule caches")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="empty the caches (including disk) first")
    sweep.add_argument("--trace-out", default=None,
                       help="write a Perfetto trace of per-worker spans")
    sweep.set_defaults(handler=cmd_sweep)

    binding = sub.add_parser("binding",
                             help="Section 2.2 binding-affinity study")
    binding.add_argument("--seed", type=int, default=2022)
    binding.set_defaults(handler=cmd_binding)

    embed = sub.add_parser("embed", help="embed protein sequences")
    embed.add_argument("sequences", nargs="+")
    embed.add_argument("--functional", action="store_true",
                       help="run through the simulated bf16/LUT datapath")
    embed.set_defaults(handler=cmd_embed)

    zoo = sub.add_parser("zoo", help="list registered model scales")
    zoo.set_defaults(handler=cmd_zoo)

    reliability = sub.add_parser(
        "reliability",
        help="fault-injection campaign and degraded-mode accounting")
    reliability.add_argument("--fault-rate", type=float, default=0.05)
    reliability.add_argument("--seed", type=int, default=2022)
    reliability.add_argument("--instances", type=int, default=4)
    reliability.add_argument("--batch", type=int, default=32)
    reliability.add_argument("--seq-len", type=int, default=128)
    reliability.add_argument("--sweep", action="store_true",
                             help="sweep fault rates and print the "
                                  "availability/goodput curve")
    reliability.add_argument("--workers", type=int, default=None,
                             help="fan --sweep rate points out over N "
                                  "processes (default $REPRO_SWEEP_WORKERS "
                                  "or 1)")
    reliability.add_argument("--metrics-out", default=None,
                             metavar="PATH",
                             help="dump serving metrics per rate point "
                                  "(suffix picks .csv or .jsonl; implies "
                                  "serial instrumented runs)")
    reliability.set_defaults(handler=cmd_reliability)

    fleet = sub.add_parser(
        "fleet",
        help="fleet simulation: chaos scenarios over racks of instances")
    fleet.add_argument("--scenario", default="rack_power_loss",
                       help="chaos scenario name, 'none' (clean run), or "
                            "'all' (the full campaign table)")
    fleet.add_argument("--list", action="store_true",
                       help="list chaos scenarios for this fleet and exit")
    fleet.add_argument("--racks", type=int, default=2)
    fleet.add_argument("--hosts-per-rack", type=int, default=2)
    fleet.add_argument("--instances-per-host", type=int, default=4)
    fleet.add_argument("--heterogeneous", action="store_true",
                       help="mix calibrated A100/TPU baselines into the "
                            "fleet as schedulable capacity")
    fleet.add_argument("--hardware", default="BestPerf",
                       help="ProSE configuration for prose-backed "
                            "instances")
    fleet.add_argument("--batch", type=int, default=256)
    fleet.add_argument("--seq-len", type=int, default=128)
    fleet.add_argument("--reference-batch", type=int, default=8,
                       help="shard size used to calibrate backend rates")
    fleet.add_argument("--seed", type=int, default=2022)
    fleet.add_argument("--tiny", action="store_true",
                       help="use the tiny model config (fast smoke runs)")
    fleet.add_argument("--link-transient-rate", type=float, default=0.01,
                       help="background fabric transient probability per "
                            "dispatch")
    fleet.add_argument("--min-capacity", type=float, default=0.25,
                       help="brownout floor as a fraction of nominal "
                            "capacity (0 disables load shedding)")
    fleet.add_argument("--breaker-failures", type=int, default=3,
                       help="hard failures before the circuit breaker "
                            "quarantines an instance (0 disables)")
    fleet.add_argument("--per-instance", action="store_true",
                       help="print the per-instance outcome table")
    fleet.add_argument("--trace-out", default=None,
                       help="write the recovery timeline as a Perfetto "
                            "trace")
    fleet.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="dump fleet metrics (suffix picks .csv or "
                            ".jsonl)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="fan --scenario all out over N processes "
                            "(default $REPRO_SWEEP_WORKERS or 1)")
    fleet.set_defaults(handler=cmd_fleet)

    monitor = sub.add_parser(
        "monitor",
        help="live monitoring: SLO burn-rate alerts and an ASCII "
             "dashboard over a chaos scenario")
    monitor.add_argument("--scenario", default="rack_power_loss",
                         help="chaos scenario name, 'none' (clean run), "
                              "or 'all' (alert-timeline table)")
    monitor.add_argument("--racks", type=int, default=2)
    monitor.add_argument("--hosts-per-rack", type=int, default=2)
    monitor.add_argument("--instances-per-host", type=int, default=4)
    monitor.add_argument("--heterogeneous", action="store_true",
                         help="mix calibrated A100/TPU baselines into "
                              "the fleet")
    monitor.add_argument("--batch", type=int, default=256)
    monitor.add_argument("--seq-len", type=int, default=128)
    monitor.add_argument("--seed", type=int, default=2022)
    monitor.add_argument("--tiny", action="store_true",
                         help="use the tiny model config (fast smoke "
                              "runs)")
    monitor.add_argument("--link-transient-rate", type=float, default=0.0,
                         help="background fabric transient probability "
                              "per dispatch")
    monitor.add_argument("--samples", type=int, default=128,
                         help="monitor sample ticks across the nominal "
                              "horizon")
    monitor.add_argument("--width", type=int, default=48,
                         help="sparkline width in characters")
    monitor.add_argument("--dashboard-out", default=None, metavar="PATH",
                         help="also write the dashboard to a file")
    monitor.add_argument("--report-out", default=None, metavar="PATH",
                         help="write the alert report to a file")
    monitor.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write a Perfetto trace with monitor "
                              "counter tracks")
    monitor.set_defaults(handler=cmd_monitor)

    trace = sub.add_parser(
        "trace",
        help="run an instrumented workload; write a Perfetto trace "
             "and a metrics dump")
    trace.add_argument("--workload", default="schedule",
                       choices=["schedule", "system", "serving",
                                "functional", "all"],
                       help="which instrumented path to trace")
    trace.add_argument("--hardware", default="BestPerf")
    trace.add_argument("--batch", type=int, default=8)
    trace.add_argument("--seq-len", type=int, default=128)
    trace.add_argument("--threads", type=int, default=None)
    trace.add_argument("--instances", type=int, default=4,
                       help="instances for the system workload")
    trace.add_argument("--sequences", type=int, default=32,
                       help="library size for the serving workload")
    trace.add_argument("--seed", type=int, default=2022)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace JSON output path")
    trace.add_argument("--metrics-csv", default="metrics.csv")
    trace.add_argument("--metrics-jsonl", default="metrics.jsonl")
    trace.add_argument("--ascii", action="store_true",
                       help="also print an ASCII timeline")
    trace.add_argument("--width", type=int, default=100,
                       help="ASCII timeline width")
    trace.set_defaults(handler=cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="benchmark observatory: record BENCH_<seq>.json, compare "
             "against the trajectory, profile hotspots")
    bench.add_argument("--scenarios", default="all",
                       help="'all', a tag (e.g. 'fast'), or a "
                            "comma-separated scenario list")
    bench.add_argument("--repeat", type=int, default=5,
                       help="timed executions per scenario "
                            "(median-of-N, default 5)")
    bench.add_argument("--out", default=None,
                       help="record path (default: next free "
                            "BENCH_<seq>.json in the current directory)")
    bench.add_argument("--compare", nargs="+", default=None,
                       metavar="BENCH_JSON",
                       help="prior record(s) to compare against")
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero when any scenario regresses "
                            "beyond the band (requires --compare)")
    bench.add_argument("--band", type=float, default=25.0,
                       help="regression tolerance band in percent "
                            "(default 25)")
    bench.add_argument("--min-delta", type=float, default=0.0,
                       metavar="SECONDS",
                       help="absolute slowdown floor: a band breach "
                            "only fails when current - baseline also "
                            "exceeds this many seconds (default 0)")
    bench.add_argument("--profile", action="store_true",
                       help="re-run each scenario under cProfile and "
                            "print span-attributed hotspot tables")
    bench.add_argument("--profile-out", default="bench_profile.json",
                       help="Perfetto trace with hotspot tracks "
                            "(with --profile)")
    bench.add_argument("--top", type=int, default=50,
                       help="hotspot table rows per scenario "
                            "(default 50)")
    bench.add_argument("--workers", type=int, default=None,
                       help="time scenarios in N forked processes "
                            "(default $REPRO_SWEEP_WORKERS or 1)")
    bench.add_argument("--list", action="store_true",
                       help="list registered scenarios and exit")
    bench.add_argument("--attribute", action="store_true",
                       help="after --compare, re-run regressed "
                            "scenarios with tracing and print a span "
                            "attribution table")
    bench.add_argument("--rollups", action="store_true",
                       help="embed span rollups for traceable scenarios "
                            "in the record (future --attribute runs "
                            "diff against them)")
    bench.set_defaults(handler=cmd_bench)

    analyze = sub.add_parser(
        "analyze",
        help="trace analytics: critical path, utilization attribution, "
             "run-to-run regression diff")
    analyze.add_argument("--trace", default=None, metavar="JSON",
                         help="exported Chrome-trace JSON to analyze")
    analyze.add_argument("--scenario", default=None,
                         help="instead of --trace: run this bench "
                              "scenario's traced variant and analyze it")
    analyze.add_argument("--against", default=None, metavar="JSON",
                         help="baseline trace; adds a span-attributed "
                              "latency diff")
    analyze.add_argument("--root", default=None,
                         help="anchor span name (default: the run/fleet "
                              "root span)")
    analyze.add_argument("--top", type=int, default=10,
                         help="rows per table (default 10)")
    analyze.add_argument("--format", default="ascii",
                         choices=["ascii", "json", "perfetto"],
                         help="ascii tables, canonical JSON, or a "
                              "Perfetto re-export with the critical "
                              "path highlighted on its own track")
    analyze.add_argument("--out", default=None,
                         help="also write the report here (for "
                              "--format perfetto: the trace path, "
                              "default analysis.json)")
    analyze.set_defaults(handler=cmd_analyze)
    return parser


def _print_overview(parser: argparse.ArgumentParser) -> None:
    """Subcommand list with one-line descriptions (no-args invocation)."""
    print(f"{parser.prog} {__version__} — {parser.description}")
    print()
    print("subcommands:")
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction))
    for choice in subparsers.choices:
        help_text = next(
            (pseudo.help for pseudo in subparsers._choices_actions
             if pseudo.dest == choice), "")
        print(f"  {choice:<12s} {help_text}")
    print()
    print(f"run '{parser.prog} <subcommand> --help' for options")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        _print_overview(parser)
        return 0
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
