"""Public API: the ProSE engine and its result types."""

from ..arch.config import (
    ArrayGroup,
    HardwareConfig,
    best_perf,
    best_perf_plus,
    homogeneous,
    homogeneous_plus,
    most_efficient,
    most_efficient_plus,
    table4_configs,
)
from .engine import ProSEEngine
from .session import InferenceSession, SessionResult
from .results import Comparison, InferenceReport

__all__ = [
    "ArrayGroup",
    "Comparison",
    "HardwareConfig",
    "InferenceReport",
    "InferenceSession",
    "SessionResult",
    "ProSEEngine",
    "best_perf",
    "best_perf_plus",
    "homogeneous",
    "homogeneous_plus",
    "most_efficient",
    "most_efficient_plus",
    "table4_configs",
]
