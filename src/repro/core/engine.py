"""ProSEEngine — the library's primary public entry point.

Wraps the dataflow compiler, the cycle-level orchestration simulator, the
physical power model, and the commodity baselines behind one object:

    >>> from repro.core import ProSEEngine
    >>> engine = ProSEEngine()                      # BestPerf, NVLink 2.0
    >>> report = engine.simulate(batch=128, seq_len=512)
    >>> report.throughput, report.efficiency        # inf/s, inf/s/W
    >>> engine.compare(engine.a100, batch=128, seq_len=512).speedup
"""

from __future__ import annotations

from typing import Optional

from ..arch.config import HardwareConfig, best_perf
from ..arch.interconnect import LinkConfig
from ..baselines.gpu import a100
from ..baselines.roofline import RooflineDevice
from ..baselines.tpu import tpu_v2, tpu_v3
from ..model.config import BertConfig, protein_bert_base
from ..physical.power import power_report
from ..sched.host import HostModel
from ..sched.orchestrator import Orchestrator
from .results import Comparison, InferenceReport


class ProSEEngine:
    """Simulates Protein BERT inference on a ProSE accelerator instance.

    Args:
        hardware: the accelerator configuration (default: Table 4 BestPerf).
        model_config: the Protein BERT model (default: BERT-base over the
            protein vocabulary, as in the paper).
        host: host CPU model.
    """

    def __init__(self, hardware: Optional[HardwareConfig] = None,
                 model_config: Optional[BertConfig] = None,
                 host: Optional[HostModel] = None) -> None:
        self.hardware = hardware or best_perf()
        self.model_config = model_config or protein_bert_base()
        self.host = host or HostModel()
        self._orchestrator = Orchestrator(self.hardware, host=self.host)
        self.a100 = a100()
        self.tpu_v2 = tpu_v2()
        self.tpu_v3 = tpu_v3()

    def simulate(self, batch: int = 128, seq_len: int = 512,
                 threads: Optional[int] = None,
                 record_tasks: bool = False) -> InferenceReport:
        """Run the cycle-level simulation of one batched inference.

        Raises:
            ValueError: on non-positive ``batch``, ``seq_len``, or
                ``threads`` — nonsense schedules are rejected up front.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        if threads is not None and threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        schedule = self._orchestrator.run(
            self.model_config, batch=batch, seq_len=seq_len,
            threads=threads, record_tasks=record_tasks)
        return InferenceReport(config_name=self.hardware.name,
                               schedule=schedule,
                               power=power_report(self.hardware))

    def with_link(self, link: LinkConfig) -> "ProSEEngine":
        """The same engine at a different host-link operating point."""
        return ProSEEngine(hardware=self.hardware.with_link(link),
                           model_config=self.model_config, host=self.host)

    def compare(self, baseline: RooflineDevice, batch: int = 128,
                seq_len: int = 512,
                baseline_batch: Optional[int] = None) -> Comparison:
        """Compare ProSE against a commodity baseline.

        Both systems run the same model and sequence length; the baseline
        may use its own throughput-optimal batch size (as the paper's
        measurements do).  Only the accelerated portions are compared
        ("all operations except for 'Other'", Section 4.1).
        """
        report = self.simulate(batch=batch, seq_len=seq_len)
        baseline_throughput = baseline.throughput(
            self.model_config, batch=baseline_batch or batch,
            seq_len=seq_len, accelerated_only=True)
        return Comparison(prose=report,
                          baseline_name=baseline.spec.name,
                          baseline_throughput=baseline_throughput,
                          baseline_power_watts=baseline.spec.tdp_watts)
