"""Result types returned by the public ProSE engine API."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..physical.power import PowerReport
from ..sched.orchestrator import ScheduleResult


@dataclass(frozen=True)
class InferenceReport:
    """Performance and power of one simulated batched inference.

    Attributes:
        config_name: hardware configuration label.
        schedule: the full scheduling result (makespan, utilizations...).
        power: the power/area decomposition of the configuration.
    """

    config_name: str
    schedule: ScheduleResult
    power: PowerReport

    @property
    def throughput(self) -> float:
        """Inferences per second."""
        return self.schedule.throughput

    @property
    def latency_seconds(self) -> float:
        return self.schedule.makespan_seconds

    @property
    def system_power_watts(self) -> float:
        return self.power.system_power_w

    @property
    def efficiency(self) -> float:
        """Inferences per second per Watt (the paper's headline metric)."""
        return self.throughput / self.system_power_watts

    def summary(self) -> Dict[str, float]:
        return {
            "throughput_inf_per_s": self.throughput,
            "latency_s": self.latency_seconds,
            "system_power_w": self.system_power_watts,
            "efficiency_inf_per_s_per_w": self.efficiency,
        }


@dataclass(frozen=True)
class Comparison:
    """ProSE vs one commodity baseline at a single operating point."""

    prose: InferenceReport
    baseline_name: str
    baseline_throughput: float
    baseline_power_watts: float

    @property
    def speedup(self) -> float:
        """ProSE throughput over baseline throughput (Figure 18 metric)."""
        return self.prose.throughput / self.baseline_throughput

    @property
    def baseline_efficiency(self) -> float:
        return self.baseline_throughput / self.baseline_power_watts

    @property
    def efficiency_gain(self) -> float:
        """Normalized power-efficiency ratio (Figure 19 metric)."""
        return self.prose.efficiency / self.baseline_efficiency
