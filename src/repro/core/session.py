"""InferenceSession — the downstream user's entry point.

Wraps the whole stack for someone who just wants embeddings and an
accelerator cost estimate: tokenize protein sequences, run them through
the (functionally simulated) accelerator or the float reference, and
report the cycle-level latency/energy the same workload would take on the
configured ProSE hardware.

    >>> from repro.core.session import InferenceSession
    >>> session = InferenceSession.small()
    >>> result = session.embed(["MEYQKL...", "ACDE..."])
    >>> result.embeddings.shape, result.estimated_latency_seconds
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..arch.accelerated_model import AcceleratedProteinBert
from ..arch.config import HardwareConfig, best_perf
from ..model.bert import ProteinBert
from ..model.config import BertConfig
from ..model.weights import pretrained_like_weights
from ..physical.power import power_report
from ..proteins.tokenizer import ProteinTokenizer
from ..sched.orchestrator import Orchestrator


@dataclass(frozen=True)
class SessionResult:
    """Embeddings plus the hardware cost estimate for one batch.

    Attributes:
        embeddings: pooled per-sequence features ``(batch, hidden)``.
        estimated_latency_seconds: simulated ProSE batch latency.
        estimated_energy_joules: latency × system power.
        functional: True when the embeddings came through the simulated
            bfloat16/LUT datapath rather than the float reference.
    """

    embeddings: np.ndarray
    estimated_latency_seconds: float
    estimated_energy_joules: float
    functional: bool


class InferenceSession:
    """Run protein sequences through a simulated ProSE deployment.

    Args:
        model: the encoder to execute.
        hardware: the accelerator instance to estimate costs on.
        functional: execute through the functional hardware model
            (bit-faithful but slow in Python) rather than the float
            reference.  Embedding *values* differ only by the bf16/LUT
            error budget.
        tokenizer: protein tokenizer.
    """

    def __init__(self, model: ProteinBert,
                 hardware: Optional[HardwareConfig] = None,
                 functional: bool = False,
                 tokenizer: Optional[ProteinTokenizer] = None) -> None:
        self.model = model
        self.hardware = hardware or best_perf()
        self.functional = functional
        self.tokenizer = tokenizer or ProteinTokenizer()
        self._orchestrator = Orchestrator(self.hardware)
        self._accelerated = (AcceleratedProteinBert(model)
                             if functional else None)
        self._system_power = power_report(self.hardware).system_power_w

    @classmethod
    def small(cls, seed: int = 0, functional: bool = False,
              max_position: int = 512) -> "InferenceSession":
        """A laptop-friendly session with a compact pretrained-like model."""
        config = BertConfig(hidden_size=256, num_layers=4, num_heads=8,
                            intermediate_size=512,
                            max_position=max_position)
        model = ProteinBert(config,
                            weights=pretrained_like_weights(config,
                                                            seed=seed))
        return cls(model=model, functional=functional)

    def embed(self, sequences: Sequence[str]) -> SessionResult:
        """Tokenize, encode, pool, and estimate hardware cost.

        Args:
            sequences: amino-acid strings (ragged lengths are padded).

        Returns:
            A :class:`SessionResult`.
        """
        if not sequences:
            raise ValueError("embed requires at least one sequence")
        encoding = self.tokenizer.encode_batch(list(sequences))
        batch, seq_len = encoding.ids.shape

        if self.functional:
            hidden = self._accelerated.forward(encoding.ids,
                                               encoding.attention_mask)
            mask = encoding.attention_mask[..., None].astype(np.float32)
            totals = (hidden * mask).sum(axis=1)
            counts = np.maximum(mask.sum(axis=1), 1.0)
            embeddings = totals / counts
        else:
            embeddings = self.model.features(encoding.ids,
                                             encoding.attention_mask)

        schedule = self._orchestrator.run(self.model.config, batch=batch,
                                          seq_len=seq_len)
        latency = schedule.makespan_seconds
        return SessionResult(
            embeddings=embeddings,
            estimated_latency_seconds=latency,
            estimated_energy_joules=latency * self._system_power,
            functional=self.functional)

    def rank_by(self, sequences: Sequence[str],
                scores: Sequence[float]) -> List[int]:
        """Utility: indices of ``sequences`` sorted by descending score."""
        if len(sequences) != len(scores):
            raise ValueError("sequences and scores must align")
        return list(np.argsort(np.asarray(scores))[::-1])
