"""Dataflow compiler: patterns, graph, and builder (Figures 6-8)."""

from .builder import (
    TraceStructureError,
    build_dataflow_graph,
    build_graph_for,
    coverage_fraction,
)
from .graph import DataflowGraph, HostTask, Node
from .seq2seq import build_seq2seq_graph
from .patterns import (
    ACCELERATOR_KINDS,
    HOST_KINDS_DATAFLOW_3,
    ArrayType,
    Dataflow,
    DataflowKind,
)

__all__ = [
    "ACCELERATOR_KINDS",
    "HOST_KINDS_DATAFLOW_3",
    "ArrayType",
    "Dataflow",
    "DataflowGraph",
    "DataflowKind",
    "HostTask",
    "Node",
    "TraceStructureError",
    "build_dataflow_graph",
    "build_graph_for",
    "build_seq2seq_graph",
    "coverage_fraction",
]
