"""Dataflow construction: group a traced op stream into Dataflows 1/2/3.

Implements the "Dataflow Construction" stage of the paper's Figure 15: the
raw ATen call sequence from the tracer is pattern-matched into the three
accelerated operation sequences, plus host tasks for everything else.  The
builder validates the structure as it consumes ops, so a model change that
breaks the expected patterns fails loudly rather than mis-scheduling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..model.config import BertConfig
from ..trace.ops import Op, OpKind, elementwise_op
from ..trace.tracer import TraceSpec, trace_model
from .graph import DataflowGraph, HostTask, Node
from .patterns import Dataflow, DataflowKind


class TraceStructureError(ValueError):
    """Raised when the traced op stream does not match Protein BERT."""


class _Cursor:
    """Sequential consumer over the traced op list (transposes skipped)."""

    def __init__(self, ops: Sequence[Op]) -> None:
        self._ops = [op for op in ops if op.kind is not OpKind.TRANSPOSE]
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._ops)

    def peek(self) -> Optional[Op]:
        if self.exhausted:
            return None
        return self._ops[self._index]

    def take(self, kind: OpKind, context: str) -> Op:
        op = self.peek()
        if op is None or op.kind is not kind:
            found = "end of trace" if op is None else f"{op.kind} ({op.name})"
            raise TraceStructureError(
                f"expected {kind} while building {context}, found {found}")
        self._index += 1
        return op

    def take_if(self, kind: OpKind) -> Optional[Op]:
        op = self.peek()
        if op is not None and op.kind is kind:
            self._index += 1
            return op
        return None


def _split_softmax(softmax: Op) -> Tuple[Op, Op, Op]:
    """Split aten::softmax into accel Exp + host Sum + host Div.

    ProSE runs the exponentials on the E-Type arrays and hands the summation
    and division to the host CPU (paper: "The summation and the division of
    the softmax activation are performed on the CPU").
    """
    exp = elementwise_op(OpKind.EXP, softmax.shape,
                         name=f"{softmax.name}.exp", layer=softmax.layer)
    total = elementwise_op(OpKind.SUM, softmax.shape,
                           name=f"{softmax.name}.sum", layer=softmax.layer)
    divide = elementwise_op(OpKind.DIV, softmax.shape,
                            name=f"{softmax.name}.divide",
                            layer=softmax.layer)
    return exp, total, divide


def build_dataflow_graph(ops: Sequence[Op]) -> DataflowGraph:
    """Group a traced Protein BERT op stream into a dataflow DAG.

    Args:
        ops: the full op stream of one inference, as produced by
            :func:`repro.trace.tracer.trace_model` or recorded from a real
            forward pass.

    Returns:
        A :class:`DataflowGraph` whose accelerated nodes follow the paper's
        per-layer mapping (Figure 7): 4× Dataflow 1 + 1× Dataflow 3 in the
        attention sublayer, 1× Dataflow 2 in the intermediate sublayer, and
        1× Dataflow 1 in the output sublayer.

    Raises:
        TraceStructureError: when the stream does not match the model.
    """
    cursor = _Cursor(ops)
    nodes: List[Node] = []

    def add(node: Node) -> int:
        nodes.append(node)
        return len(nodes) - 1

    # Embedding stage: token + position gathers, add, layer norm — host work.
    embed_ops = (
        cursor.take(OpKind.EMBEDDING, "embeddings"),
        cursor.take(OpKind.EMBEDDING, "embeddings"),
        cursor.take(OpKind.ADD, "embeddings"),
        cursor.take(OpKind.LAYERNORM, "embeddings"),
    )
    previous = add(HostTask(ops=embed_ops, name="embeddings", layer=-1))

    layer = 0
    while not cursor.exhausted:
        context = f"layer {layer}"

        projection_ids = []
        for proj in ("query", "key", "value"):
            mm = cursor.take(OpKind.MATMUL, f"{context} {proj}")
            bias = cursor.take(OpKind.ADD, f"{context} {proj} bias")
            projection_ids.append(add(Dataflow(
                kind=DataflowKind.DATAFLOW_1, ops=(mm, bias),
                name=mm.name, layer=layer, deps=(previous,))))

        scores = cursor.take(OpKind.BMM, f"{context} attention scores")
        scale = cursor.take(OpKind.DIV, f"{context} attention scale")
        mask = cursor.take_if(OpKind.ADD)
        softmax = cursor.take(OpKind.SOFTMAX, f"{context} softmax")
        exp, host_sum, host_div = _split_softmax(softmax)
        rhs = cursor.take(OpKind.BMM, f"{context} attention context")
        accel_ops: Tuple[Op, ...] = (scores, scale)
        if mask is not None:
            accel_ops += (mask,)
        accel_ops += (exp, rhs)
        attention_df3 = add(Dataflow(
            kind=DataflowKind.DATAFLOW_3, ops=accel_ops,
            host_ops=(host_sum, host_div),
            name=f"layer.{layer}.attention.scores", layer=layer,
            deps=tuple(projection_ids)))

        out_mm = cursor.take(OpKind.MATMUL, f"{context} attention output")
        out_bias = cursor.take(OpKind.ADD, f"{context} attention output bias")
        residual = cursor.take(OpKind.ADD, f"{context} attention residual")
        attention_out = add(Dataflow(
            kind=DataflowKind.DATAFLOW_1, ops=(out_mm, out_bias, residual),
            name=out_mm.name, layer=layer, deps=(attention_df3,)))

        norm1 = cursor.take(OpKind.LAYERNORM, f"{context} attention norm")
        norm1_id = add(HostTask(ops=(norm1,), name=norm1.name, layer=layer,
                                deps=(attention_out,)))

        inter_mm = cursor.take(OpKind.MATMUL, f"{context} intermediate")
        inter_bias = cursor.take(OpKind.ADD, f"{context} intermediate bias")
        gelu = cursor.take(OpKind.GELU, f"{context} gelu")
        intermediate = add(Dataflow(
            kind=DataflowKind.DATAFLOW_2, ops=(inter_mm, inter_bias, gelu),
            name=inter_mm.name, layer=layer, deps=(norm1_id,)))

        ffn_mm = cursor.take(OpKind.MATMUL, f"{context} output")
        ffn_bias = cursor.take(OpKind.ADD, f"{context} output bias")
        ffn_residual = cursor.take(OpKind.ADD, f"{context} output residual")
        ffn_out = add(Dataflow(
            kind=DataflowKind.DATAFLOW_1,
            ops=(ffn_mm, ffn_bias, ffn_residual),
            name=ffn_mm.name, layer=layer, deps=(intermediate,)))

        norm2 = cursor.take(OpKind.LAYERNORM, f"{context} output norm")
        previous = add(HostTask(ops=(norm2,), name=norm2.name, layer=layer,
                                deps=(ffn_out,)))
        layer += 1

    if layer == 0:
        raise TraceStructureError("trace contains no encoder layers")
    return DataflowGraph(nodes)


def build_graph_for(config: BertConfig, batch: int, seq_len: int,
                    with_mask: bool = False) -> DataflowGraph:
    """Trace a workload symbolically and build its dataflow graph."""
    spec = TraceSpec(config=config, batch=batch, seq_len=seq_len,
                     with_mask=with_mask)
    return build_dataflow_graph(trace_model(spec))


def coverage_fraction(graph: DataflowGraph) -> float:
    """Fraction of total FLOPs the three dataflows capture.

    The paper reports the dataflows cover ~90% of inference time; on a FLOP
    basis coverage is higher still since host tasks are cheap elementwise
    work.
    """
    accel = sum(df.flops for _, df in graph.dataflows)
    host = sum(task.flops for _, task in graph.host_tasks)
    host += sum(df.host_flops for _, df in graph.dataflows)
    total = accel + host
    return accel / total if total else 0.0
