"""Dependency graph of dataflows and host tasks for one inference.

Nodes are either accelerated :class:`~repro.dataflow.patterns.Dataflow`
instances or :class:`HostTask` instances (layer norms, embeddings, and other
"Other"-category work the accelerator does not handle).  Edges encode the
data dependencies shown in the paper's Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from ..trace.ops import Op
from .patterns import ArrayType, Dataflow


@dataclass(frozen=True)
class HostTask:
    """Work executed on the host CPU (not one of the three dataflows)."""

    ops: Tuple[Op, ...]
    name: str = ""
    layer: int = -1
    deps: Tuple[int, ...] = field(default=())

    @property
    def flops(self) -> int:
        return sum(op.flops for op in self.ops)


Node = Union[Dataflow, HostTask]


class DataflowGraph:
    """An immutable DAG of dataflows and host tasks.

    Args:
        nodes: nodes in construction order; each node's ``deps`` must point
            to smaller indices (the builder emits them topologically).
    """

    def __init__(self, nodes: Sequence[Node]) -> None:
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        for index, node in enumerate(self._nodes):
            for dep in node.deps:
                if not 0 <= dep < index:
                    raise ValueError(
                        f"node {index} ({node.name}): bad dep {dep}")
        self._successors: Dict[int, List[int]] = {
            i: [] for i in range(len(self._nodes))}
        for index, node in enumerate(self._nodes):
            for dep in node.deps:
                self._successors[dep].append(index)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __getitem__(self, index: int) -> Node:
        return self._nodes[index]

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    def successors(self, index: int) -> Tuple[int, ...]:
        """Indices of nodes that depend on ``index``."""
        return tuple(self._successors[index])

    @property
    def dataflows(self) -> List[Tuple[int, Dataflow]]:
        """(index, node) pairs for the accelerated nodes."""
        return [(i, n) for i, n in enumerate(self._nodes)
                if isinstance(n, Dataflow)]

    @property
    def host_tasks(self) -> List[Tuple[int, HostTask]]:
        return [(i, n) for i, n in enumerate(self._nodes)
                if isinstance(n, HostTask)]

    def count_by_array_type(self) -> Dict[ArrayType, int]:
        """How many dataflows target each systolic-array type."""
        counts: Dict[ArrayType, int] = {t: 0 for t in ArrayType}
        for _, dataflow in self.dataflows:
            counts[dataflow.array_type] += 1
        return counts

    def topological_order(self) -> List[int]:
        """Construction order is topological by the constructor invariant."""
        return list(range(len(self._nodes)))

    def validate_acyclic(self) -> bool:
        """Graphs built here are acyclic by construction; re-verify anyway."""
        in_degree = [len(node.deps) for node in self._nodes]
        ready = [i for i, d in enumerate(in_degree) if d == 0]
        visited = 0
        while ready:
            current = ready.pop()
            visited += 1
            for successor in self._successors[current]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        return visited == len(self._nodes)

    def critical_path_length(self, cost) -> float:
        """Longest weighted path through the DAG.

        Args:
            cost: callable mapping a node to a non-negative weight (e.g. its
                isolated execution latency).  Determines the lower bound on
                schedule makespan regardless of thread count.
        """
        finish: List[float] = [0.0] * len(self._nodes)
        for index, node in enumerate(self._nodes):
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[index] = start + float(cost(node))
        return max(finish, default=0.0)
