"""Dataflow patterns (paper Figure 6).

Around 90% of Protein BERT inference time falls into three operation
sequences, each executable on the accelerator as one pipelined dataflow:

* **Dataflow 1** — MatMul → MulAdd.  The large projections (Q/K/V, attention
  output, FFN output) with their bias/residual additions.  Runs on M-Type
  systolic arrays.
* **Dataflow 2** — MatMul → MulAdd → GELU.  The FFN intermediate projection.
  Runs on G-Type arrays (GELU lookup tables attached to the SIMD units).
* **Dataflow 3** — (batched) MatMul → MatDiv → Exp → *host Sum/Divide* →
  MatMul.  The attention dot products, scaling, and softmax.  Runs on E-Type
  arrays; the softmax summation and division execute on the host CPU,
  "trading performance for hardware simplicity".

Everything else (layer norms, embeddings, transposes) runs on the host.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from ..trace.ops import Op, OpKind


class DataflowKind(enum.Enum):
    """The three accelerated operation sequences of Figure 6."""

    DATAFLOW_1 = "dataflow1"    # MatMul -> MulAdd
    DATAFLOW_2 = "dataflow2"    # MatMul -> MulAdd -> GELU
    DATAFLOW_3 = "dataflow3"    # batched MatMul -> MatDiv -> Exp -> MatMul

    @property
    def array_type(self) -> "ArrayType":
        """The systolic-array type that executes this dataflow."""
        return _DATAFLOW_TO_ARRAY[self]


class ArrayType(enum.Enum):
    """Heterogeneous systolic array types (paper Section 3.1).

    M-Type: MatMul + SIMD ALU ops.  G-Type: adds GELU LUTs.  E-Type: adds
    Exp LUTs.
    """

    M = "M"
    G = "G"
    E = "E"

    @property
    def has_gelu(self) -> bool:
        return self is ArrayType.G

    @property
    def has_exp(self) -> bool:
        return self is ArrayType.E


_DATAFLOW_TO_ARRAY = {
    DataflowKind.DATAFLOW_1: ArrayType.M,
    DataflowKind.DATAFLOW_2: ArrayType.G,
    DataflowKind.DATAFLOW_3: ArrayType.E,
}

#: Op kinds each dataflow may contain on the accelerator side.
ACCELERATOR_KINDS = {
    DataflowKind.DATAFLOW_1: (OpKind.MATMUL, OpKind.ADD, OpKind.MUL),
    DataflowKind.DATAFLOW_2: (OpKind.MATMUL, OpKind.ADD, OpKind.MUL,
                              OpKind.GELU),
    DataflowKind.DATAFLOW_3: (OpKind.BMM, OpKind.DIV, OpKind.MUL,
                              OpKind.ADD, OpKind.EXP),
}

#: Op kinds Dataflow 3 delegates to the host CPU (softmax sum + divide).
HOST_KINDS_DATAFLOW_3 = (OpKind.SUM, OpKind.DIV)


@dataclass(frozen=True)
class Dataflow:
    """One schedulable accelerator task: a chained op sequence.

    Attributes:
        kind: which of the three patterns this instance is.
        ops: accelerator-side ops, in pipeline order.
        host_ops: ops this dataflow requires the host to run (softmax
            sum/divide for Dataflow 3; empty otherwise).
        name: provenance, e.g. ``"layer.3.attention.query"``.
        layer: encoder layer index.
        deps: indices (within the parent graph) of dataflows that must
            complete first.
    """

    kind: DataflowKind
    ops: Tuple[Op, ...]
    host_ops: Tuple[Op, ...] = ()
    name: str = ""
    layer: int = -1
    deps: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError(f"dataflow {self.name}: needs at least one op")
        allowed = ACCELERATOR_KINDS[self.kind]
        for op in self.ops:
            if op.kind not in allowed:
                raise ValueError(
                    f"dataflow {self.name}: op kind {op.kind} not allowed "
                    f"in {self.kind}")
        if self.host_ops and self.kind is not DataflowKind.DATAFLOW_3:
            raise ValueError("only Dataflow 3 carries host-side ops")

    @property
    def array_type(self) -> ArrayType:
        return self.kind.array_type

    @property
    def flops(self) -> int:
        """Accelerator-side FLOPs."""
        return sum(op.flops for op in self.ops)

    @property
    def host_flops(self) -> int:
        return sum(op.flops for op in self.host_ops)

    @property
    def gemm_ops(self) -> Tuple[Op, ...]:
        """The MatMul/BMM ops in this dataflow."""
        return tuple(op for op in self.ops
                     if op.kind in (OpKind.MATMUL, OpKind.BMM))

    @property
    def simd_ops(self) -> Tuple[Op, ...]:
        """The elementwise / special-function ops in this dataflow."""
        return tuple(op for op in self.ops
                     if op.kind not in (OpKind.MATMUL, OpKind.BMM))

    def stream_bytes(self, element_bytes: int = 2) -> int:
        """Host↔accelerator traffic for one execution of this dataflow.

        ProSE streams both GEMM operands in and the result out; SIMD
        operands (bias vectors, residual matrices) stream in as well; the
        intermediate data between chained ops stays in the accumulators and
        moves nothing (the paper's central efficiency claim).
        """
        total = 0
        for op in self.gemm_ops:
            if op.kind is OpKind.MATMUL:
                m, k, n = op.shape
                total += element_bytes * (m * k + k * n + m * n)
            else:
                b, m, k, n = op.shape
                total += element_bytes * b * (m * k + k * n + m * n)
        for op in self.simd_ops:
            if op.kind in (OpKind.ADD, OpKind.MUL):
                # One streamed operand; the other side lives in accumulators.
                total += element_bytes * op.elements
            # DIV (reciprocal-constant multiply), EXP, and GELU read only the
            # accumulators plus broadcast scalars: no streamed matrix operand.
        return total
