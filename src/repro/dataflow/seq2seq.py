"""Dataflow mapping for encoder-decoder models on ProSE.

The paper's conclusion extends ProSE to models with decoder layers.  Each
decoder layer maps onto the same three dataflow patterns:

* masked self-attention  → 3× Dataflow 1 (Q/K/V) + Dataflow 3 (with the
  causal-mask addition in the SIMD chain) + 1× Dataflow 1 (output);
* cross-attention        → the same, with K/V projections reading the
  encoder output;
* feed-forward           → Dataflow 2 + Dataflow 1, as in the encoder.

Per decoder layer: 8× Dataflow 1, 1× Dataflow 2, 2× Dataflow 3, plus the
host layer norms — constructed directly here (the encoder graph still
comes from the trace-matching builder).
"""

from __future__ import annotations

from typing import List, Tuple

from ..model.config import BertConfig
from ..trace.ops import Op, OpKind, bmm_op, elementwise_op, matmul_op
from .builder import _split_softmax, build_graph_for
from .graph import DataflowGraph, HostTask, Node
from .patterns import Dataflow, DataflowKind


def _projection(name: str, layer: int, rows: int, k: int, n: int,
                shape: Tuple[int, ...], deps: Tuple[int, ...],
                residual: bool = False) -> Dataflow:
    ops: List[Op] = [
        matmul_op(rows, k, n, name=name, layer=layer),
        elementwise_op(OpKind.ADD, shape, name=f"{name}.bias", layer=layer,
                       metadata={"vector_operand": 1.0}),
    ]
    if residual:
        ops.append(elementwise_op(OpKind.ADD, shape,
                                  name=f"{name}.residual", layer=layer))
    return Dataflow(kind=DataflowKind.DATAFLOW_1, ops=tuple(ops),
                    name=name, layer=layer, deps=deps)


def _attention_df3(name: str, layer: int, batch_heads: int, q_len: int,
                   kv_len: int, head_dim: int, deps: Tuple[int, ...],
                   masked: bool) -> Dataflow:
    scores = bmm_op(batch_heads, q_len, head_dim, kv_len,
                    name=f"{name}.scores", layer=layer)
    scale = elementwise_op(OpKind.DIV, (batch_heads, q_len, kv_len),
                           name=f"{name}.scale", layer=layer,
                           metadata={"divisor": float(head_dim) ** 0.5})
    softmax = elementwise_op(OpKind.SOFTMAX, (batch_heads, q_len, kv_len),
                             name=f"{name}.softmax", layer=layer)
    exp, host_sum, host_div = _split_softmax(softmax)
    context = bmm_op(batch_heads, q_len, kv_len, head_dim,
                     name=f"{name}.context", layer=layer)
    ops: Tuple[Op, ...] = (scores, scale)
    if masked:
        ops += (elementwise_op(OpKind.ADD, (batch_heads, q_len, kv_len),
                               name=f"{name}.causal_mask", layer=layer),)
    ops += (exp, context)
    return Dataflow(kind=DataflowKind.DATAFLOW_3, ops=ops,
                    host_ops=(host_sum, host_div), name=name, layer=layer,
                    deps=deps)


def build_seq2seq_graph(config: BertConfig, batch: int, src_len: int,
                        tgt_len: int,
                        decoder_layers: int = None) -> DataflowGraph:
    """Dataflow DAG for one encoder-decoder inference (teacher-forced).

    Args:
        config: shared encoder/decoder hyperparameters.
        batch: sequences per inference.
        src_len: encoder input length.
        tgt_len: decoder input length.
        decoder_layers: decoder depth (defaults to ``config.num_layers``).
    """
    if decoder_layers is None:
        decoder_layers = config.num_layers
    if min(batch, src_len, tgt_len, decoder_layers) <= 0:
        raise ValueError("batch, lengths, and depth must be positive")

    encoder = build_graph_for(config, batch=batch, seq_len=src_len)
    nodes: List[Node] = list(encoder.nodes)
    encoder_final = len(nodes) - 1     # the last encoder layer norm

    def add(node: Node) -> int:
        nodes.append(node)
        return len(nodes) - 1

    h, heads, hd = config.hidden_size, config.num_heads, config.head_dim
    inter = config.intermediate_size
    rows = batch * tgt_len
    hidden_shape = (batch, tgt_len, h)

    previous = add(HostTask(
        ops=(elementwise_op(OpKind.EMBEDDING, hidden_shape,
                            name="decoder.embeddings.token"),
             elementwise_op(OpKind.EMBEDDING, hidden_shape,
                            name="decoder.embeddings.position"),
             elementwise_op(OpKind.ADD, hidden_shape,
                            name="decoder.embeddings.add"),
             elementwise_op(OpKind.LAYERNORM, hidden_shape,
                            name="decoder.embeddings.layernorm")),
        name="decoder.embeddings", layer=-1, deps=(encoder_final,)))

    for layer in range(decoder_layers):
        prefix = f"decoder.layer.{layer}"

        # Masked self-attention: Q/K/V from the running decoder state.
        qkv = tuple(add(_projection(
            f"{prefix}.self.{proj}", layer, rows, h, h, hidden_shape,
            deps=(previous,))) for proj in ("query", "key", "value"))
        self_df3 = add(_attention_df3(
            f"{prefix}.self", layer, batch * heads, tgt_len, tgt_len, hd,
            deps=qkv, masked=True))
        self_out = add(_projection(
            f"{prefix}.self.output", layer, rows, h, h, hidden_shape,
            deps=(self_df3,), residual=True))
        norm1 = add(HostTask(
            ops=(elementwise_op(OpKind.LAYERNORM, hidden_shape,
                                name=f"{prefix}.self.layernorm",
                                layer=layer),),
            name=f"{prefix}.self.layernorm", layer=layer,
            deps=(self_out,)))

        # Cross-attention: Q from the decoder; K/V from the encoder.
        q = add(_projection(f"{prefix}.cross.query", layer, rows, h, h,
                            hidden_shape, deps=(norm1,)))
        kv_rows = batch * src_len
        kv_shape = (batch, src_len, h)
        k = add(_projection(f"{prefix}.cross.key", layer, kv_rows, h, h,
                            kv_shape, deps=(encoder_final,)))
        v = add(_projection(f"{prefix}.cross.value", layer, kv_rows, h, h,
                            kv_shape, deps=(encoder_final,)))
        cross_df3 = add(_attention_df3(
            f"{prefix}.cross", layer, batch * heads, tgt_len, src_len, hd,
            deps=(q, k, v), masked=False))
        cross_out = add(_projection(
            f"{prefix}.cross.output", layer, rows, h, h, hidden_shape,
            deps=(cross_df3,), residual=True))
        norm2 = add(HostTask(
            ops=(elementwise_op(OpKind.LAYERNORM, hidden_shape,
                                name=f"{prefix}.cross.layernorm",
                                layer=layer),),
            name=f"{prefix}.cross.layernorm", layer=layer,
            deps=(cross_out,)))

        # Feed-forward: Dataflow 2 then Dataflow 1, as in the encoder.
        intermediate = add(Dataflow(
            kind=DataflowKind.DATAFLOW_2,
            ops=(matmul_op(rows, h, inter, name=f"{prefix}.intermediate",
                           layer=layer),
                 elementwise_op(OpKind.ADD, (batch, tgt_len, inter),
                                name=f"{prefix}.intermediate.bias",
                                layer=layer,
                                metadata={"vector_operand": 1.0}),
                 elementwise_op(OpKind.GELU, (batch, tgt_len, inter),
                                name=f"{prefix}.gelu", layer=layer)),
            name=f"{prefix}.intermediate", layer=layer, deps=(norm2,)))
        ffn_out = add(_projection(
            f"{prefix}.output", layer, rows, inter, h, hidden_shape,
            deps=(intermediate,), residual=True))
        previous = add(HostTask(
            ops=(elementwise_op(OpKind.LAYERNORM, hidden_shape,
                                name=f"{prefix}.output.layernorm",
                                layer=layer),),
            name=f"{prefix}.output.layernorm", layer=layer,
            deps=(ffn_out,)))

    return DataflowGraph(nodes)
