"""Downstream protein design tasks (Figure 2b)."""

from .evaluation import (
    TaskResult,
    default_task_extractor,
    evaluate_all_tasks,
    evaluate_task,
    format_results,
)
from .tasks import (
    TASK_REGISTRY,
    TaskDataset,
    TaskExample,
    fluorescence_label,
    make_task_dataset,
    stability_label,
)

__all__ = [
    "TASK_REGISTRY",
    "TaskDataset",
    "TaskExample",
    "TaskResult",
    "default_task_extractor",
    "evaluate_all_tasks",
    "evaluate_task",
    "fluorescence_label",
    "format_results",
    "make_task_dataset",
    "stability_label",
]
