"""Evaluate the BERT-features → linear-model pipeline on downstream tasks.

The paper's workflow (Figure 2b): one pre-trained Protein BERT feeds
*arbitrary* downstream tasks through small task heads — "the modularity
of BERT-style protein design software gives our workflow the ability to
automatically improve ... as larger and more powerful Protein BERT-style
models are developed."  This module runs that workflow across the task
registry and reports per-task transfer quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..binding.features import FeatureExtractor
from ..binding.metrics import pearson, spearman
from ..binding.regression import PcaRidgeModel
from ..model.bert import ProteinBert
from ..model.config import BertConfig
from ..model.weights import pretrained_like_weights
from .tasks import TASK_REGISTRY, TaskDataset, make_task_dataset


@dataclass(frozen=True)
class TaskResult:
    """Transfer quality of the pipeline on one downstream task."""

    task: str
    rank_correlation: float
    pearson_correlation: float
    num_train: int
    num_test: int


def default_task_extractor(seed: int = 11) -> ProteinBert:
    """A compact descriptor-structured extractor shared by all tasks."""
    config = BertConfig(hidden_size=192, num_layers=3, num_heads=6,
                        intermediate_size=384, max_position=512)
    return ProteinBert(config,
                       weights=pretrained_like_weights(config, seed=seed))


def evaluate_task(dataset: TaskDataset,
                  model: Optional[ProteinBert] = None,
                  components: int = 4, alpha: float = 1.0) -> TaskResult:
    """Fit the task head on the train split and score the test split."""
    model = model or default_task_extractor()
    extractor = FeatureExtractor(model)
    train_features = extractor.extract(dataset.train_sequences)
    test_features = extractor.extract(dataset.test_sequences)
    head = PcaRidgeModel(components=components, alpha=alpha).fit(
        train_features, dataset.train_labels)
    predictions = head.predict(test_features)
    return TaskResult(
        task=dataset.name,
        rank_correlation=spearman(predictions, dataset.test_labels),
        pearson_correlation=pearson(predictions, dataset.test_labels),
        num_train=len(dataset.train),
        num_test=len(dataset.test))


def evaluate_all_tasks(model: Optional[ProteinBert] = None,
                       tasks: Optional[Sequence[str]] = None,
                       seed: int = 11) -> Dict[str, TaskResult]:
    """Run the workflow on every registered task with one shared model."""
    model = model or default_task_extractor(seed=seed)
    names = tasks if tasks is not None else sorted(TASK_REGISTRY)
    results = {}
    for name in names:
        dataset = make_task_dataset(name, seed=seed)
        results[name] = evaluate_task(dataset, model=model)
    return results


def format_results(results: Dict[str, TaskResult]) -> str:
    lines = [f"{'task':>14s} {'rank rho':>9s} {'pearson':>9s} "
             f"{'train/test':>11s}"]
    for name in sorted(results):
        result = results[name]
        lines.append(f"{name:>14s} {result.rank_correlation:9.4f} "
                     f"{result.pearson_correlation:9.4f} "
                     f"{result.num_train:5d}/{result.num_test}")
    return "\n".join(lines)
