"""Downstream protein design tasks (paper Figure 2b).

Protein BERT models feed downstream fine-tuning tasks: fluorescence (does
a variant fluoresce, and how brightly), stability (will the protein stay
folded), binding affinity (Section 2.2's star task), and structure-
related prediction.  As with the binding study, the real assay datasets
(TAPE's fluorescence/stability sets) are not redistributable, so each
task ships a synthetic generator whose ground truth is a biophysically
motivated function of sequence — enough signal for the BERT-features →
regularized-linear-model pipeline to demonstrate transfer, which is what
the paper's workflow claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..proteins.alphabet import CHARGE, HYDROPATHY, VOLUME
from ..proteins.sequences import SequenceGenerator


@dataclass(frozen=True)
class TaskExample:
    """One labelled sequence of a downstream task."""

    sequence: str
    label: float


@dataclass(frozen=True)
class TaskDataset:
    """Train/test split for one downstream task."""

    name: str
    train: Tuple[TaskExample, ...]
    test: Tuple[TaskExample, ...]

    @property
    def train_sequences(self) -> List[str]:
        return [example.sequence for example in self.train]

    @property
    def test_sequences(self) -> List[str]:
        return [example.sequence for example in self.test]

    @property
    def train_labels(self) -> np.ndarray:
        return np.array([example.label for example in self.train])

    @property
    def test_labels(self) -> np.ndarray:
        return np.array([example.label for example in self.test])


def _window_mean(values: Sequence[float], width: int) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    kernel = np.ones(width) / width
    return np.convolve(array, kernel, mode="valid")


def make_fluorescence_label(wild_type: str) -> Callable[[str], float]:
    """Synthetic log-fluorescence for variants of a GFP-like wild type.

    Chromophore maturation needs a folded beta-barrel around a *fixed*
    site: the core window is located once on the wild type (its most
    hydrophobic 11-residue window) and every variant is scored there —
    charged or hydrophilic substitutions in the core quench fluorescence.
    """
    wt_hydro = [HYDROPATHY.get(residue, 0.0) for residue in wild_type]
    core_start = int(np.argmax(_window_mean(wt_hydro, 11)))

    def label(sequence: str) -> float:
        core = sequence[core_start:core_start + 11]
        core_charge = sum(abs(CHARGE.get(residue, 0.0))
                          for residue in core)
        core_hydro = float(np.mean([HYDROPATHY.get(residue, 0.0)
                                    for residue in core]))
        return 3.0 - 1.2 * core_charge + 0.4 * core_hydro

    return label


def fluorescence_label(sequence: str) -> float:
    """Score a sequence as its own wild type (single-sequence helper)."""
    return make_fluorescence_label(sequence)(sequence)


def stability_label(sequence: str) -> float:
    """Synthetic folding stability (ΔG-like, higher = more stable).

    Stability grows with hydrophobic burial and side-chain packing, and
    drops with net charge imbalance (charge-charge repulsion).
    """
    hydro = np.array([HYDROPATHY.get(residue, 0.0)
                      for residue in sequence])
    charge = np.array([CHARGE.get(residue, 0.0) for residue in sequence])
    volume = np.array([VOLUME.get(residue, 140.0)
                       for residue in sequence])
    packing = float(np.mean((volume - 140.0) / 90.0) ** 2)
    return float(0.5 * hydro.mean() * len(sequence) / 50.0
                 - 0.05 * abs(charge.sum()) - 2.0 * packing + 1.0)


def _fluorescence_region(wild_type: str) -> List[int]:
    """Mutable positions for the fluorescence library.

    Real GFP landscapes (e.g. Sarkisyan et al., used by TAPE) mutate
    around the chromophore; our synthetic label reads the most
    hydrophobic 11-residue window, so the library mutates that window
    plus flanks.
    """
    hydro = [HYDROPATHY.get(residue, 0.0) for residue in wild_type]
    core_start = int(np.argmax(_window_mean(hydro, 11)))
    low = max(core_start - 5, 0)
    high = min(core_start + 16, len(wild_type))
    return list(range(low, high))


def _whole_sequence(wild_type: str) -> List[int]:
    return list(range(len(wild_type)))


def make_stability_label(wild_type: str) -> Callable[[str], float]:
    """Stability is a global property; the factory ignores the wild type."""
    return stability_label


#: Registered downstream tasks: name -> (label-function factory taking the
#: wild type, sequence length, mutable-region function).
TASK_REGISTRY: Dict[str, Tuple[Callable[[str], Callable[[str], float]], int,
                               Callable[[str], List[int]]]] = {
    "fluorescence": (make_fluorescence_label, 237, _fluorescence_region),
    "stability": (make_stability_label, 45, _whole_sequence),
}


def make_task_dataset(name: str, num_train: int = 96, num_test: int = 48,
                      seed: int = 11, noise_scale: float = 0.25,
                      mutations_per_variant: int = 4) -> TaskDataset:
    """Synthesize one downstream task's variant library.

    Variants derive from a common wild-type scaffold by point mutation,
    as the TAPE fluorescence/stability landscapes do, with Gaussian
    measurement noise scaled to the label spread.
    """
    if name not in TASK_REGISTRY:
        raise ValueError(
            f"unknown task '{name}'; known: {sorted(TASK_REGISTRY)}")
    label_factory, length, region_fn = TASK_REGISTRY[name]
    generator = SequenceGenerator(seed=seed)
    wild_type = generator.sequence(length)
    label_fn = label_factory(wild_type)
    region = region_fn(wild_type)
    rng = np.random.default_rng(seed + 1)

    def build(count: int, offset: str) -> List[TaskExample]:
        examples = []
        raw = []
        for _ in range(count):
            sequence = generator.mutate(wild_type, mutations_per_variant,
                                        positions=region)
            raw.append((sequence, label_fn(sequence)))
        spread = float(np.std([label for _, label in raw])) or 1.0
        noise = rng.normal(0.0, noise_scale * spread, size=count)
        for (sequence, label), epsilon in zip(raw, noise):
            examples.append(TaskExample(sequence=sequence,
                                        label=float(label + epsilon)))
        return examples

    return TaskDataset(name=name, train=tuple(build(num_train, "train")),
                       test=tuple(build(num_test, "test")))
