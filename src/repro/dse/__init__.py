"""Design-space exploration (Table 3, Figures 16-17)."""

from .explorer import DesignSpaceExplorer, DsePoint, DseResult
from .pareto import argmin, pareto_front
from .space import (
    DEFAULT_PARTITIONS,
    DEFAULT_PE_BUDGET,
    GE_MAX_COUNTS,
    GE_SIZES,
    M_MAX_COUNT,
    M_SIZE,
    Mix,
    enumerate_configs,
    enumerate_mixes,
    mix_to_config,
    space_size,
)

__all__ = [
    "DEFAULT_PARTITIONS",
    "DEFAULT_PE_BUDGET",
    "DesignSpaceExplorer",
    "DsePoint",
    "DseResult",
    "GE_MAX_COUNTS",
    "GE_SIZES",
    "M_MAX_COUNT",
    "M_SIZE",
    "Mix",
    "argmin",
    "enumerate_configs",
    "enumerate_mixes",
    "mix_to_config",
    "pareto_front",
    "space_size",
]
