"""Design-space exploration driver (Section 4.2, Figures 16-17).

Evaluates every configuration of the Table 3 space with the cycle-level
orchestration simulator, attaches power/area from the physical model, and
selects the paper's three design points: BestPerf (minimum runtime),
MostPowerEfficient, and MostAreaEfficient (Pareto points maximizing
perf/W and perf/mm²).  The paper found the latter two coincide and calls
the combined point MostEfficient.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig
from ..arch.interconnect import LanePartition, LinkConfig
from ..baselines.gpu import a100
from ..model.config import BertConfig, protein_bert_base
from ..parallel.executor import SweepExecutor
from ..parallel.memo import cached_schedule
from ..physical.power import power_report
from ..sched.host import HostModel
from ..telemetry import MetricsRegistry, Tracer
from .pareto import argmin, pareto_front
from .space import DEFAULT_PARTITIONS, DEFAULT_PE_BUDGET, enumerate_configs


@dataclass(frozen=True)
class DsePoint:
    """One evaluated configuration in the DSE scatter.

    Attributes:
        config: the hardware configuration.
        runtime_seconds: simulated batch makespan.
        normalized_runtime: runtime / the A100's runtime on the same
            workload (the Figure 16 y-axis).
        power_watts: accelerator power.
        area_mm2: accelerator area.
    """

    config: HardwareConfig
    runtime_seconds: float
    normalized_runtime: float
    power_watts: float
    area_mm2: float

    @property
    def perf_per_watt(self) -> float:
        return 1.0 / (self.normalized_runtime * self.power_watts)

    @property
    def perf_per_area(self) -> float:
        return 1.0 / (self.normalized_runtime * self.area_mm2)


@dataclass(frozen=True)
class DseResult:
    """Outcome of one full design-space sweep."""

    points: Tuple[DsePoint, ...]
    best_perf: DsePoint
    most_power_efficient: DsePoint
    most_area_efficient: DsePoint

    @property
    def most_efficient_coincides(self) -> bool:
        """The paper's observation: both Pareto picks are the same config."""
        return (self.most_power_efficient.config.name
                == self.most_area_efficient.config.name)


def _evaluate_config(state: Tuple[BertConfig, int, int, HostModel, float],
                     config: HardwareConfig) -> DsePoint:
    """Evaluate one configuration (module-level so it pickles to workers).

    The schedule is routed through the shape-keyed cache: the traced op
    stream is shared across every configuration of a sweep, and a warm
    re-run of the same ``(workload, hardware)`` point skips the
    cycle-level scheduler entirely.
    """
    model_config, batch, seq_len, host, a100_runtime = state
    schedule = cached_schedule(config, model_config, batch=batch,
                               seq_len=seq_len, host=host)
    report = power_report(config)
    return DsePoint(config=config,
                    runtime_seconds=schedule.makespan_seconds,
                    normalized_runtime=schedule.makespan_seconds
                    / a100_runtime,
                    power_watts=report.accelerator_power_w,
                    area_mm2=report.area_mm2)


class DesignSpaceExplorer:
    """Sweeps the Table 3 space at a given workload and PE budget.

    Args:
        model_config: Protein BERT configuration.
        batch: inference batch per evaluation (the paper uses 128; smaller
            values speed up sweeps without changing the ranking much).
        seq_len: input length (the paper evaluates at 512).
        host: host CPU model shared by all evaluations.
    """

    def __init__(self, model_config: Optional[BertConfig] = None,
                 batch: int = 32, seq_len: int = 512,
                 host: Optional[HostModel] = None) -> None:
        self.model_config = model_config or protein_bert_base()
        self.batch = batch
        self.seq_len = seq_len
        self.host = host or HostModel()
        self._a100 = a100()
        self._a100_reference: Optional[float] = None

    def evaluate(self, config: HardwareConfig,
                 a100_runtime: Optional[float] = None) -> DsePoint:
        """Simulate one configuration and attach physical characteristics."""
        if a100_runtime is None:
            a100_runtime = self.a100_runtime()
        return _evaluate_config(self._state(a100_runtime), config)

    def a100_runtime(self) -> float:
        """The A100's batch latency on the same workload (computed once)."""
        if self._a100_reference is None:
            self._a100_reference = self.batch / self._a100.throughput(
                self.model_config, batch=self.batch, seq_len=self.seq_len)
        return self._a100_reference

    def _state(self, a100_runtime: float
               ) -> Tuple[BertConfig, int, int, HostModel, float]:
        """The picklable per-sweep invariants shipped to every worker."""
        return (self.model_config, self.batch, self.seq_len, self.host,
                a100_runtime)

    def sweep(self, pe_budget: int = DEFAULT_PE_BUDGET,
              partitions: Sequence[LanePartition] = DEFAULT_PARTITIONS,
              link: Optional[LinkConfig] = None,
              limit: Optional[int] = None,
              workers: Optional[int] = None,
              executor: Optional[SweepExecutor] = None,
              tracer: Optional[Tracer] = None,
              metrics: Optional[MetricsRegistry] = None) -> DseResult:
        """Evaluate the space and select the paper's design points.

        Results are deterministic and order-stable regardless of worker
        count: points come back in enumeration order and the Pareto/argmin
        tie-breaks run over that fixed order.

        Args:
            pe_budget: total PE count every mix must hit exactly.
            partitions: lane partitions swept per mix.
            link: link operating point (default NVLink 2.0 @ 90%).
            limit: evaluate only the first N configurations (fast tests).
            workers: process count for the fan-out; ``None`` reads
                ``REPRO_SWEEP_WORKERS`` (default 1, the serial path).
            executor: a pre-built :class:`SweepExecutor` (overrides
                ``workers``).
            tracer: optional tracer receiving per-worker task spans.
            metrics: optional registry receiving task and cache counters.
        """
        reference = self.a100_runtime()
        configs: List[HardwareConfig] = []
        for index, config in enumerate(
                enumerate_configs(pe_budget, partitions, link)):
            if limit is not None and index >= limit:
                break
            configs.append(config)
        if not configs:
            raise ValueError("design space is empty")
        if executor is None:
            executor = SweepExecutor(SweepExecutor.resolve_workers(workers))
        points = executor.map(
            functools.partial(_evaluate_config, self._state(reference)),
            configs, tracer=tracer, metrics=metrics, label="dse")

        best_perf = argmin(points, key=lambda p: p.normalized_runtime)
        power_front = pareto_front(
            points, lambda p: (p.normalized_runtime, p.power_watts))
        area_front = pareto_front(
            points, lambda p: (p.normalized_runtime, p.area_mm2))
        most_power = argmin(power_front, key=lambda p: 1.0 / p.perf_per_watt)
        most_area = argmin(area_front, key=lambda p: 1.0 / p.perf_per_area)
        return DseResult(points=tuple(points), best_perf=best_perf,
                         most_power_efficient=most_power,
                         most_area_efficient=most_area)
