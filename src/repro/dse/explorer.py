"""Design-space exploration driver (Section 4.2, Figures 16-17).

Evaluates every configuration of the Table 3 space with the cycle-level
orchestration simulator, attaches power/area from the physical model, and
selects the paper's three design points: BestPerf (minimum runtime),
MostPowerEfficient, and MostAreaEfficient (Pareto points maximizing
perf/W and perf/mm²).  The paper found the latter two coincide and calls
the combined point MostEfficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig
from ..arch.interconnect import LanePartition, LinkConfig
from ..baselines.gpu import a100
from ..model.config import BertConfig, protein_bert_base
from ..physical.power import power_report
from ..sched.host import HostModel
from ..sched.orchestrator import Orchestrator
from .pareto import argmin, pareto_front
from .space import DEFAULT_PARTITIONS, DEFAULT_PE_BUDGET, enumerate_configs


@dataclass(frozen=True)
class DsePoint:
    """One evaluated configuration in the DSE scatter.

    Attributes:
        config: the hardware configuration.
        runtime_seconds: simulated batch makespan.
        normalized_runtime: runtime / the A100's runtime on the same
            workload (the Figure 16 y-axis).
        power_watts: accelerator power.
        area_mm2: accelerator area.
    """

    config: HardwareConfig
    runtime_seconds: float
    normalized_runtime: float
    power_watts: float
    area_mm2: float

    @property
    def perf_per_watt(self) -> float:
        return 1.0 / (self.normalized_runtime * self.power_watts)

    @property
    def perf_per_area(self) -> float:
        return 1.0 / (self.normalized_runtime * self.area_mm2)


@dataclass(frozen=True)
class DseResult:
    """Outcome of one full design-space sweep."""

    points: Tuple[DsePoint, ...]
    best_perf: DsePoint
    most_power_efficient: DsePoint
    most_area_efficient: DsePoint

    @property
    def most_efficient_coincides(self) -> bool:
        """The paper's observation: both Pareto picks are the same config."""
        return (self.most_power_efficient.config.name
                == self.most_area_efficient.config.name)


class DesignSpaceExplorer:
    """Sweeps the Table 3 space at a given workload and PE budget.

    Args:
        model_config: Protein BERT configuration.
        batch: inference batch per evaluation (the paper uses 128; smaller
            values speed up sweeps without changing the ranking much).
        seq_len: input length (the paper evaluates at 512).
        host: host CPU model shared by all evaluations.
    """

    def __init__(self, model_config: Optional[BertConfig] = None,
                 batch: int = 32, seq_len: int = 512,
                 host: Optional[HostModel] = None) -> None:
        self.model_config = model_config or protein_bert_base()
        self.batch = batch
        self.seq_len = seq_len
        self.host = host or HostModel()
        self._a100 = a100()

    def evaluate(self, config: HardwareConfig,
                 a100_runtime: Optional[float] = None) -> DsePoint:
        """Simulate one configuration and attach physical characteristics."""
        schedule = Orchestrator(config, host=self.host).run(
            self.model_config, batch=self.batch, seq_len=self.seq_len)
        if a100_runtime is None:
            a100_runtime = self.a100_runtime()
        report = power_report(config)
        return DsePoint(config=config,
                        runtime_seconds=schedule.makespan_seconds,
                        normalized_runtime=schedule.makespan_seconds
                        / a100_runtime,
                        power_watts=report.accelerator_power_w,
                        area_mm2=report.area_mm2)

    def a100_runtime(self) -> float:
        """The A100's batch latency on the same workload."""
        return self.batch / self._a100.throughput(
            self.model_config, batch=self.batch, seq_len=self.seq_len)

    def sweep(self, pe_budget: int = DEFAULT_PE_BUDGET,
              partitions: Sequence[LanePartition] = DEFAULT_PARTITIONS,
              link: Optional[LinkConfig] = None,
              limit: Optional[int] = None) -> DseResult:
        """Evaluate the space and select the paper's design points.

        Args:
            pe_budget: total PE count every mix must hit exactly.
            partitions: lane partitions swept per mix.
            link: link operating point (default NVLink 2.0 @ 90%).
            limit: evaluate only the first N configurations (fast tests).
        """
        reference = self.a100_runtime()
        points: List[DsePoint] = []
        for index, config in enumerate(
                enumerate_configs(pe_budget, partitions, link)):
            if limit is not None and index >= limit:
                break
            points.append(self.evaluate(config, a100_runtime=reference))
        if not points:
            raise ValueError("design space is empty")

        best_perf = argmin(points, key=lambda p: p.normalized_runtime)
        power_front = pareto_front(
            points, lambda p: (p.normalized_runtime, p.power_watts))
        area_front = pareto_front(
            points, lambda p: (p.normalized_runtime, p.area_mm2))
        most_power = argmin(power_front, key=lambda p: 1.0 / p.perf_per_watt)
        most_area = argmin(area_front, key=lambda p: 1.0 / p.perf_per_area)
        return DseResult(points=tuple(points), best_perf=best_perf,
                         most_power_efficient=most_power,
                         most_area_efficient=most_area)
