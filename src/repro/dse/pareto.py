"""Pareto-front extraction for the DSE scatter plots (Figure 16)."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def pareto_front(points: Sequence[T],
                 objectives: Callable[[T], Tuple[float, ...]]) -> List[T]:
    """Minimizing Pareto front of ``points`` under ``objectives``.

    A point is on the front when no other point is at least as good in
    every objective and strictly better in one.
    """
    values = [objectives(p) for p in points]
    front: List[T] = []
    for i, point in enumerate(points):
        dominated = False
        for j, other in enumerate(values):
            if j == i:
                continue
            if all(o <= v for o, v in zip(other, values[i])) and \
                    any(o < v for o, v in zip(other, values[i])):
                dominated = True
                break
        if not dominated:
            front.append(point)
    return front


def argmin(points: Sequence[T], key: Callable[[T], float]) -> T:
    """The point minimizing ``key`` (ValueError on empty input)."""
    if not points:
        raise ValueError("argmin over empty sequence")
    return min(points, key=key)
