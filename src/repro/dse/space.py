"""Design-space enumeration (Table 3).

The DSE sweeps heterogeneous mixes of systolic array types, sizes, and
counts at a fixed PE budget (16384 PEs = one TPU 128×128 array, or other
budgets for the Figure 17 resource sweep):

* M-Type must be 64×64 ("at least 64×64 for the performance to be
  competitive"), counts 1-3;
* G-Type and E-Type are 32×32 (counts 1-15) or 16×16 (counts 1-31);
* every type needs a count of at least one (all are needed for
  functionality);
* NVLink lanes are statically partitioned per type and swept as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..arch.config import ArrayGroup, HardwareConfig
from ..arch.interconnect import LanePartition, LinkConfig, make_partition, nvlink
from ..dataflow.patterns import ArrayType

#: Table 3 limits.
M_SIZE = 64
M_MAX_COUNT = 3
GE_SIZES = (32, 16)
GE_MAX_COUNTS = {32: 15, 16: 31}

#: Default PE budget: resource-equivalent to one TPU 128×128 systolic array.
DEFAULT_PE_BUDGET = 16384

#: Lane partitions swept per mix (two points, as the paper's 238-config
#: space works out to roughly two lane options per hardware mix).
DEFAULT_PARTITIONS: Tuple[LanePartition, ...] = (
    make_partition(2, 2, 2),
    make_partition(3, 1, 2),
)


@dataclass(frozen=True)
class Mix:
    """One hardware mix: M/G/E sizes and counts (before lane assignment)."""

    m_count: int
    g_size: int
    g_count: int
    e_size: int
    e_count: int

    @property
    def total_pes(self) -> int:
        return (self.m_count * M_SIZE * M_SIZE
                + self.g_count * self.g_size * self.g_size
                + self.e_count * self.e_size * self.e_size)

    @property
    def label(self) -> str:
        return (f"M{M_SIZE}x{self.m_count} "
                f"G{self.g_size}x{self.g_count} "
                f"E{self.e_size}x{self.e_count}")


def enumerate_mixes(pe_budget: int = DEFAULT_PE_BUDGET) -> List[Mix]:
    """All Table 3 mixes whose PE count equals ``pe_budget`` exactly."""
    mixes: List[Mix] = []
    for m_count in range(1, M_MAX_COUNT + 1):
        remaining_after_m = pe_budget - m_count * M_SIZE * M_SIZE
        if remaining_after_m <= 0:
            continue
        for g_size in GE_SIZES:
            for g_count in range(1, GE_MAX_COUNTS[g_size] + 1):
                remaining = remaining_after_m - g_count * g_size * g_size
                if remaining <= 0:
                    break
                for e_size in GE_SIZES:
                    e_pes = e_size * e_size
                    if remaining % e_pes != 0:
                        continue
                    e_count = remaining // e_pes
                    if 1 <= e_count <= GE_MAX_COUNTS[e_size]:
                        mixes.append(Mix(m_count, g_size, g_count,
                                         e_size, e_count))
    return mixes


def mix_to_config(mix: Mix, partition: LanePartition,
                  link: LinkConfig = None,
                  name: str = "") -> HardwareConfig:
    """Materialize a mix + lane partition into a HardwareConfig."""
    link = link or nvlink(2, 0.9)
    return HardwareConfig(
        name=name or f"{mix.label} lanes={tuple(c for _, c in partition.lanes_by_type)}",
        groups=(
            ArrayGroup(ArrayType.M, size=M_SIZE, count=mix.m_count),
            ArrayGroup(ArrayType.G, size=mix.g_size, count=mix.g_count),
            ArrayGroup(ArrayType.E, size=mix.e_size, count=mix.e_count),
        ),
        link=link,
        partition=partition)


def enumerate_configs(pe_budget: int = DEFAULT_PE_BUDGET,
                      partitions: Sequence[LanePartition] = DEFAULT_PARTITIONS,
                      link: LinkConfig = None) -> Iterator[HardwareConfig]:
    """The full DSE configuration space (mixes × lane partitions)."""
    for mix in enumerate_mixes(pe_budget):
        for partition in partitions:
            yield mix_to_config(mix, partition, link)


def space_size(pe_budget: int = DEFAULT_PE_BUDGET,
               partitions: Sequence[LanePartition] = DEFAULT_PARTITIONS
               ) -> int:
    """Number of configurations the sweep will evaluate."""
    return len(enumerate_mixes(pe_budget)) * len(partitions)
