"""One module per paper artifact: every table and figure of ProSE.

Each module exposes ``run(...)`` returning structured data and
``format_result(...)`` rendering the paper's rows/series as text.  See
``runner.run_all`` for the consolidated report.
"""

from . import (
    ablations,
    binding_study,
    chaos_campaign,
    extensions,
    fault_campaign,
    figure01,
    figure03,
    figure04,
    figure08,
    figure11_12,
    figure13_14,
    figure16,
    figure17,
    figure18,
    figure19,
    figure20,
    numerics,
    sensitivity,
    table02,
    table03,
    table04,
)
from .runner import EXPERIMENTS, run_all

__all__ = [
    "EXPERIMENTS",
    "ablations",
    "binding_study",
    "chaos_campaign",
    "extensions",
    "fault_campaign",
    "figure01",
    "figure03",
    "figure04",
    "figure08",
    "figure11_12",
    "figure13_14",
    "figure16",
    "figure17",
    "figure18",
    "figure19",
    "figure20",
    "numerics",
    "run_all",
    "sensitivity",
    "table02",
    "table03",
    "table04",
]
