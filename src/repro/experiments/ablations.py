"""Ablations of the design choices DESIGN.md calls out.

The paper motivates four mechanisms beyond the headline heterogeneity:
the partial input buffer (Figure 11d), left-rotation dataflow chaining
(Figures 5/12), the LUT truncation windows (Figures 13/14), and the
32-thread orchestration (Figure 8 — swept separately).  Each ablation
here toggles exactly one mechanism on otherwise identical hardware.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arch.config import best_perf
from ..arch.interconnect import custom_link
from ..arch.lut import LutSpec, SpecialFunctionLut
from ..model.activations import gelu as gelu_reference
from ..model.config import BertConfig, protein_bert_base
from ..sched.orchestrator import Orchestrator


@dataclass(frozen=True)
class BufferAblationPoint:
    """Throughput with/without the partial input buffer at one bandwidth."""

    bandwidth_gbps: float
    with_buffer: float
    without_buffer: float

    @property
    def gain(self) -> float:
        return self.with_buffer / self.without_buffer


def input_buffer_ablation(config: Optional[BertConfig] = None,
                          bandwidths_gbps: Sequence[float] = (90, 270, 540),
                          batch: int = 32, seq_len: int = 512
                          ) -> List[BufferAblationPoint]:
    """Figure 11(d)'s claim: the buffer 'boosts performance in a limited
    bandwidth scenario' — its gain shrinks as bandwidth grows."""
    config = config or protein_bert_base()
    points = []
    for bandwidth in bandwidths_gbps:
        link = custom_link(bandwidth)
        with_buffer = best_perf().with_link(link)
        without = dataclasses.replace(with_buffer, use_input_buffer=False)
        fast = Orchestrator(with_buffer).run(config, batch, seq_len)
        slow = Orchestrator(without).run(config, batch, seq_len)
        points.append(BufferAblationPoint(
            bandwidth_gbps=bandwidth,
            with_buffer=fast.throughput,
            without_buffer=slow.throughput))
    return points


@dataclass(frozen=True)
class ChainingAblation:
    """Throughput and traffic with/without left-rotation chaining."""

    chained_throughput: float
    unchained_throughput: float
    chained_bytes: int
    unchained_bytes: int

    @property
    def speedup(self) -> float:
        return self.chained_throughput / self.unchained_throughput

    @property
    def traffic_saving(self) -> float:
        return 1.0 - self.chained_bytes / self.unchained_bytes


def chaining_ablation(config: Optional[BertConfig] = None, batch: int = 32,
                      seq_len: int = 512) -> ChainingAblation:
    """Isolate the left-rotation chaining on BestPerf hardware."""
    config = config or protein_bert_base()
    chained = best_perf()
    unchained = dataclasses.replace(chained, chained=False)
    fast = Orchestrator(chained).run(config, batch, seq_len)
    slow = Orchestrator(unchained).run(config, batch, seq_len)
    return ChainingAblation(
        chained_throughput=fast.throughput,
        unchained_throughput=slow.throughput,
        chained_bytes=fast.total_stream_bytes,
        unchained_bytes=slow.total_stream_bytes)


@dataclass(frozen=True)
class WindowPoint:
    """Accuracy and storage of one candidate GELU LUT window."""

    window: Tuple[int, int]
    table_bytes: int
    max_error: float


def gelu_window_ablation(
        windows: Sequence[Tuple[int, int]] = ((-2, 1), (-3, 2), (-4, 3),
                                              (-5, 4), (-6, 5)),
        domain: Tuple[float, float] = (-8.0, 8.0)) -> List[WindowPoint]:
    """Sweep the GELU exponent window (paper's choice: [-4, 3]).

    Narrower windows save LUT storage but truncate more of the input
    domain; wider windows buy little accuracy beyond the paper's choice.
    """
    xs = np.linspace(domain[0], domain[1], 20001).astype(np.float32)
    points = []
    for window in windows:
        spec = LutSpec(name=f"gelu{window}", exponent_window=window,
                       reference=gelu_reference, below_positive=0.0,
                       below_negative=0.0, above_positive=None,
                       above_negative=0.0)
        lut = SpecialFunctionLut(spec)
        points.append(WindowPoint(window=window,
                                  table_bytes=lut.table_bytes,
                                  max_error=lut.max_absolute_error(xs)))
    return points


def format_results(buffer_points: List[BufferAblationPoint],
                   chaining: ChainingAblation,
                   window_points: List[WindowPoint]) -> str:
    lines = ["-- partial input buffer (Figure 11d) --",
             f"{'GB/s':>6s} {'with':>9s} {'without':>9s} {'gain':>6s}"]
    for point in buffer_points:
        lines.append(f"{point.bandwidth_gbps:6.0f} {point.with_buffer:9.1f}"
                     f" {point.without_buffer:9.1f} {point.gain:6.2f}")
    lines.append("")
    lines.append("-- left-rotation dataflow chaining (Figures 5/12) --")
    lines.append(f"chained {chaining.chained_throughput:.1f} inf/s vs "
                 f"unchained {chaining.unchained_throughput:.1f} inf/s "
                 f"({chaining.speedup:.2f}x), link traffic saved "
                 f"{chaining.traffic_saving:.1%}")
    lines.append("")
    lines.append("-- GELU LUT exponent window (Figure 13) --")
    lines.append(f"{'window':>10s} {'bytes':>6s} {'max err':>9s}")
    for point in window_points:
        window = f"[{point.window[0]},{point.window[1]}]"
        lines.append(f"{window:>10s} {point.table_bytes:6d} "
                     f"{point.max_error:9.5f}")
    return "\n".join(lines)


def run():
    """Run all three ablations at laptop scale."""
    return (input_buffer_ablation(), chaining_ablation(),
            gelu_window_ablation())


def format_result(results) -> str:
    buffer_points, chaining, window_points = results
    return format_results(buffer_points, chaining, window_points)
