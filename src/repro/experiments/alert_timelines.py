"""Alert timelines: fault -> detection -> page for every chaos scenario.

The monitoring layer (:mod:`repro.monitor`) only earns its keep if the
burn-rate alerts it raises track the faults the chaos scenarios inject.
This experiment re-runs the chaos campaign (monitors are always on
there) and distils each scenario's :class:`~repro.monitor.SloOutcome`
into an incident timeline: when the first fault landed, when the fleet's
health layer detected it, when the first page fired, and how far behind
the fault that page was.

Everything derives from the deterministic campaign, so the timeline is
a regression artifact like any paper figure: a scenario that stops
paging — or pages slower — shows up as a diff in this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..monitor import SloOutcome
from . import chaos_campaign


@dataclass(frozen=True)
class AlertTimelinesResult:
    """One SLO outcome per scenario (baseline first), plus fleet shape."""

    topology: str
    batch: int
    seed: int
    scenarios: Tuple[str, ...]
    outcomes: Tuple[Optional[SloOutcome], ...]


def run(batch: int = 128, seed: int = 2022,
        racks: int = 2, hosts_per_rack: int = 2,
        instances_per_host: int = 2, heterogeneous: bool = False,
        workers: Optional[int] = None) -> AlertTimelinesResult:
    """Run the chaos campaign and keep each scenario's SLO outcome.

    Args mirror :func:`repro.experiments.chaos_campaign.run`; the
    campaign itself attaches a fleet monitor to every scenario, so this
    experiment adds no simulation of its own — it is a different lens
    on the same deterministic runs.
    """
    campaign = chaos_campaign.run(
        batch=batch, seed=seed, racks=racks,
        hosts_per_rack=hosts_per_rack,
        instances_per_host=instances_per_host,
        heterogeneous=heterogeneous, workers=workers)
    return AlertTimelinesResult(
        topology=campaign.topology, batch=campaign.batch,
        seed=campaign.seed, scenarios=campaign.scenarios,
        outcomes=tuple(report.slo for report in campaign.reports))


def _ms(seconds: Optional[float]) -> str:
    """Millisecond cell, '-' when the event never happened."""
    return f"{seconds * 1e3:9.3f}" if seconds is not None else f"{'-':>9s}"


def format_result(result: AlertTimelinesResult) -> str:
    """Per-scenario fault/detection/page timeline table."""
    lines = [f"fleet: {result.topology}, batch {result.batch}, "
             f"seed {result.seed}",
             f"{'scenario':>16s} {'fault ms':>9s} {'detect ms':>9s} "
             f"{'page ms':>9s} {'page lag':>9s} {'alerts':>6s} "
             f"{'pages':>5s} {'burn':>7s} {'budget':>7s}"]
    for name, outcome in zip(result.scenarios, result.outcomes):
        if outcome is None:
            lines.append(f"{name:>16s} {'(no monitor)':>9s}")
            continue
        lines.append(
            f"{name:>16s} {_ms(outcome.fault_seconds)} "
            f"{_ms(outcome.detection_seconds)} "
            f"{_ms(outcome.first_page_seconds)} "
            f"{_ms(outcome.page_delay_seconds)} "
            f"{outcome.alerts:6d} {outcome.pages:5d} "
            f"{outcome.worst_burn_rate:7.1f} "
            f"{outcome.budget_remaining:6.1%}")
    return "\n".join(lines)
