"""Section 2.2 — the software protein binding evaluation.

Thin experiment wrapper around :func:`repro.binding.run_binding_study`.
Claim to reproduce: a rank correlation "near or above 0.5" on the
independent BH1 test set (the paper reports 0.5161).
"""

from __future__ import annotations

from typing import Optional

from ..binding.experiment import (
    PAPER_RANK_CORRELATION,
    BindingStudyResult,
    run_binding_study,
)
from ..model.bert import ProteinBert


def run(model: Optional[ProteinBert] = None,
        seed: int = 2022) -> BindingStudyResult:
    return run_binding_study(model=model, seed=seed)


def format_result(result: BindingStudyResult) -> str:
    return "\n".join([
        f"train variants: {result.num_train} (Herceptin-like)",
        f"test variants:  {result.num_test} (BH1-like, independent)",
        f"test rank correlation:  {result.rank_correlation:.4f} "
        f"(paper: {PAPER_RANK_CORRELATION})",
        f"test Pearson r:         {result.pearson_correlation:.4f}",
        f"train rank correlation: {result.train_rank_correlation:.4f}",
        f"experimentally valid (ρ near/above 0.5): "
        f"{result.experimentally_valid}",
    ])
