"""Chaos campaign: every correlated-failure scenario over a small fleet.

Runs the scripted scenarios of :mod:`repro.fleet.scenarios` — rack
power loss, link flap storms, a silently slow node, a rolling restart —
against one fleet and workload, next to a clean baseline run, and
reports what each failure mode costs in goodput, availability, shed
work, and recovery time.

Scenario runs are independent, so they fan out over the parallel sweep
executor; each task's :class:`~repro.reliability.FaultModel` seed is
derived from the *scenario name* (:func:`~repro.reliability.derive_task_seed`),
never from shared RNG state, so the campaign is bit-identical at
``workers=1`` and ``workers=N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..fleet import (
    FleetReport,
    FleetSimulator,
    FleetTopology,
    SCENARIO_BUILDERS,
    build_fleet,
    build_scenario,
)
from ..model.config import BertConfig, protein_bert_tiny
from ..monitor import fleet_monitor
from ..parallel.executor import SweepExecutor
from ..reliability import (
    DegradationPolicy,
    FaultModel,
    FaultRates,
    derive_task_seed,
)

#: Clean-run pseudo-scenario name (no chaos script, inert fault model).
BASELINE = "baseline"

#: Background fault rate layered under every chaos script.
DEFAULT_LINK_TRANSIENT_RATE = 0.01


@dataclass(frozen=True)
class ChaosCampaignResult:
    """One report per scenario (baseline first), plus the fleet shape."""

    topology: str
    batch: int
    seed: int
    scenarios: Tuple[str, ...]
    reports: Tuple[FleetReport, ...]


def _scenario_report(payload: Tuple[str, int, int, BertConfig,
                                    FleetTopology]) -> FleetReport:
    """One scenario of the campaign (module-level for pickling).

    The fault-model seed is a pure function of (root seed, scenario
    name), so this task's outcome does not depend on which worker runs
    it or in what order.  Every run carries a live fleet monitor: the
    monitor only observes (all simulated numbers stay bit-identical)
    and its :class:`~repro.monitor.SloOutcome` lands on the report, so
    the campaign table can show service impact next to raw goodput.
    """
    name, seed, batch, config, topology = payload
    fault_model = FaultModel(
        FaultRates(link_transient=(0.0 if name == BASELINE
                                   else DEFAULT_LINK_TRANSIENT_RATE)),
        seed=derive_task_seed(seed, name))
    simulator = FleetSimulator(
        topology, model_config=config, fault_model=fault_model,
        policy=DegradationPolicy(min_capacity_fraction=0.25,
                                 circuit_breaker_failures=3),
        seq_len=64, reference_batch=4)
    scenario = (None if name == BASELINE
                else build_scenario(name, topology))
    return simulator.run(batch=batch, scenario=scenario,
                         monitor=fleet_monitor())


def run(batch: int = 128, seed: int = 2022,
        racks: int = 2, hosts_per_rack: int = 2,
        instances_per_host: int = 2, heterogeneous: bool = False,
        workers: Optional[int] = None) -> ChaosCampaignResult:
    """Run every chaos scenario (plus a clean baseline) on one fleet.

    Args:
        batch: inferences per campaign run.
        seed: root seed; per-scenario fault seeds derive from it.
        racks: fleet racks.
        hosts_per_rack: hosts per rack.
        instances_per_host: instances per host.
        heterogeneous: mix calibrated A100/TPU baselines into the fleet.
        workers: fan scenarios out over N processes; ``None`` reads
            ``REPRO_SWEEP_WORKERS`` (default 1, the serial path).
    """
    topology = build_fleet(racks=racks, hosts_per_rack=hosts_per_rack,
                           instances_per_host=instances_per_host,
                           heterogeneous=heterogeneous)
    config = protein_bert_tiny()
    names = (BASELINE,) + tuple(SCENARIO_BUILDERS)
    executor = SweepExecutor(SweepExecutor.resolve_workers(workers))
    reports = executor.map(
        _scenario_report,
        [(name, seed, batch, config, topology) for name in names],
        label="chaos-campaign")
    return ChaosCampaignResult(
        topology=topology.describe(), batch=batch, seed=seed,
        scenarios=names, reports=tuple(reports))


def format_result(result: ChaosCampaignResult) -> str:
    """Per-scenario goodput/availability/recovery/service-impact table."""
    lines = [f"fleet: {result.topology}, batch {result.batch}, "
             f"seed {result.seed}",
             f"{'scenario':>16s} {'goodput':>10s} {'avail':>7s} "
             f"{'done':>7s} {'shed':>6s} {'reshards':>8s} "
             f"{'recov ms':>9s} {'fails':>5s} {'alerts':>6s} "
             f"{'burn':>7s} {'budget':>7s}"]
    for name, report in zip(result.scenarios, result.reports):
        slo = report.slo
        alerts = f"{slo.alerts:6d}" if slo is not None else f"{'-':>6s}"
        burn = (f"{slo.worst_burn_rate:7.1f}" if slo is not None
                else f"{'-':>7s}")
        budget = (f"{slo.budget_remaining:6.1%}" if slo is not None
                  else f"{'-':>7s}")
        lines.append(
            f"{name:>16s} {report.goodput:10.1f} "
            f"{report.availability:7.4f} {report.completed:7.1f} "
            f"{report.shed:6.1f} {report.reshards:8d} "
            f"{report.recovery_seconds * 1e3:9.3f} "
            f"{report.failures:5d} {alerts} {burn} {budget}")
    return "\n".join(lines)
