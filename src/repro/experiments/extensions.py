"""Extension studies beyond the paper's figures.

Three studies exercising the capabilities the paper claims but does not
evaluate quantitatively:

* **Model-zoo scalability** — the streaming design "prevents unscalable
  memory usage on large models": ProSE throughput across TAPE/ESM-scale
  encoders, with on-accelerator storage constant.
* **Encoder-decoder** — "adding decoder layers for language translation":
  ProSE running a protein seq2seq model via the same three dataflows.
* **Downstream-task generality** — "applicable to arbitrary downstream
  tasks": one shared extractor transferring to the fluorescence and
  stability tasks plus the Section 2.2 binding study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.config import best_perf
from ..dataflow.seq2seq import build_seq2seq_graph
from ..downstream.evaluation import TaskResult, evaluate_all_tasks, format_results
from ..model.config import BertConfig
from ..model.zoo import MODEL_ZOO, get_model_config
from ..profiling.memory import prose_device_bytes
from ..sched.orchestrator import Orchestrator


@dataclass(frozen=True)
class ZooPoint:
    """ProSE throughput on one zoo model."""

    model: str
    parameters: int
    throughput: float
    prose_storage_bytes: int


def model_zoo_scaling(models: Optional[Sequence[str]] = None,
                      batch: int = 32, seq_len: int = 512
                      ) -> List[ZooPoint]:
    """Simulate ProSE across model scales at a fixed operating point."""
    names = models if models is not None else sorted(
        MODEL_ZOO, key=lambda n: MODEL_ZOO[n].parameter_count)
    hardware = best_perf()
    storage = prose_device_bytes(hardware)
    points = []
    for name in names:
        config = get_model_config(name)
        schedule = Orchestrator(hardware).run(config, batch=batch,
                                              seq_len=seq_len)
        points.append(ZooPoint(model=name,
                               parameters=config.parameter_count,
                               throughput=schedule.throughput,
                               prose_storage_bytes=storage))
    return points


@dataclass(frozen=True)
class Seq2SeqPoint:
    """Encoder-only vs encoder-decoder throughput at one shape."""

    src_len: int
    tgt_len: int
    encoder_throughput: float
    seq2seq_throughput: float

    @property
    def decoder_overhead(self) -> float:
        """Throughput ratio encoder-only / encoder-decoder (≥ 1)."""
        return self.encoder_throughput / self.seq2seq_throughput


def seq2seq_study(config: Optional[BertConfig] = None, batch: int = 16,
                  shapes: Sequence[Tuple[int, int]] = ((256, 128),
                                                       (512, 256))
                  ) -> List[Seq2SeqPoint]:
    """ProSE running encoder-decoder inference via the same dataflows."""
    config = config or get_model_config("tape-bert")
    orchestrator = Orchestrator(best_perf())
    points = []
    for src_len, tgt_len in shapes:
        encoder = orchestrator.run(config, batch=batch, seq_len=src_len)
        seq2seq = orchestrator.run(
            config, batch=batch, seq_len=src_len,
            graph_builder=lambda sub: build_seq2seq_graph(
                config, batch=sub, src_len=src_len, tgt_len=tgt_len))
        points.append(Seq2SeqPoint(src_len=src_len, tgt_len=tgt_len,
                                   encoder_throughput=encoder.throughput,
                                   seq2seq_throughput=seq2seq.throughput))
    return points


def run() -> Tuple[List[ZooPoint], List[Seq2SeqPoint],
                   Dict[str, TaskResult]]:
    """Run all three extension studies at laptop scale."""
    zoo = model_zoo_scaling(models=("protein-bert-compact", "tape-bert",
                                    "esm-1b"))
    seq2seq = seq2seq_study()
    tasks = evaluate_all_tasks()
    return zoo, seq2seq, tasks


def format_result(results) -> str:
    zoo, seq2seq, tasks = results
    lines = ["-- model-zoo scalability (BestPerf, 512 tokens) --",
             f"{'model':>22s} {'params':>8s} {'inf/s':>8s} "
             f"{'ProSE storage':>14s}"]
    for point in zoo:
        lines.append(f"{point.model:>22s} "
                     f"{point.parameters / 1e6:7.0f}M "
                     f"{point.throughput:8.1f} "
                     f"{point.prose_storage_bytes / 2 ** 20:11.2f}MiB")
    lines.append("")
    lines.append("-- encoder-decoder on the same dataflows --")
    lines.append(f"{'src':>5s} {'tgt':>5s} {'enc inf/s':>10s} "
                 f"{'s2s inf/s':>10s} {'overhead':>9s}")
    for point in seq2seq:
        lines.append(f"{point.src_len:5d} {point.tgt_len:5d} "
                     f"{point.encoder_throughput:10.1f} "
                     f"{point.seq2seq_throughput:10.1f} "
                     f"{point.decoder_overhead:9.2f}x")
    lines.append("")
    lines.append("-- downstream-task generality --")
    lines.append(format_results(tasks))
    return "\n".join(lines)
