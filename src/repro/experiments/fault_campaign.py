"""Fault-injection campaign: availability and goodput vs fault rate.

The deployment story of Section 3.2 (four ProSE instances serving
drug-discovery campaigns) only holds up if the system tolerates faults.
This experiment sweeps a seeded fault rate across the serving layer —
each rate applied simultaneously to batch failures, stragglers, and
link transients — and reports the availability/goodput curve, then
exercises the multi-instance recovery path by killing one of the four
instances mid-batch and re-accounting the resharded completion.

Everything is deterministic for a given seed, so the emitted curve is a
regression artifact like any paper figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..model.config import BertConfig, protein_bert_tiny
from ..parallel.executor import SweepExecutor
from ..proteins.workloads import Workload, screening_campaign
from ..reliability import (
    DegradationPolicy,
    FaultModel,
    FaultRates,
    ReliabilityReport,
    RetryPolicy,
    derive_task_seed,
)
from ..system.multi import ProSESystem, ReliableSystemReport
from ..system.serving import CampaignSimulator
from ..telemetry import MetricsRegistry

#: Fault rates swept over the serving campaign.
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.2)

#: Backoff scaled to the simulated (milliseconds-long) batch makespans.
DEFAULT_RETRY_POLICY = RetryPolicy(backoff_base_seconds=0.002,
                                   backoff_cap_seconds=0.05)


@dataclass(frozen=True)
class FaultCampaignResult:
    """Availability/goodput curve plus the instance-failure scenario."""

    fault_rates: Tuple[float, ...]
    serving_reports: Tuple[ReliabilityReport, ...]
    failure_scenario: ReliableSystemReport
    seed: int


def _serving_report(payload: Tuple[float, int, BertConfig, Workload,
                                   RetryPolicy],
                    metrics: Optional[MetricsRegistry] = None
                    ) -> ReliabilityReport:
    """One fault-rate point of the sweep (module-level for pickling).

    Each point builds its own :class:`FaultModel` whose seed is derived
    from the *rate* itself, so the result for a point is a pure function
    of what the point is — deterministic, independent of sweep order,
    and bit-identical however the sweep is partitioned over workers.
    """
    rate, seed, config, workload, policy = payload
    fault_model = FaultModel(
        FaultRates(batch_failure=rate, straggler=rate,
                   link_transient=rate / 10.0),
        seed=derive_task_seed(seed, rate))
    simulator = CampaignSimulator(model_config=config, max_batch=8,
                                  fault_model=fault_model,
                                  retry_policy=policy)
    report = simulator.run_on_prose(workload, metrics=metrics)
    return (report.reliability
            or ReliabilityReport(goodput=report.throughput))


def run(fault_rates: Tuple[float, ...] = DEFAULT_FAULT_RATES,
        seed: int = 2022, library_size: int = 96,
        retry_policy: Optional[RetryPolicy] = None,
        workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None) -> FaultCampaignResult:
    """Sweep fault rates over a screening campaign; kill one instance.

    Args:
        fault_rates: per-event probabilities applied to batch failure,
            straggling, and link transients simultaneously.
        seed: root seed for every fault model in the sweep.
        library_size: antibody variants in the screening workload.
        retry_policy: serving retry/backoff knobs.
        workers: fan the rate points out over N processes; ``None`` reads
            ``REPRO_SWEEP_WORKERS`` (default 1, the serial path).
        metrics: optional registry; when given, every rate point runs
            instrumented (serially — the instrumented path does not fan
            out) and its serving counters/histograms merge in under a
            ``rate<rate>/`` prefix.
    """
    config = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                               intermediate_size=512, max_position=2048)
    workload = screening_campaign(library_size=library_size, seed=seed)
    policy = retry_policy or DEFAULT_RETRY_POLICY
    payloads = [(rate, seed, config, workload, policy)
                for rate in fault_rates]
    if metrics is not None:
        serving_reports = []
        for payload in payloads:
            child = MetricsRegistry(f"rate{payload[0]:g}")
            serving_reports.append(_serving_report(payload, metrics=child))
            metrics.merge(child, prefix=f"rate{payload[0]:g}")
    else:
        executor = SweepExecutor(SweepExecutor.resolve_workers(workers))
        serving_reports = executor.map(_serving_report, payloads,
                                       label="fault-campaign")

    # Deterministically kill instance 1 of 4 mid-batch: the recovery
    # path reshards its inferences across the three survivors.
    failure_model = FaultModel(seed=seed, targeted_instance_failures=(1,))
    scenario = ProSESystem(instances=4).simulate_with_faults(
        config, batch=32, seq_len=128, fault_model=failure_model,
        policy=DegradationPolicy())
    return FaultCampaignResult(fault_rates=tuple(fault_rates),
                               serving_reports=tuple(serving_reports),
                               failure_scenario=scenario,
                               seed=seed)


def format_result(result: FaultCampaignResult) -> str:
    """The availability/goodput curve and the failure-scenario account."""
    lines = [f"{'fault rate':>10s} {'avail':>7s} {'goodput':>9s} "
             f"{'retries':>7s} {'dropped':>7s} {'wasted ms':>9s}"]
    for rate, report in zip(result.fault_rates, result.serving_reports):
        lines.append(f"{rate:10.3f} {report.availability:7.4f} "
                     f"{report.goodput:9.1f} {report.retries:7d} "
                     f"{report.dropped:7d} "
                     f"{report.wasted_seconds * 1e3:9.2f}")
    scenario = result.failure_scenario
    reliability = scenario.reliability
    lines.append("")
    lines.append(
        f"instance-failure scenario (1 of {scenario.instances} killed): "
        f"batch {scenario.batch} completed on {scenario.survivors} "
        f"survivors via {len(scenario.recovery)} recovery shards")
    lines.append(
        f"  availability {reliability.availability:.4f}, "
        f"goodput {reliability.goodput:.1f} inf/s, "
        f"retries {reliability.retries}, "
        f"recovery energy {scenario.energy_joules:.2f} J vs "
        f"fault-free {scenario.fault_free_energy_joules:.2f} J "
        f"(+{scenario.energy_joules - scenario.fault_free_energy_joules:.2f} J)")
    return "\n".join(lines)
