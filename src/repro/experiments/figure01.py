"""Figure 1 — BERT-style inference power efficiency vs sequence length.

Inferences/second/Watt for the A100, TPUv2, TPUv3, and ProSE as input
length grows from ~30 (human-language BERT) to 2048 tokens (Protein BERT).
The paper's claims to reproduce: efficiency decreases dramatically with
length on every platform; ProSE holds roughly an order of magnitude over
commodity platforms at short lengths; and past ~300-500 tokens the
commodity platforms fall below 1 inference/second/Watt while ProSE stays
usable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.gpu import a100
from ..baselines.roofline import best_batch_for_length
from ..baselines.tpu import tpu_v2, tpu_v3
from ..core.engine import ProSEEngine
from ..model.config import BertConfig, protein_bert_base

#: Default lengths swept (the paper's x-axis reaches ~2200).
DEFAULT_LENGTHS: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class EfficiencyPoint:
    """One (system, length) efficiency sample."""

    system: str
    seq_len: int
    efficiency: float          # inferences / second / Watt
    throughput: float          # inferences / second


@dataclass(frozen=True)
class Figure1Result:
    """All four efficiency curves."""

    points: Tuple[EfficiencyPoint, ...]

    def curve(self, system: str) -> List[EfficiencyPoint]:
        return [p for p in self.points if p.system == system]

    def efficiency(self, system: str, seq_len: int) -> float:
        for point in self.points:
            if point.system == system and point.seq_len == seq_len:
                return point.efficiency
        raise KeyError((system, seq_len))

    @property
    def systems(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.system not in seen:
                seen.append(point.system)
        return seen


def run(config: Optional[BertConfig] = None,
        lengths: Sequence[int] = DEFAULT_LENGTHS,
        prose_batch: int = 64) -> Figure1Result:
    """Regenerate the Figure 1 series.

    Args:
        config: model configuration.
        lengths: sequence lengths to sweep.
        prose_batch: ProSE simulation batch (paper: 128; smaller is faster
            and changes throughput by <5% once threads saturate).
    """
    config = config or protein_bert_base()
    engine = ProSEEngine(model_config=config)
    points: List[EfficiencyPoint] = []
    for system, device in (("A100", a100()), ("TPUv2", tpu_v2()),
                           ("TPUv3", tpu_v3())):
        for seq_len in lengths:
            batch = best_batch_for_length(seq_len)
            throughput = device.throughput(config, batch, seq_len,
                                           accelerated_only=False)
            points.append(EfficiencyPoint(
                system=system, seq_len=seq_len,
                efficiency=throughput / device.spec.tdp_watts,
                throughput=throughput))
    for seq_len in lengths:
        report = engine.simulate(batch=prose_batch, seq_len=seq_len)
        points.append(EfficiencyPoint(
            system="ProSE", seq_len=seq_len,
            efficiency=report.efficiency,
            throughput=report.throughput))
    return Figure1Result(points=tuple(points))


def format_result(result: Figure1Result) -> str:
    """Render the four curves as an aligned table."""
    lengths = sorted({p.seq_len for p in result.points})
    lines = [f"{'seq':>6s} " + " ".join(f"{s:>10s}" for s in result.systems)]
    for seq_len in lengths:
        cells = " ".join(
            f"{result.efficiency(system, seq_len):10.3f}"
            for system in result.systems)
        lines.append(f"{seq_len:6d} {cells}")
    return "\n".join(lines)
