"""Figure 3 — runtime breakdown of Protein BERT by operation class.

Thin wrapper over :mod:`repro.profiling.breakdown`, kept as a separate
experiment module so every paper artifact has exactly one entry point.
The claims to reproduce: MatMul share decreases as length grows while
element-wise and special-function shares increase, and matrix multiplies
(batched + unbatched) stay within roughly 35-52% of total runtime.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..model.config import BertConfig
from ..profiling.breakdown import (
    FIGURE3_LENGTHS,
    BreakdownRow,
    format_breakdown,
    matmul_share_bounds,
    profile_breakdown,
)


def run(config: Optional[BertConfig] = None,
        lengths: Sequence[int] = FIGURE3_LENGTHS) -> List[BreakdownRow]:
    """Regenerate the Figure 3 stacked shares."""
    return profile_breakdown(config=config, lengths=lengths)


def format_result(rows: Sequence[BreakdownRow]) -> str:
    low, high = matmul_share_bounds(rows)
    return (format_breakdown(rows)
            + f"\nmatmul share range: {low * 100:.1f}%-{high * 100:.1f}%"
            f" (paper: 35%-52%)")
