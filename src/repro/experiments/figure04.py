"""Figure 4 — impact of input length and heterogeneity on runtime.

Compares ProSE's heterogeneous systolic-array mix against the
resource-equivalent homogeneous design (4× 64×64 arrays, 16K PEs) across
sequence lengths.  Claims to reproduce: runtime grows superlinearly with
length on both; the two designs are close at short lengths; and beyond
~300 tokens the homogeneous design's slope is much steeper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.config import best_perf, homogeneous
from ..model.config import BertConfig, protein_bert_base
from ..sched.orchestrator import Orchestrator

DEFAULT_LENGTHS: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class RuntimePoint:
    """Per-inference latency of one design at one sequence length."""

    design: str
    seq_len: int
    seconds_per_inference: float


@dataclass(frozen=True)
class Figure4Result:
    points: Tuple[RuntimePoint, ...]

    def runtime(self, design: str, seq_len: int) -> float:
        for point in self.points:
            if point.design == design and point.seq_len == seq_len:
                return point.seconds_per_inference
        raise KeyError((design, seq_len))

    def ratio(self, seq_len: int) -> float:
        """Homogeneous / heterogeneous runtime at one length."""
        return (self.runtime("Homogeneous", seq_len)
                / self.runtime("ProSE", seq_len))


def run(config: Optional[BertConfig] = None,
        lengths: Sequence[int] = DEFAULT_LENGTHS,
        batch: int = 64) -> Figure4Result:
    """Regenerate the Figure 4 curves."""
    config = config or protein_bert_base()
    points: List[RuntimePoint] = []
    for design, hardware in (("ProSE", best_perf()),
                             ("Homogeneous", homogeneous())):
        orchestrator = Orchestrator(hardware)
        for seq_len in lengths:
            schedule = orchestrator.run(config, batch=batch, seq_len=seq_len)
            points.append(RuntimePoint(
                design=design, seq_len=seq_len,
                seconds_per_inference=schedule.makespan_seconds / batch))
    return Figure4Result(points=tuple(points))


def format_result(result: Figure4Result) -> str:
    lengths = sorted({p.seq_len for p in result.points})
    lines = [f"{'seq':>6s} {'ProSE ms':>10s} {'Homog ms':>10s} {'ratio':>6s}"]
    for seq_len in lengths:
        prose = result.runtime("ProSE", seq_len) * 1e3
        homog = result.runtime("Homogeneous", seq_len) * 1e3
        lines.append(f"{seq_len:6d} {prose:10.3f} {homog:10.3f} "
                     f"{homog / prose:6.2f}")
    return "\n".join(lines)
