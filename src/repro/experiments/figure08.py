"""Figure 8 — multithreaded orchestration and scheduling.

Sweeps the software thread count (the paper illustrates 1/2/4/32 threads)
and reports batch throughput.  Claims to reproduce: throughput rises
steeply with threads as data-dependency bubbles fill in, then flattens —
with contention overhead growing — making ~32 threads the sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig, best_perf
from ..model.config import BertConfig, protein_bert_base
from ..sched.orchestrator import Orchestrator

DEFAULT_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class ThreadPoint:
    """Throughput and contention at one thread count."""

    threads: int
    throughput: float
    makespan_seconds: float
    contention_seconds: float


@dataclass(frozen=True)
class Figure8Result:
    points: Tuple[ThreadPoint, ...]

    @property
    def best(self) -> ThreadPoint:
        return max(self.points, key=lambda p: p.throughput)

    def speedup_over_single_thread(self, threads: int) -> float:
        single = next(p for p in self.points if p.threads == 1)
        target = next(p for p in self.points if p.threads == threads)
        return target.throughput / single.throughput


def run(config: Optional[BertConfig] = None,
        hardware: Optional[HardwareConfig] = None,
        thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
        batch: int = 128, seq_len: int = 512) -> Figure8Result:
    """Regenerate the thread-count sweep."""
    config = config or protein_bert_base()
    orchestrator = Orchestrator(hardware or best_perf())
    points: List[ThreadPoint] = []
    for threads in thread_counts:
        schedule = orchestrator.run(config, batch=batch, seq_len=seq_len,
                                    threads=threads)
        points.append(ThreadPoint(
            threads=threads,
            throughput=schedule.throughput,
            makespan_seconds=schedule.makespan_seconds,
            contention_seconds=schedule.contention_seconds))
    return Figure8Result(points=tuple(points))


def format_result(result: Figure8Result) -> str:
    lines = [f"{'threads':>8s} {'inf/s':>9s} {'makespan ms':>12s} "
             f"{'contention ms':>14s}"]
    for point in result.points:
        lines.append(f"{point.threads:8d} {point.throughput:9.1f} "
                     f"{point.makespan_seconds * 1e3:12.1f} "
                     f"{point.contention_seconds * 1e3:14.2f}")
    lines.append(f"best thread count: {result.best.threads}")
    return "\n".join(lines)
