"""Figures 11 & 12 — MatMul and MulAdd on TPUv2 vs ProSE, step by step.

Regenerates the operation sequences of the paper's microarchitectural
comparison: the TPUv2's global dataflow through the Unified Buffer versus
ProSE's local dataflow through the accumulators.  Claims to reproduce:
the TPU needs eight operations for the MatMul step where ProSE needs
four; the MulAdd costs the TPU two-three trips of its global dataflow
versus ProSE's single chained trip; and ProSE makes zero Unified-Buffer
round trips by construction.
"""

from __future__ import annotations

from typing import Tuple

from ..arch.comparison import (
    StepComparison,
    compare_matmul,
    compare_muladd,
    format_comparison,
)


def run(m: int = 4, k: int = 4, n: int = 4
        ) -> Tuple[StepComparison, StepComparison]:
    """Build both comparisons at the paper's toy 4×4 shape."""
    return compare_matmul(m, k, n), compare_muladd(m, n)


def format_result(result: Tuple[StepComparison, StepComparison]) -> str:
    matmul, muladd = result
    return format_comparison(matmul) + "\n\n" + format_comparison(muladd)
