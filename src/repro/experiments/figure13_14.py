"""Figures 13 & 14 — GELU and Exp lookup-table truncation windows.

Validates the two-level-indexed LUT design: GELU is only tabulated for
bfloat16 exponents in [-4, 3] and Exp in [-6, 5]; outside the windows the
cheap approximations (zero / identity / saturation) apply.  Claims to
reproduce: the tables are exactly 4 KB and 6 KB, and the truncation
policies introduce only small errors over the activation ranges the model
actually produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..arch.lut import SpecialFunctionLut, make_exp_lut, make_gelu_lut
from ..model.activations import exp as exp_reference
from ..model.activations import gelu as gelu_reference


@dataclass(frozen=True)
class LutReport:
    """Accuracy/size report for one special-function LUT."""

    name: str
    table_bytes: int
    exponent_window: Tuple[int, int]
    in_window_max_error: float
    below_window_max_error: float
    above_window_max_error: float


def _window_edges(window: Tuple[int, int]) -> Tuple[float, float]:
    low, high = window
    return 2.0 ** low, 2.0 ** (high + 1)


def _report(name: str, lut: SpecialFunctionLut, reference,
            domain: Tuple[float, float]) -> LutReport:
    low_edge, high_edge = _window_edges(lut.spec.exponent_window)
    xs = np.linspace(domain[0], domain[1], 20001).astype(np.float32)
    magnitude = np.abs(xs)
    in_window = (magnitude >= low_edge) & (magnitude < high_edge)
    below = magnitude < low_edge
    above = ~in_window & ~below
    errors = np.abs(lut.lookup(xs) - reference(xs))

    def max_over(mask: np.ndarray) -> float:
        return float(errors[mask].max()) if mask.any() else 0.0

    return LutReport(name=name, table_bytes=lut.table_bytes,
                     exponent_window=lut.spec.exponent_window,
                     in_window_max_error=max_over(in_window),
                     below_window_max_error=max_over(below),
                     above_window_max_error=max_over(above))


def run() -> Tuple[LutReport, LutReport]:
    """Build both LUTs and report their truncation-window accuracy."""
    gelu_report = _report("GELU", make_gelu_lut(), gelu_reference,
                          domain=(-20.0, 20.0))
    # Softmax inputs are max-subtracted, so Exp sees (-inf, 0]; probe the
    # range that matters plus a positive margin.
    exp_report = _report("Exp", make_exp_lut(), exp_reference,
                         domain=(-30.0, 2.0))
    return gelu_report, exp_report


def format_result(reports: Tuple[LutReport, LutReport]) -> str:
    lines = [f"{'LUT':>5s} {'bytes':>6s} {'window':>10s} "
             f"{'in-window err':>14s} {'below err':>10s} {'above err':>10s}"]
    for report in reports:
        window = f"[{report.exponent_window[0]},{report.exponent_window[1]}]"
        lines.append(
            f"{report.name:>5s} {report.table_bytes:6d} {window:>10s} "
            f"{report.in_window_max_error:14.5f} "
            f"{report.below_window_max_error:10.5f} "
            f"{report.above_window_max_error:10.5f}")
    return "\n".join(lines)
