"""Figure 16 — design-space exploration scatter and Pareto picks.

Evaluates the full Table 3 space (232 configurations at the default two
lane partitions; the paper explored 238) and plots normalized runtime vs
power and vs area.  Claims to reproduce: a broad scatter with a clear
Pareto front, a BestPerf point, and MostPowerEfficient/MostAreaEfficient
Pareto picks that coincide ("MostEfficient").
"""

from __future__ import annotations

from typing import Optional

from ..dse.explorer import DesignSpaceExplorer, DseResult
from ..model.config import BertConfig


def run(config: Optional[BertConfig] = None, batch: int = 32,
        seq_len: int = 512, limit: Optional[int] = None) -> DseResult:
    """Run the Figure 16 sweep.

    Args:
        config: model configuration.
        batch: evaluation batch (paper: 128; 32 preserves the ranking and
            is ~4× faster).
        seq_len: evaluation length (paper: 512).
        limit: cap the number of configurations (fast smoke runs).
    """
    explorer = DesignSpaceExplorer(model_config=config, batch=batch,
                                   seq_len=seq_len)
    return explorer.sweep(limit=limit)


def format_result(result: DseResult) -> str:
    lines = [f"configurations evaluated: {len(result.points)}"]
    for label, point in (("BestPerf", result.best_perf),
                         ("MostPowerEfficient",
                          result.most_power_efficient),
                         ("MostAreaEfficient", result.most_area_efficient)):
        lines.append(
            f"{label:>20s}: {point.config.name:34s} "
            f"runtime(norm)={point.normalized_runtime:.3f} "
            f"power={point.power_watts:.2f}W area={point.area_mm2:.2f}mm2")
    lines.append("MostPowerEfficient == MostAreaEfficient: "
                 f"{result.most_efficient_coincides}")
    return "\n".join(lines)
