"""Figure 17 — PE-count resource sweep (8K-24K PEs).

For each PE budget, a reduced DSE finds the BestPerf and MostEfficient
configurations, and their performance and perf/Watt are normalized to one
A100.  Claims to reproduce: performance grows with PEs; efficiency peaks
around 16K (ProSE) and 20K (ProSE+) where the designs are "most balanced".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.gpu import A100_MEASURED_POWER_WATTS
from ..dse.explorer import DesignSpaceExplorer
from ..model.config import BertConfig
from ..physical.power import system_power_watts

DEFAULT_BUDGETS: Tuple[int, ...] = (8192, 12288, 16384, 20480, 24576)


@dataclass(frozen=True)
class BudgetPoint:
    """Best design points at one PE budget, normalized to the A100."""

    pe_budget: int
    best_perf_speedup: float
    best_perf_efficiency_gain: float
    most_efficient_speedup: float
    most_efficient_efficiency_gain: float


@dataclass(frozen=True)
class Figure17Result:
    points: Tuple[BudgetPoint, ...]

    @property
    def most_balanced_budget(self) -> int:
        """Budget maximizing BestPerf perf × perf/W (the balance point)."""
        return max(self.points,
                   key=lambda p: (p.best_perf_speedup
                                  * p.best_perf_efficiency_gain)).pe_budget


def run(config: Optional[BertConfig] = None,
        budgets: Sequence[int] = DEFAULT_BUDGETS, batch: int = 32,
        seq_len: int = 512, limit: Optional[int] = None) -> Figure17Result:
    """Run the resource sweep at a fixed NVLink 2.0 @ 90% link."""
    explorer = DesignSpaceExplorer(model_config=config, batch=batch,
                                   seq_len=seq_len)
    a100_runtime = explorer.a100_runtime()
    a100_efficiency = 1.0 / (a100_runtime * A100_MEASURED_POWER_WATTS)
    points: List[BudgetPoint] = []
    for budget in budgets:
        result = explorer.sweep(pe_budget=budget, limit=limit)

        def normalized(point) -> Tuple[float, float]:
            speedup = a100_runtime / point.runtime_seconds
            power = system_power_watts(point.config)
            efficiency = 1.0 / (point.runtime_seconds * power)
            return speedup, efficiency / a100_efficiency

        bp_speedup, bp_gain = normalized(result.best_perf)
        me_speedup, me_gain = normalized(result.most_power_efficient)
        points.append(BudgetPoint(
            pe_budget=budget,
            best_perf_speedup=bp_speedup,
            best_perf_efficiency_gain=bp_gain,
            most_efficient_speedup=me_speedup,
            most_efficient_efficiency_gain=me_gain))
    return Figure17Result(points=tuple(points))


def format_result(result: Figure17Result) -> str:
    lines = [f"{'PEs':>7s} {'BestPerf x':>11s} {'BestPerf /W':>12s} "
             f"{'MostEff x':>10s} {'MostEff /W':>11s}"]
    for point in result.points:
        lines.append(
            f"{point.pe_budget:7d} {point.best_perf_speedup:11.2f} "
            f"{point.best_perf_efficiency_gain:12.1f} "
            f"{point.most_efficient_speedup:10.2f} "
            f"{point.most_efficient_efficiency_gain:11.1f}")
    lines.append(f"most balanced budget: {result.most_balanced_budget} PEs")
    return "\n".join(lines)
