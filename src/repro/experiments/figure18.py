"""Figure 18 — ProSE speedup over A100 and TPUv3 vs link bandwidth.

All six Table 4 configurations evaluated at NVLink 2.0 @ 80%/90%,
NVLink 3.0 @ 80%/90%, and infinite bandwidth.  Claims to reproduce:
BestPerf/MostEfficient reach ~3.9-4.7× over the A100 and ~3.1-3.8× over
TPUv3 at NVLink 2.0; the "+" designs need faster links and plateau as
they become compute-bound; the homogeneous designs underperform even at
infinite bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig, table4_configs
from ..arch.interconnect import LinkConfig, infinite_link, nvlink
from ..baselines.roofline import RooflineDevice
from ..core.engine import ProSEEngine
from ..model.config import BertConfig, protein_bert_base

#: The five link operating points of Figures 18/19.
def default_links() -> Tuple[LinkConfig, ...]:
    return (nvlink(2, 0.8), nvlink(2, 0.9), nvlink(3, 0.8), nvlink(3, 0.9),
            infinite_link())


@dataclass(frozen=True)
class SpeedupCell:
    """One bar of Figure 18."""

    config_name: str
    link_name: str
    baseline: str
    speedup: float


@dataclass(frozen=True)
class Figure18Result:
    cells: Tuple[SpeedupCell, ...]

    def speedup(self, config_name: str, link_name: str,
                baseline: str) -> float:
        for cell in self.cells:
            if (cell.config_name == config_name
                    and cell.link_name == link_name
                    and cell.baseline == baseline):
                return cell.speedup
        raise KeyError((config_name, link_name, baseline))

    def max_speedup(self, baseline: str) -> float:
        return max(c.speedup for c in self.cells if c.baseline == baseline)

    def config_names(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.config_name not in seen:
                seen.append(cell.config_name)
        return seen


def run(config: Optional[BertConfig] = None,
        configs: Optional[Sequence[HardwareConfig]] = None,
        links: Optional[Sequence[LinkConfig]] = None,
        batch: int = 64, seq_len: int = 512,
        baselines: Tuple[str, ...] = ("A100", "TPUv3")) -> Figure18Result:
    """Regenerate the Figure 18 speedup grid."""
    config = config or protein_bert_base()
    configs = configs if configs is not None else table4_configs()
    links = links if links is not None else default_links()

    probe = ProSEEngine(model_config=config)
    devices: Dict[str, RooflineDevice] = {
        "A100": probe.a100, "TPUv2": probe.tpu_v2, "TPUv3": probe.tpu_v3}
    baseline_throughput = {
        name: devices[name].throughput(config, batch=batch, seq_len=seq_len,
                                       accelerated_only=True)
        for name in baselines}

    cells: List[SpeedupCell] = []
    for hardware in configs:
        for link in links:
            engine = ProSEEngine(hardware=hardware.with_link(link),
                                 model_config=config)
            report = engine.simulate(batch=batch, seq_len=seq_len)
            for name in baselines:
                cells.append(SpeedupCell(
                    config_name=hardware.name, link_name=link.name,
                    baseline=name,
                    speedup=report.throughput / baseline_throughput[name]))
    return Figure18Result(cells=tuple(cells))


def format_result(result: Figure18Result) -> str:
    baselines = sorted({c.baseline for c in result.cells})
    links = []
    for cell in result.cells:
        if cell.link_name not in links:
            links.append(cell.link_name)
    lines = []
    for baseline in baselines:
        lines.append(f"speedup vs {baseline}:")
        header = f"{'config':>16s} " + " ".join(
            f"{link[:14]:>15s}" for link in links)
        lines.append(header)
        for name in result.config_names():
            cells = " ".join(
                f"{result.speedup(name, link, baseline):15.2f}"
                for link in links)
            lines.append(f"{name:>16s} {cells}")
    return "\n".join(lines)
