"""Figure 19 — ProSE power efficiency over A100 and TPUv3 vs bandwidth.

The same grid as Figure 18 but in normalized perf/Watt.  Claims to
reproduce: one to two orders of magnitude efficiency gain — tens of times
the A100 and a couple hundred times TPUv3 — attributed to eliminating the
large, power-hungry Unified Buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig, table4_configs
from ..arch.interconnect import LinkConfig
from ..baselines.roofline import RooflineDevice
from ..core.engine import ProSEEngine
from ..model.config import BertConfig, protein_bert_base
from .figure18 import default_links


@dataclass(frozen=True)
class EfficiencyCell:
    """One bar of Figure 19 (normalized power-efficiency ratio)."""

    config_name: str
    link_name: str
    baseline: str
    efficiency_gain: float


@dataclass(frozen=True)
class Figure19Result:
    cells: Tuple[EfficiencyCell, ...]

    def gain(self, config_name: str, link_name: str, baseline: str) -> float:
        for cell in self.cells:
            if (cell.config_name == config_name
                    and cell.link_name == link_name
                    and cell.baseline == baseline):
                return cell.efficiency_gain
        raise KeyError((config_name, link_name, baseline))

    def max_gain(self, baseline: str) -> float:
        return max(c.efficiency_gain for c in self.cells
                   if c.baseline == baseline)


def run(config: Optional[BertConfig] = None,
        configs: Optional[Sequence[HardwareConfig]] = None,
        links: Optional[Sequence[LinkConfig]] = None,
        batch: int = 64, seq_len: int = 512,
        baselines: Tuple[str, ...] = ("A100", "TPUv3")) -> Figure19Result:
    """Regenerate the Figure 19 efficiency grid."""
    config = config or protein_bert_base()
    configs = configs if configs is not None else table4_configs()
    links = links if links is not None else default_links()

    probe = ProSEEngine(model_config=config)
    devices: Dict[str, RooflineDevice] = {
        "A100": probe.a100, "TPUv2": probe.tpu_v2, "TPUv3": probe.tpu_v3}
    baseline_efficiency = {}
    for name in baselines:
        device = devices[name]
        throughput = device.throughput(config, batch=batch, seq_len=seq_len,
                                       accelerated_only=True)
        baseline_efficiency[name] = throughput / device.spec.tdp_watts

    cells: List[EfficiencyCell] = []
    for hardware in configs:
        for link in links:
            engine = ProSEEngine(hardware=hardware.with_link(link),
                                 model_config=config)
            report = engine.simulate(batch=batch, seq_len=seq_len)
            for name in baselines:
                cells.append(EfficiencyCell(
                    config_name=hardware.name, link_name=link.name,
                    baseline=name,
                    efficiency_gain=report.efficiency
                    / baseline_efficiency[name]))
    return Figure19Result(cells=tuple(cells))


def format_result(result: Figure19Result) -> str:
    baselines = sorted({c.baseline for c in result.cells})
    config_names: List[str] = []
    links: List[str] = []
    for cell in result.cells:
        if cell.config_name not in config_names:
            config_names.append(cell.config_name)
        if cell.link_name not in links:
            links.append(cell.link_name)
    lines = []
    for baseline in baselines:
        lines.append(f"normalized power efficiency vs {baseline}:")
        lines.append(f"{'config':>16s} " + " ".join(
            f"{link[:14]:>15s}" for link in links))
        for name in config_names:
            cells = " ".join(f"{result.gain(name, link, baseline):15.1f}"
                             for link in links)
            lines.append(f"{name:>16s} {cells}")
    return "\n".join(lines)
