"""Figure 20 — empirical roofline: performance vs link bandwidth.

Sweeps host-link bandwidth from 90 to 630 GB/s for the BestPerf and
BestPerf+ designs.  Claims to reproduce: both designs rise with bandwidth
and then saturate as their heterogeneous components become compute-bound;
BestPerf+ (more compute) saturates later — around 360 GB/s per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig, best_perf, best_perf_plus
from ..arch.interconnect import custom_link
from ..core.engine import ProSEEngine
from ..model.config import BertConfig, protein_bert_base

DEFAULT_BANDWIDTHS_GBPS: Tuple[float, ...] = (
    90, 135, 180, 270, 360, 450, 540, 630)


@dataclass(frozen=True)
class RooflinePoint:
    config_name: str
    bandwidth_gbps: float
    throughput: float
    compute_bound: bool


@dataclass(frozen=True)
class Figure20Result:
    points: Tuple[RooflinePoint, ...]

    def curve(self, config_name: str) -> List[RooflinePoint]:
        return [p for p in self.points if p.config_name == config_name]

    def saturation_bandwidth(self, config_name: str,
                             threshold: float = 0.97) -> float:
        """Lowest bandwidth reaching ``threshold`` of the max throughput."""
        curve = self.curve(config_name)
        peak = max(p.throughput for p in curve)
        for point in sorted(curve, key=lambda p: p.bandwidth_gbps):
            if point.throughput >= threshold * peak:
                return point.bandwidth_gbps
        return curve[-1].bandwidth_gbps


def run(config: Optional[BertConfig] = None,
        configs: Optional[Sequence[HardwareConfig]] = None,
        bandwidths_gbps: Sequence[float] = DEFAULT_BANDWIDTHS_GBPS,
        batch: int = 64, seq_len: int = 512) -> Figure20Result:
    """Regenerate the roofline curves."""
    config = config or protein_bert_base()
    configs = configs if configs is not None else (best_perf(),
                                                   best_perf_plus())
    points: List[RooflinePoint] = []
    for hardware in configs:
        for bandwidth in bandwidths_gbps:
            engine = ProSEEngine(
                hardware=hardware.with_link(custom_link(bandwidth)),
                model_config=config)
            report = engine.simulate(batch=batch, seq_len=seq_len)
            points.append(RooflinePoint(
                config_name=hardware.name,
                bandwidth_gbps=bandwidth,
                throughput=report.throughput,
                compute_bound=report.schedule.compute_bound))
    return Figure20Result(points=tuple(points))


def format_result(result: Figure20Result) -> str:
    names: List[str] = []
    for point in result.points:
        if point.config_name not in names:
            names.append(point.config_name)
    bandwidths = sorted({p.bandwidth_gbps for p in result.points})
    lines = [f"{'GB/s':>6s} " + " ".join(f"{n:>14s}" for n in names)]
    by_key = {(p.config_name, p.bandwidth_gbps): p for p in result.points}
    for bandwidth in bandwidths:
        cells = " ".join(
            f"{by_key[(n, bandwidth)].throughput:14.1f}" for n in names)
        lines.append(f"{bandwidth:6.0f} {cells}")
    for name in names:
        lines.append(f"{name} saturates near "
                     f"{result.saturation_bandwidth(name):.0f} GB/s")
    return "\n".join(lines)
