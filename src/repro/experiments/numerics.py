"""Numerics study — does the bf16 + LUT datapath hurt model accuracy?

The paper asserts its numerics are safe twice: "MACs are executed using
bfloat16 ... accumulated using a 32-bit accumulator ... to prevent
precision loss", and "We have validated that these truncation policies
[the GELU/Exp LUT windows] do not affect the accuracy of the models we
study."  This study validates both end to end:

1. run a Protein BERT encoder through the *functional hardware model*
   (bfloat16 MACs, left-rotation SIMD, LUT special functions, host
   softmax) and measure output fidelity against the float reference;
2. run the downstream-task head on features from both datapaths and
   compare the resulting rank correlations — the metric the paper's
   accuracy claim is actually about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arch.accelerated_model import AcceleratedProteinBert
from ..binding.metrics import spearman
from ..binding.regression import PcaRidgeModel
from ..downstream.tasks import make_task_dataset
from ..model.bert import ProteinBert
from ..model.config import BertConfig
from ..model.weights import pretrained_like_weights
from ..proteins.tokenizer import ProteinTokenizer


@dataclass(frozen=True)
class NumericsResult:
    """Outcome of the end-to-end numerics validation.

    Attributes:
        output_correlation: correlation of accelerated vs reference
            hidden states.
        output_max_error: max |accelerated - reference| over the outputs.
        reference_rank_correlation: downstream test ρ with float features.
        accelerated_rank_correlation: downstream test ρ with bf16/LUT
            features.
    """

    output_correlation: float
    output_max_error: float
    reference_rank_correlation: float
    accelerated_rank_correlation: float

    @property
    def accuracy_preserved(self) -> bool:
        """The paper's claim: the hardware numerics don't change the
        downstream conclusion."""
        return (self.output_correlation > 0.999
                and abs(self.accelerated_rank_correlation
                        - self.reference_rank_correlation) < 0.12)


def run(config: Optional[BertConfig] = None, seed: int = 11,
        num_train: int = 40, num_test: int = 20,
        array_size: int = 16) -> NumericsResult:
    """Run the numerics validation at laptop scale.

    The functional datapath is O(heads x seq²) Python work per sequence,
    so the default uses a compact extractor on the short stability task.
    """
    config = config or BertConfig(hidden_size=64, num_layers=2,
                                  num_heads=4, intermediate_size=128,
                                  max_position=64)
    model = ProteinBert(config,
                        weights=pretrained_like_weights(config, seed=seed))
    accelerated = AcceleratedProteinBert(model, array_size=array_size)
    tokenizer = ProteinTokenizer()
    dataset = make_task_dataset("stability", num_train=num_train,
                                num_test=num_test, seed=seed)

    def features(sequences, functional: bool) -> np.ndarray:
        encoding = tokenizer.encode_batch(list(sequences))
        if functional:
            hidden = accelerated.forward(encoding.ids,
                                         encoding.attention_mask)
        else:
            hidden = model.forward(encoding.ids, encoding.attention_mask)
        mask = encoding.attention_mask[..., None].astype(np.float32)
        return (hidden * mask).sum(axis=1) / np.maximum(
            mask.sum(axis=1), 1.0)

    # 1. raw output fidelity on the test sequences.
    encoding = tokenizer.encode_batch(list(dataset.test_sequences[:8]))
    reference_hidden = model.forward(encoding.ids,
                                     encoding.attention_mask)
    accelerated_hidden = accelerated.forward(encoding.ids,
                                             encoding.attention_mask)
    correlation = float(np.corrcoef(reference_hidden.ravel(),
                                    accelerated_hidden.ravel())[0, 1])
    max_error = float(np.max(np.abs(reference_hidden
                                    - accelerated_hidden)))

    # 2. downstream conclusion through both datapaths.
    def downstream_rho(functional: bool) -> float:
        train = features(dataset.train_sequences, functional)
        test = features(dataset.test_sequences, functional)
        head = PcaRidgeModel(components=4, alpha=1.0).fit(
            train, dataset.train_labels)
        return spearman(head.predict(test), dataset.test_labels)

    return NumericsResult(
        output_correlation=correlation,
        output_max_error=max_error,
        reference_rank_correlation=downstream_rho(functional=False),
        accelerated_rank_correlation=downstream_rho(functional=True))


def format_result(result: NumericsResult) -> str:
    return "\n".join([
        f"hidden-state correlation (bf16/LUT vs float): "
        f"{result.output_correlation:.6f}",
        f"hidden-state max |error|: {result.output_max_error:.4f}",
        f"downstream test rho, float reference:  "
        f"{result.reference_rank_correlation:.4f}",
        f"downstream test rho, hardware datapath: "
        f"{result.accelerated_rank_correlation:.4f}",
        f"accuracy preserved: {result.accuracy_preserved}",
    ])
