"""Run every paper experiment and emit a consolidated text report.

``python -m repro.experiments.runner`` regenerates all tables and figures
at a laptop-friendly scale and prints each as a labelled text block — the
source material for EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from . import (
    ablations,
    alert_timelines,
    binding_study,
    chaos_campaign,
    extensions,
    fault_campaign,
    numerics,
    sensitivity,
    figure01,
    figure03,
    figure04,
    figure08,
    figure11_12,
    figure13_14,
    figure16,
    figure17,
    figure18,
    figure19,
    figure20,
    table02,
    table03,
    table04,
)

#: (experiment id, title, run callable, format callable).
EXPERIMENTS: Tuple[Tuple[str, str, Callable, Callable], ...] = (
    ("Figure 1", "Inference power efficiency vs sequence length",
     figure01.run, figure01.format_result),
    ("Figure 3", "Runtime breakdown by operation class",
     figure03.run, figure03.format_result),
    ("Figure 4", "Heterogeneous vs homogeneous runtime vs length",
     figure04.run, figure04.format_result),
    ("Figure 8", "Thread-count orchestration sweep",
     figure08.run, figure08.format_result),
    ("Figures 11/12", "TPUv2 vs ProSE step-by-step operation traces",
     figure11_12.run, figure11_12.format_result),
    ("Figures 13/14", "GELU/Exp LUT truncation windows",
     figure13_14.run, figure13_14.format_result),
    ("Figure 16", "Design-space exploration scatter",
     figure16.run, figure16.format_result),
    ("Figure 17", "PE-count resource sweep",
     figure17.run, figure17.format_result),
    ("Figure 18", "Speedup vs link bandwidth",
     figure18.run, figure18.format_result),
    ("Figure 19", "Power efficiency vs link bandwidth",
     figure19.run, figure19.format_result),
    ("Figure 20", "Empirical roofline",
     figure20.run, figure20.format_result),
    ("Table 2", "Systolic array physical characteristics",
     table02.run, table02.format_result),
    ("Table 3", "DSE configuration space",
     table03.run, table03.format_result),
    ("Table 4", "Select configurations with power/area",
     table04.run, table04.format_result),
    ("Section 2.2", "Protein binding-affinity study",
     binding_study.run, binding_study.format_result),
    ("Ablations", "Input buffer / chaining / LUT window ablations",
     ablations.run, ablations.format_result),
    ("Extensions", "Model zoo / encoder-decoder / downstream tasks",
     extensions.run, extensions.format_result),
    ("Numerics", "bf16 + LUT datapath end-to-end accuracy validation",
     numerics.run, numerics.format_result),
    ("Sensitivity", "Robustness of conclusions to modeling knobs",
     sensitivity.run, sensitivity.format_result),
    ("Reliability", "Fault-injection availability/goodput campaign",
     fault_campaign.run, fault_campaign.format_result),
    ("Chaos", "Fleet chaos campaign: correlated failures and recovery",
     chaos_campaign.run, chaos_campaign.format_result),
    ("Monitoring", "Alert timelines: fault to detection to page per scenario",
     alert_timelines.run, alert_timelines.format_result),
)


def _execute_experiment(position: int) -> str:
    """Run one experiment by table position and format its report block.

    Module-level (and int-addressed) so the parallel runner can ship it
    to worker processes.
    """
    exp_id, title, run_fn, format_fn = EXPERIMENTS[position]
    started = time.time()
    result = run_fn()
    elapsed = time.time() - started
    return (f"=== {exp_id}: {title} ({elapsed:.1f}s) ===\n"
            f"{format_fn(result)}\n")


def run_all(only: Optional[List[str]] = None, verbose: bool = True,
            workers: Optional[int] = None) -> str:
    """Execute every experiment (or the named subset) and return the report.

    Args:
        only: experiment ids to run (e.g. ``["Figure 18"]``); all if None.
        verbose: print each block as it completes.
        workers: fan the experiments out over N processes; ``None`` reads
            ``REPRO_SWEEP_WORKERS`` (default 1, the serial path).  Blocks
            are always assembled and printed in table order.
    """
    from ..parallel.executor import SweepExecutor

    positions = [index for index, (exp_id, *_rest) in enumerate(EXPERIMENTS)
                 if only is None or exp_id in only]
    resolved = SweepExecutor.resolve_workers(workers)
    if resolved == 1:
        blocks: List[str] = []
        for position in positions:
            block = _execute_experiment(position)
            blocks.append(block)
            if verbose:
                print(block)
        return "\n".join(blocks)
    executor = SweepExecutor(resolved)
    blocks = executor.map(_execute_experiment, positions,
                          label="experiments")
    if verbose:
        for block in blocks:
            print(block)
    return "\n".join(blocks)


if __name__ == "__main__":
    import sys

    run_all(only=sys.argv[1:] or None)
