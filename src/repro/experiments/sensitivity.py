"""Sensitivity analysis: how robust are the reproduced conclusions?

A reproduction built on calibrated models owes the reader a robustness
check: the headline conclusions (ProSE ≳4× one A100, heterogeneous beats
homogeneous, 32-ish threads suffice) should not hinge on any single
modeling knob.  This study perturbs the main free parameters — host
elementwise throughput, dispatch contention, lane partition, batch size —
and reports how the BestPerf speedup over the A100 moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..arch.config import best_perf
from ..arch.interconnect import enumerate_partitions
from ..baselines.gpu import a100
from ..model.config import BertConfig, protein_bert_base
from ..sched.host import HostModel
from ..sched.orchestrator import Orchestrator

import dataclasses


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbed operating point."""

    knob: str
    setting: str
    speedup_vs_a100: float


@dataclass(frozen=True)
class SensitivityResult:
    points: Tuple[SensitivityPoint, ...]

    def range_for(self, knob: str) -> Tuple[float, float]:
        values = [p.speedup_vs_a100 for p in self.points
                  if p.knob == knob]
        return min(values), max(values)

    @property
    def knobs(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.knob not in seen:
                seen.append(point.knob)
        return seen

    @property
    def global_range(self) -> Tuple[float, float]:
        values = [p.speedup_vs_a100 for p in self.points]
        return min(values), max(values)


def run(config: Optional[BertConfig] = None, batch: int = 64,
        seq_len: int = 512) -> SensitivityResult:
    """Perturb each modeling knob one at a time around BestPerf."""
    config = config or protein_bert_base()
    baseline_throughput = a100().throughput(config, batch=batch,
                                            seq_len=seq_len,
                                            accelerated_only=True)
    points: List[SensitivityPoint] = []

    def speedup(orchestrator: Orchestrator) -> float:
        schedule = orchestrator.run(config, batch=batch, seq_len=seq_len)
        return schedule.throughput / baseline_throughput

    # Host elementwise throughput: half / nominal / double.
    for factor in (0.5, 1.0, 2.0):
        host = HostModel()
        host = HostModel(slots=host.slots,
                         elementwise_throughput=host.elementwise_throughput
                         * factor,
                         flops_throughput=host.flops_throughput * factor)
        points.append(SensitivityPoint(
            knob="host throughput", setting=f"x{factor}",
            speedup_vs_a100=speedup(Orchestrator(best_perf(),
                                                 host=host))))

    # Dispatch contention coefficient: none / nominal / triple.
    for coefficient in (0.0, 0.06, 0.18):
        points.append(SensitivityPoint(
            knob="contention", setting=f"c={coefficient}",
            speedup_vs_a100=speedup(Orchestrator(
                best_perf(), contention_coefficient=coefficient))))

    # Static lane partition: every feasible split of six lanes.
    for partition in enumerate_partitions(6):
        lanes = tuple(count for _, count in partition.lanes_by_type)
        hardware = dataclasses.replace(best_perf(), partition=partition)
        points.append(SensitivityPoint(
            knob="lane partition", setting=f"M/G/E={lanes}",
            speedup_vs_a100=speedup(Orchestrator(hardware))))

    # Batch size (thread occupancy): 32 to 256.
    for batch_size in (32, 64, 128, 256):
        schedule = Orchestrator(best_perf()).run(config, batch=batch_size,
                                                 seq_len=seq_len)
        reference = a100().throughput(config, batch=batch_size,
                                      seq_len=seq_len,
                                      accelerated_only=True)
        points.append(SensitivityPoint(
            knob="batch size", setting=str(batch_size),
            speedup_vs_a100=schedule.throughput / reference))

    return SensitivityResult(points=tuple(points))


def format_result(result: SensitivityResult) -> str:
    lines = [f"{'knob':>16s} {'setting':>14s} {'speedup':>8s}"]
    for point in result.points:
        lines.append(f"{point.knob:>16s} {point.setting:>14s} "
                     f"{point.speedup_vs_a100:8.2f}")
    low, high = result.global_range
    lines.append(f"speedup range across all perturbations: "
                 f"{low:.2f}x - {high:.2f}x")
    return "\n".join(lines)
