"""Table 2 — physical design characteristics of ProSE systolic arrays.

Regenerates the synthesized frequency/power/area table (with and without
input buffers) and the %-of-A100 columns, from the anchored parametric
physical model.
"""

from __future__ import annotations

from typing import Tuple

from ..physical.synthesis import ArrayCharacteristics, table2


def run() -> Tuple[ArrayCharacteristics, ...]:
    """All Table 2 rows."""
    return table2()


def format_result(rows: Tuple[ArrayCharacteristics, ...]) -> str:
    lines = [f"{'size':>5s} {'GELU':>5s} {'Exp':>4s} {'MHz':>8s} "
             f"{'mW':>8s} {'+InBuf mW':>10s} {'%A100 P':>8s} "
             f"{'mm2':>7s} {'+InBuf mm2':>11s} {'%A100 A':>8s}"]
    for row in rows:
        lines.append(
            f"{row.size:3d}x{row.size:<2d} {'yes' if row.gelu else 'no':>4s} "
            f"{'yes' if row.exp else 'no':>4s} {row.frequency_mhz:8.1f} "
            f"{row.power_mw:8.1f} {row.inbuf_power_mw:10.1f} "
            f"{row.percent_a100_power:7.2f}% {row.area_mm2:7.3f} "
            f"{row.inbuf_area_mm2:11.3f} {row.percent_a100_area:7.2f}%")
    return "\n".join(lines)
