"""Table 3 — the hardware configuration space of the DSE.

Regenerates the space definition and its size: array types, sizes, count
ranges, and the number of valid configurations at the 16K-PE budget (the
paper evaluates 238; our enumeration with the default two lane partitions
yields 232).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..dse.space import (
    DEFAULT_PE_BUDGET,
    GE_MAX_COUNTS,
    GE_SIZES,
    M_MAX_COUNT,
    M_SIZE,
    enumerate_mixes,
    space_size,
)


@dataclass(frozen=True)
class Table3Result:
    m_size: int
    m_max_count: int
    ge_sizes: Tuple[int, ...]
    ge_max_counts: Tuple[Tuple[int, int], ...]
    pe_budget: int
    num_mixes: int
    num_configs: int


def run(pe_budget: int = DEFAULT_PE_BUDGET) -> Table3Result:
    return Table3Result(
        m_size=M_SIZE,
        m_max_count=M_MAX_COUNT,
        ge_sizes=GE_SIZES,
        ge_max_counts=tuple(sorted(GE_MAX_COUNTS.items())),
        pe_budget=pe_budget,
        num_mixes=len(enumerate_mixes(pe_budget)),
        num_configs=space_size(pe_budget))


def format_result(result: Table3Result) -> str:
    counts = ", ".join(f"{size}x{size}: 1..{cap}"
                       for size, cap in result.ge_max_counts)
    return "\n".join([
        f"M-Type: {result.m_size}x{result.m_size}, "
        f"counts 1..{result.m_max_count}",
        f"G/E-Type sizes and counts: {counts}",
        f"PE budget: {result.pe_budget}",
        f"valid hardware mixes: {result.num_mixes}",
        f"configurations with lane sweeps: {result.num_configs} "
        f"(paper: 238)",
    ])
