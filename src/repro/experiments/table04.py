"""Table 4 — the six select ProSE configurations with power and area.

Regenerates the configuration rows (mixes, power, area) from the physical
model, alongside the paper's published values for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..arch.config import table4_configs
from ..physical.power import power_report

#: The paper's published (power mW, area mm²) per configuration.
PAPER_VALUES: Dict[str, Tuple[float, float]] = {
    "BestPerf": (12994, 12.75),
    "MostEfficient": (12306, 12.49),
    "Homogeneous": (10652, 11.93),
    "BestPerf+": (16918, 48.50),
    "MostEfficient+": (16918, 48.50),
    "Homogeneous+": (13315, 14.92),
}


@dataclass(frozen=True)
class Table4Row:
    name: str
    arrays: str
    total_pes: int
    power_mw: float
    area_mm2: float
    paper_power_mw: float
    paper_area_mm2: float


def run() -> Tuple[Table4Row, ...]:
    rows = []
    for config in table4_configs():
        report = power_report(config)
        paper_power, paper_area = PAPER_VALUES[config.name]
        rows.append(Table4Row(
            name=config.name,
            arrays=", ".join(g.label for g in config.groups),
            total_pes=config.total_pes,
            power_mw=report.accelerator_power_w * 1000.0,
            area_mm2=report.area_mm2,
            paper_power_mw=paper_power,
            paper_area_mm2=paper_area))
    return tuple(rows)


def format_result(rows: Tuple[Table4Row, ...]) -> str:
    lines = [f"{'config':>16s} {'PEs':>6s} {'power mW':>9s} "
             f"{'paper mW':>9s} {'area mm2':>9s} {'paper mm2':>10s}"]
    for row in rows:
        lines.append(
            f"{row.name:>16s} {row.total_pes:6d} {row.power_mw:9.0f} "
            f"{row.paper_power_mw:9.0f} {row.area_mm2:9.2f} "
            f"{row.paper_area_mm2:10.2f}")
    return "\n".join(lines)
