"""Fleet-scale simulation: topology, health, scheduling, chaos.

Generalizes the single-host multi-instance system of
:mod:`repro.system` to racks of heterogeneous hosts:

* :mod:`~repro.fleet.topology` — racks/hosts/slots, backend mix (ProSE
  configurations plus the calibrated A100/TPU baselines as schedulable
  capacity), and the three-tier fabric cost model;
* :mod:`~repro.fleet.health` — per-instance heartbeat state machines,
  detection latency, circuit breakers, and the capacity factors the
  scheduler consumes;
* :mod:`~repro.fleet.scheduler` — degradation- and topology-aware
  sharding with brownout load-shedding;
* :mod:`~repro.fleet.scenarios` — scripted correlated-failure
  scenarios (rack power loss, link flap storms, slow nodes, rolling
  restarts);
* :mod:`~repro.fleet.simulator` — the deterministic event loop that
  runs a workload under a chaos script and reports goodput, recovery
  time, and re-shard counts, with the full timeline exported as
  Perfetto spans.
"""

from .health import (
    HealthMonitor,
    HealthState,
    HealthTransition,
    HeartbeatConfig,
)
from .scenarios import (
    SCENARIO_BUILDERS,
    ChaosEvent,
    ChaosScenario,
    build_scenario,
    link_flap_storm,
    rack_power_loss,
    resolve_target,
    rolling_restart,
    slow_node,
)
from .scheduler import DegradationAwareScheduler, ShardAssignment, SharedPlan
from .simulator import FleetReport, FleetSimulator, InstanceOutcome
from .topology import (
    BackendSpec,
    FabricModel,
    FleetTopology,
    Instance,
    LinkTier,
    build_fleet,
)

__all__ = [
    "BackendSpec",
    "ChaosEvent",
    "ChaosScenario",
    "DegradationAwareScheduler",
    "FabricModel",
    "FleetReport",
    "FleetSimulator",
    "FleetTopology",
    "HealthMonitor",
    "HealthState",
    "HealthTransition",
    "HeartbeatConfig",
    "Instance",
    "InstanceOutcome",
    "LinkTier",
    "SCENARIO_BUILDERS",
    "ShardAssignment",
    "SharedPlan",
    "build_fleet",
    "build_scenario",
    "link_flap_storm",
    "rack_power_loss",
    "resolve_target",
    "rolling_restart",
    "slow_node",
]
