"""Per-instance heartbeat state machines and the fleet health monitor.

Every instance carries a four-state machine:

    healthy -> degraded -> healthy        (slow node, link flap storm)
    healthy/degraded -> dead              (power loss, hard failure)
    dead -> recovering -> healthy         (restart + warm-up)

Transitions are *observed* through heartbeats: an instance that dies at
``t`` is only known dead at ``t + interval * miss_threshold`` — the
detection latency every recovery timeline pays before a single lost
inference can be re-sharded.  The monitor is the single capacity
authority for the scheduler: :meth:`HealthMonitor.capacity_factor`
folds the state machine, any scripted degradation factor, a link-flap
multiplier, and the recovery warm-up discount into one number in
``[0, 1]``.

The monitor also runs the per-instance circuit breaker: an instance
that hard-fails more than ``DegradationPolicy.circuit_breaker_failures``
times is excluded from scheduling even after it reports healthy — the
classic flapping-node quarantine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry import Tracer


class HealthState(enum.Enum):
    """Heartbeat-observed condition of one fleet instance."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"
    RECOVERING = "recovering"


#: Transitions the state machine accepts; anything else is a bug in the
#: caller (e.g. recovering an instance that never died).
_ALLOWED: Dict[HealthState, Tuple[HealthState, ...]] = {
    HealthState.HEALTHY: (HealthState.DEGRADED, HealthState.DEAD),
    HealthState.DEGRADED: (HealthState.HEALTHY, HealthState.DEGRADED,
                           HealthState.DEAD),
    HealthState.DEAD: (HealthState.RECOVERING,),
    HealthState.RECOVERING: (HealthState.HEALTHY, HealthState.DEAD),
}


@dataclass(frozen=True)
class HeartbeatConfig:
    """Heartbeat cadence and capacity discounts, in nominal fractions.

    Times are fractions of the *nominal fleet makespan* so one config
    scales from a millisecond tiny-model smoke run to a full
    Protein-BERT-base campaign without retuning.

    Attributes:
        interval_fraction: heartbeat period as a fraction of the
            nominal makespan.
        miss_threshold: consecutive missed heartbeats before an
            instance is declared dead.
        warmup_fraction: time a recovering instance spends warming up
            (cache refill, model reload) before it is healthy again.
        recovering_capacity: capacity factor during warm-up.
        degraded_capacity: default factor for a degraded instance when
            the degradation event names no explicit slowdown.
    """

    interval_fraction: float = 0.02
    miss_threshold: int = 3
    warmup_fraction: float = 0.05
    recovering_capacity: float = 0.5
    degraded_capacity: float = 0.5

    def __post_init__(self) -> None:
        if self.interval_fraction < 0 or self.warmup_fraction < 0:
            raise ValueError("heartbeat fractions must be non-negative")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        for name in ("recovering_capacity", "degraded_capacity"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    def detection_seconds(self, nominal_makespan: float) -> float:
        """Death-to-detection latency: the missed heartbeat window."""
        return (self.interval_fraction * nominal_makespan
                * self.miss_threshold)

    def warmup_seconds(self, nominal_makespan: float) -> float:
        return self.warmup_fraction * nominal_makespan


@dataclass(frozen=True)
class HealthTransition:
    """One observed state change, for timelines and regression tests."""

    at_seconds: float
    instance_id: str
    from_state: HealthState
    to_state: HealthState
    reason: str = ""


@dataclass
class _InstanceHealth:
    """Mutable per-instance record behind the monitor's public API."""

    state: HealthState = HealthState.HEALTHY
    since: float = 0.0
    degraded_factor: float = 1.0
    link_factor: float = 1.0
    hard_failures: int = 0


class HealthMonitor:
    """Tracks every instance's state machine and capacity factor.

    Args:
        instance_ids: all instances, in scheduling order.
        heartbeat: cadence/discount knobs.
        circuit_breaker_failures: hard failures after which the breaker
            opens and the instance is quarantined (0 disables).
        tracer: optional tracer; every transition becomes an instant
            event on the instance's track.
        span_target: maps an instance id to its (pid, tid) track pair.
    """

    def __init__(self, instance_ids: Sequence[str],
                 heartbeat: Optional[HeartbeatConfig] = None,
                 circuit_breaker_failures: int = 0,
                 tracer: Optional[Tracer] = None,
                 span_target: Optional[Callable[[str],
                                               Tuple[str, str]]] = None
                 ) -> None:
        self.heartbeat = heartbeat or HeartbeatConfig()
        self.circuit_breaker_failures = circuit_breaker_failures
        self.transitions: List[HealthTransition] = []
        self._tracer = tracer
        self._span_target = span_target or (lambda iid: (iid, "health"))
        self._records: Dict[str, _InstanceHealth] = {
            instance_id: _InstanceHealth()
            for instance_id in instance_ids}
        if len(self._records) != len(instance_ids):
            raise ValueError("duplicate instance ids")

    # -- queries ---------------------------------------------------------

    def state(self, instance_id: str) -> HealthState:
        return self._records[instance_id].state

    def breaker_open(self, instance_id: str) -> bool:
        """True when the circuit breaker has quarantined the instance."""
        if self.circuit_breaker_failures <= 0:
            return False
        return (self._records[instance_id].hard_failures
                >= self.circuit_breaker_failures)

    def open_breakers(self) -> Tuple[str, ...]:
        return tuple(instance_id for instance_id in self._records
                     if self.breaker_open(instance_id))

    def capacity_factor(self, instance_id: str) -> float:
        """Effective capacity multiplier in [0, 1] for the scheduler."""
        record = self._records[instance_id]
        if record.state is HealthState.DEAD or self.breaker_open(
                instance_id):
            return 0.0
        if record.state is HealthState.RECOVERING:
            base = self.heartbeat.recovering_capacity
        elif record.state is HealthState.DEGRADED:
            base = record.degraded_factor
        else:
            base = 1.0
        return base * record.link_factor

    def schedulable(self, instance_id: str) -> bool:
        return self.capacity_factor(instance_id) > 0.0

    def alive_count(self) -> int:
        """Instances the scheduler may still place work on."""
        return sum(1 for instance_id in self._records
                   if self.schedulable(instance_id))

    # -- transitions -----------------------------------------------------

    def transition(self, instance_id: str, to_state: HealthState,
                   at_seconds: float, reason: str = "",
                   degraded_factor: Optional[float] = None) -> None:
        record = self._records[instance_id]
        if to_state not in _ALLOWED[record.state]:
            raise ValueError(
                f"illegal health transition {record.state.value} -> "
                f"{to_state.value} for {instance_id} ({reason or 'n/a'})")
        transition = HealthTransition(
            at_seconds=at_seconds, instance_id=instance_id,
            from_state=record.state, to_state=to_state, reason=reason)
        self.transitions.append(transition)
        if to_state is HealthState.DEAD:
            record.hard_failures += 1
        if to_state is HealthState.DEGRADED:
            record.degraded_factor = (
                degraded_factor if degraded_factor is not None
                else self.heartbeat.degraded_capacity)
        elif to_state is HealthState.HEALTHY:
            record.degraded_factor = 1.0
        record.state = to_state
        record.since = at_seconds
        if self._tracer is not None:
            pid, tid = self._span_target(instance_id)
            self._tracer.instant(
                f"health:{to_state.value}", at_seconds, pid=pid, tid=tid,
                category="health", from_state=transition.from_state.value,
                reason=reason)

    def set_link_factor(self, instance_id: str, factor: float) -> None:
        """Apply (or clear, with 1.0) a link-flap throughput multiplier."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"link factor must be in (0, 1], got {factor}")
        self._records[instance_id].link_factor = factor

    def transitions_of(self, instance_id: str) -> Tuple[HealthTransition,
                                                        ...]:
        return tuple(t for t in self.transitions
                     if t.instance_id == instance_id)
