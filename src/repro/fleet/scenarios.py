"""Scripted correlated-failure scenarios for the chaos harness.

Single-instance fault injection (PR 2's :class:`FaultModel`) exercises
*independent* failures; the outages that actually take fleets down are
correlated — every instance in a rack dies at the same instant, a
switch uplink flaps for a window, one slow host silently stretches the
whole campaign.  A :class:`ChaosScenario` is a deterministic script of
such events, with times expressed as fractions of the nominal fleet
makespan so one script scales across model sizes and fleet shapes.

Scenario builders take the topology (so a script can say "the last host
of every rack") and return frozen scripts; the registry maps the CLI
names to builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .topology import FleetTopology, Instance

#: Event actions understood by the fleet simulator.
FAIL = "fail"
RECOVER = "recover"
DEGRADE = "degrade"
UNDEGRADE = "undegrade"
LINK_FLAP = "link_flap"

ACTIONS = (FAIL, RECOVER, DEGRADE, UNDEGRADE, LINK_FLAP)


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted event.

    Attributes:
        at_fraction: event time as a fraction of the nominal fleet
            makespan (may exceed 1.0 — degraded runs stretch).
        action: one of :data:`ACTIONS`.
        target: ``"rack:R"``, ``"host:R/H"``, or ``"instance:ID"``.
        factor: capacity multiplier for ``degrade``/``link_flap``.
        duration_fraction: window length for ``link_flap``.
    """

    at_fraction: float
    action: str
    target: str
    factor: float = 0.5
    duration_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.at_fraction < 0:
            raise ValueError("at_fraction must be non-negative")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown chaos action '{self.action}'; "
                             f"choose from {ACTIONS}")
        if self.action in (DEGRADE, LINK_FLAP) and not 0 < self.factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        if self.action == LINK_FLAP and self.duration_fraction <= 0:
            raise ValueError("link_flap needs a positive duration")


@dataclass(frozen=True)
class ChaosScenario:
    """A named, ordered script of correlated failure events."""

    name: str
    description: str
    events: Tuple[ChaosEvent, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.events, key=lambda event: event.at_fraction))
        object.__setattr__(self, "events", ordered)


def resolve_target(topology: FleetTopology,
                   target: str) -> Tuple[Instance, ...]:
    """Expand a target string into the instances it names."""
    kind, _, rest = target.partition(":")
    if kind == "rack":
        instances = topology.instances_of_rack(int(rest))
    elif kind == "host":
        rack, _, host = rest.partition("/")
        instances = topology.instances_of_host(int(rack), int(host))
    elif kind == "instance":
        instances = (topology.by_id(rest),)
    else:
        raise ValueError(f"unknown chaos target '{target}'")
    if not instances:
        raise ValueError(f"chaos target '{target}' matches no instance")
    return instances


# -- scripted scenarios --------------------------------------------------

def rack_power_loss(topology: FleetTopology) -> ChaosScenario:
    """A whole rack loses power mid-campaign and never comes back.

    The canonical correlated failure: every instance of the last rack
    (never the coordinator's) dies at the same instant, and the
    scheduler must re-shard the lost work onto the surviving racks.
    """
    if topology.racks < 2:
        raise ValueError("rack_power_loss needs at least two racks")
    victim = max(instance.rack for instance in topology.instances)
    return ChaosScenario(
        name="rack_power_loss",
        description=f"rack {victim} loses power at 35% of nominal",
        events=(ChaosEvent(at_fraction=0.35, action=FAIL,
                           target=f"rack:{victim}"),))


def link_flap_storm(topology: FleetTopology) -> ChaosScenario:
    """Overlapping uplink flap windows roll across every host.

    No instance dies; each host's effective bandwidth collapses for a
    window while its uplink renegotiates, so the whole fleet limps.
    """
    events: List[ChaosEvent] = []
    for index, host_id in enumerate(topology.host_ids()):
        rack, _, host = host_id[1:].partition("h")
        events.append(ChaosEvent(
            at_fraction=0.15 + 0.1 * index, action=LINK_FLAP,
            target=f"host:{rack}/{host}", factor=0.35,
            duration_fraction=0.2))
    return ChaosScenario(
        name="link_flap_storm",
        description="rolling uplink flap windows (65% loss) on every host",
        events=tuple(events))


def slow_node(topology: FleetTopology) -> ChaosScenario:
    """One instance silently degrades to quarter speed and stays there.

    The straggler that poisons fleets: nothing fails, the heartbeat
    still answers, but every batch sharded onto the node finishes late
    unless the scheduler discounts its capacity.
    """
    victim = topology.instances[-1]
    return ChaosScenario(
        name="slow_node",
        description=f"{victim.instance_id} degrades to 25% at 15% of "
                    f"nominal",
        events=(ChaosEvent(at_fraction=0.15, action=DEGRADE,
                           target=f"instance:{victim.instance_id}",
                           factor=0.25),))


def rolling_restart(topology: FleetTopology) -> ChaosScenario:
    """Hosts are restarted one after another (a rolling deploy).

    Each host dies for a short window, then recovers and warms back up;
    the scheduler keeps draining work around the hole as it moves.
    """
    events: List[ChaosEvent] = []
    for index, host_id in enumerate(topology.host_ids()):
        rack, _, host = host_id[1:].partition("h")
        start = 0.2 + 0.18 * index
        events.append(ChaosEvent(at_fraction=start, action=FAIL,
                                 target=f"host:{rack}/{host}"))
        events.append(ChaosEvent(at_fraction=start + 0.12, action=RECOVER,
                                 target=f"host:{rack}/{host}"))
    return ChaosScenario(
        name="rolling_restart",
        description="hosts restarted in sequence (12% downtime each)",
        events=tuple(events))


#: CLI/experiment registry: name -> builder(topology).
SCENARIO_BUILDERS: Dict[str, Callable[[FleetTopology], ChaosScenario]] = {
    "rack_power_loss": rack_power_loss,
    "link_flap_storm": link_flap_storm,
    "slow_node": slow_node,
    "rolling_restart": rolling_restart,
}


def build_scenario(name: str, topology: FleetTopology) -> ChaosScenario:
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        known = ", ".join(SCENARIO_BUILDERS)
        raise KeyError(f"unknown chaos scenario '{name}'; choose from: "
                       f"{known}")
    return builder(topology)
