"""Topology- and degradation-aware sharding for the fleet simulator.

The scheduler answers one question, repeatedly: *given what the health
monitor believes right now, where do these inferences go?*  Its weight
for an instance folds three signals together:

* **backend speed** — the calibrated nominal rate of the instance's
  backend (a ProSE configuration, or one of the A100/TPU baselines as
  slower, hotter schedulable capacity);
* **health** — the monitor's capacity factor (degraded and recovering
  instances are discounted, dead and circuit-broken ones excluded);
* **topology** — the fabric cost of getting a shard there.  Per
  inference, an instance effectively delivers
  ``1 / (1/rate + dispatch_seconds_per_inference)``; a fast instance
  across the inter-rack fabric can lose to a slower one on the
  coordinator's own NVLink.

Shards are integer-allocated by the largest-remainder method with
index-order tie-breaks, so a plan is a pure deterministic function of
(work, health snapshot) — the property every determinism test and the
``workers=1`` vs ``workers=N`` campaign parity rest on.

When schedulable capacity falls below the
:class:`~repro.reliability.DegradationPolicy` brownout floor, the plan
load-sheds a fraction of the work instead of queueing everything onto
the remnant — goodput degrades, latency for admitted work does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..reliability.policy import DegradationPolicy
from .health import HealthMonitor
from .topology import FabricModel, FleetTopology


@dataclass(frozen=True)
class ShardAssignment:
    """One instance's slice of a plan."""

    instance_id: str
    amount: float
    dispatch_seconds: float
    effective_rate: float


@dataclass(frozen=True)
class SharedPlan:
    """The scheduler's answer: assignments plus shed accounting.

    Attributes:
        assignments: per-instance slices, topology order, zero-amount
            entries dropped.
        shed: work dropped by the brownout load-shedder.
        capacity_fraction: schedulable capacity over nominal capacity
            at planning time.
        brownout: True when the plan was made below the capacity floor.
    """

    assignments: Tuple[ShardAssignment, ...]
    shed: float = 0.0
    capacity_fraction: float = 1.0
    brownout: bool = False

    @property
    def total(self) -> float:
        return sum(assignment.amount for assignment in self.assignments)


class DegradationAwareScheduler:
    """Plans shard placement against the live health snapshot.

    Args:
        topology: the fleet shape.
        rates: nominal inferences/second per instance id (backend
            speed at full health).
        fabric: fabric tier bandwidths.
        policy: brownout floor / shed fraction.
        payload_bytes: fabric payload per inference (tokens in plus
            embedding out).
    """

    def __init__(self, topology: FleetTopology, rates: Dict[str, float],
                 fabric: FabricModel, policy: DegradationPolicy,
                 payload_bytes: float) -> None:
        missing = [instance.instance_id for instance in topology.instances
                   if instance.instance_id not in rates]
        if missing:
            raise ValueError(f"no nominal rate for instances: {missing}")
        self.topology = topology
        self.rates = dict(rates)
        self.fabric = fabric
        self.policy = policy
        self.payload_bytes = payload_bytes
        #: Fabric seconds per *inference* to each instance (payload
        #: streamed at the tier bandwidth; the fixed dispatch overhead
        #: is charged once per assignment, not per inference).
        self._per_inference_seconds = {
            instance.instance_id:
                payload_bytes / fabric.bandwidth(topology.tier_of(instance))
            for instance in topology.instances}
        #: Full-health end-to-end capacity, the brownout reference.
        self.nominal_capacity = sum(
            self._effective_rate(instance.instance_id, 1.0)
            for instance in topology.instances)

    def _effective_rate(self, instance_id: str, factor: float) -> float:
        """End-to-end inferences/second including fabric streaming."""
        rate = self.rates[instance_id] * factor
        if rate <= 0.0:
            return 0.0
        return 1.0 / (1.0 / rate + self._per_inference_seconds[instance_id])

    def dispatch_seconds(self, instance_id: str, amount: float) -> float:
        """Fabric time to ship ``amount`` inferences to an instance."""
        instance = self.topology.by_id(instance_id)
        return self.fabric.transfer_seconds(
            amount * self.payload_bytes, self.topology.tier_of(instance))

    def capacity_fraction(self, monitor: HealthMonitor) -> float:
        """Schedulable capacity right now, as a fraction of nominal."""
        live = sum(
            self._effective_rate(instance.instance_id,
                                 monitor.capacity_factor(
                                     instance.instance_id))
            for instance in self.topology.instances)
        if self.nominal_capacity <= 0.0:
            return 0.0
        return live / self.nominal_capacity

    def plan(self, work: float, monitor: HealthMonitor,
             exclude: Sequence[str] = (),
             integral: bool = True) -> Optional[SharedPlan]:
        """Place ``work`` inferences on the schedulable instances.

        Args:
            work: inferences to place (fractional amounts appear when
                re-sharding partially completed shards).
            monitor: the live health snapshot.
            exclude: instance ids to skip regardless of health (e.g.
                the instances whose loss triggered this re-shard).
            integral: round amounts to whole inferences by the largest
                remainder (initial plans); False keeps exact fractional
                shares (re-shards of fluid remainders).

        Returns:
            The plan, or ``None`` when no instance is schedulable (the
            caller decides between backlog and outage).
        """
        if work <= 0:
            return SharedPlan(assignments=(), capacity_fraction=(
                self.capacity_fraction(monitor)))
        excluded = set(exclude)
        weights = []
        for instance in self.topology.instances:
            instance_id = instance.instance_id
            if instance_id in excluded:
                continue
            factor = monitor.capacity_factor(instance_id)
            if factor <= 0.0:
                continue
            weights.append((instance_id,
                            self._effective_rate(instance_id, factor)))
        if not weights:
            return None

        capacity_fraction = self.capacity_fraction(monitor)
        shed = 0.0
        brownout = (self.policy.min_capacity_fraction > 0.0
                    and capacity_fraction
                    < self.policy.min_capacity_fraction)
        if brownout:
            shed = work * self.policy.shed_fraction
            work = work - shed

        total_weight = sum(weight for _, weight in weights)
        raw = [(instance_id, work * weight / total_weight)
               for instance_id, weight in weights]
        if integral:
            floors = [(instance_id, float(int(amount)))
                      for instance_id, amount in raw]
            leftover = int(round(work - sum(a for _, a in floors)))
            remainders = sorted(
                range(len(raw)),
                key=lambda i: (-(raw[i][1] - floors[i][1]), i))
            amounts = [amount for _, amount in floors]
            for i in remainders[:leftover]:
                amounts[i] += 1.0
            raw = [(instance_id, amounts[i])
                   for i, (instance_id, _) in enumerate(raw)]
        assignments = tuple(
            ShardAssignment(
                instance_id=instance_id, amount=amount,
                dispatch_seconds=self.dispatch_seconds(instance_id,
                                                       amount),
                effective_rate=dict(weights)[instance_id])
            for instance_id, amount in raw if amount > 0.0)
        return SharedPlan(assignments=assignments, shed=shed,
                          capacity_fraction=capacity_fraction,
                          brownout=brownout)
