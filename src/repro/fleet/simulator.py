"""Deterministic fluid simulation of a chaos campaign over the fleet.

Generalizes :class:`~repro.system.multi.ProSESystem` (four instances,
one host, one failure class) to racks of heterogeneous hosts under
*correlated* failure scripts.  The execution model is fluid: each
instance drains its assigned inferences at its backend's calibrated
rate times the health monitor's capacity factor, and the simulation
advances from event to event (scripted chaos events, heartbeat
detections, warm-up completions, shard completions) in deterministic
order — no wall clock, no unordered containers, no hidden RNG state, so
a seeded run is bit-reproducible and independent of host load or sweep
worker count.

The recovery pipeline mirrors production incident anatomy:

1. an instance (or a whole rack) dies — its unfinished work is in
   limbo;
2. the heartbeat monitor notices after the missed-heartbeat window
   (the *detection latency* every recovery timeline pays);
3. the degradation-aware scheduler re-shards the lost work across the
   surviving capacity, paying fabric-tier transfer costs — unless the
   brownout floor triggers load-shedding, or too few survivors remain
   (outage: work waits for a scripted recovery, or is dropped);
4. survivors drain the extra work; the report's ``recovery_seconds``
   runs from the first failure to the last re-sharded inference.

Every phase is visible in the exported Perfetto trace: per-instance
``shard``/``recovery_shard`` spans, ``detection_window`` spans, and
instant events for failures, detections, re-shards, brownout sheds and
breaker trips.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..baselines.gpu import A100_MEASURED_POWER_WATTS, a100
from ..baselines.tpu import (
    TPUV2_POWER_WATTS,
    TPUV3_POWER_WATTS,
    tpu_v2,
    tpu_v3,
)
from ..model.config import BertConfig, protein_bert_base
from ..parallel.memo import cached_schedule
from ..physical.power import power_report
from ..reliability.faults import FaultModel
from ..reliability.policy import (
    DegradationPolicy,
    RetryPolicy,
    validate_policy_interplay,
)
from ..monitor.engine import Monitor, SloOutcome
from ..sched.host import HOST_POWER_WATTS
from ..telemetry import MetricsRegistry, Tracer
from .health import HealthMonitor, HealthState, HeartbeatConfig
from .scenarios import (
    DEGRADE,
    FAIL,
    LINK_FLAP,
    RECOVER,
    UNDEGRADE,
    ChaosScenario,
    resolve_target,
)
from .scheduler import DegradationAwareScheduler, SharedPlan
from .topology import (
    GPU_A100,
    PROSE,
    TPU_V2,
    FabricModel,
    FleetTopology,
    Instance,
)


@dataclass(frozen=True)
class InstanceOutcome:
    """One instance's campaign, as reported."""

    instance_id: str
    backend: str
    allocated: float
    completed: float
    finish_seconds: float
    final_state: str
    breaker_open: bool = False


@dataclass(frozen=True)
class FleetReport:
    """What a chaos campaign cost, fleet-wide.

    Attributes:
        scenario: chaos script name (``"none"`` for a clean run).
        topology: human-readable fleet shape.
        batch: inferences requested.
        completed: inferences delivered (fluid — partial progress on a
            later-killed instance counts for the part that streamed
            back).
        shed: inferences dropped by brownout load-shedding, outage, or
            an unplaceable backlog.
        makespan_seconds: end-to-end wall-clock of the campaign.
        nominal_makespan_seconds: the same workload on a fully healthy
            fleet — the availability reference.
        reshards: re-shard assignments performed by the scheduler.
        resharded_inferences: work moved by those re-shards.
        recovery_seconds: first failure to last re-sharded completion;
            0.0 when nothing failed (or nothing needed moving).
        failures: hard instance failures observed.
        detections: heartbeat detections that found lost work.
        brownouts: plans made below the capacity floor.
        link_retransmissions: fabric transfers repeated on transients.
        energy_joules: accelerator busy-energy plus host power for the
            full makespan.
        per_instance: per-instance outcomes, topology order.
        transitions: the health state-machine history.
        slo: service-impact summary (alerts fired, worst burn rate,
            budget remaining) when the run carried a live monitor;
            None otherwise.
    """

    scenario: str
    topology: str
    batch: int
    completed: float
    shed: float
    makespan_seconds: float
    nominal_makespan_seconds: float
    reshards: int
    resharded_inferences: float
    recovery_seconds: float
    failures: int
    detections: int
    brownouts: int
    link_retransmissions: int
    energy_joules: float
    per_instance: Tuple[InstanceOutcome, ...]
    transitions: Tuple[object, ...] = ()
    slo: Optional[SloOutcome] = None

    @property
    def goodput(self) -> float:
        """Delivered inferences per second of degraded wall-clock."""
        if self.makespan_seconds <= 0.0:
            return 0.0
        return self.completed / self.makespan_seconds

    @property
    def availability(self) -> float:
        """Nominal over degraded makespan, capped at 1.0."""
        if self.makespan_seconds <= 0.0:
            return 1.0
        return min(1.0, self.nominal_makespan_seconds
                   / self.makespan_seconds)

    @property
    def completion_fraction(self) -> float:
        return self.completed / self.batch if self.batch else 1.0

    def summary(self) -> str:
        text = (f"goodput={self.goodput:.1f} inf/s "
                f"availability={self.availability:.4f} "
                f"completed={self.completed:.1f}/{self.batch} "
                f"shed={self.shed:.1f} reshards={self.reshards} "
                f"recovery={self.recovery_seconds * 1e3:.3f} ms "
                f"failures={self.failures} "
                f"energy={self.energy_joules:.2f} J")
        if self.slo is not None:
            text += (f" alerts={self.slo.alerts} pages={self.slo.pages} "
                     f"worst_burn={self.slo.worst_burn_rate:.1f} "
                     f"budget_left={self.slo.budget_remaining:.1%}")
        return text


@dataclass
class _Sim:
    """Mutable per-instance execution state."""

    instance: Instance
    rate: float                 # backend inferences/second at full health
    power_watts: float
    remaining: float = 0.0
    segment_start: float = 0.0  # when the current constant-rate run began
    eff_rate: float = 0.0       # rate x capacity factor for this segment
    allocated: float = 0.0
    completed: float = 0.0
    active_seconds: float = 0.0
    lost: float = 0.0           # in-limbo work awaiting detection
    finish_seconds: float = 0.0
    has_recovery_work: bool = False

    @property
    def running(self) -> bool:
        return self.remaining > 0.0 and self.eff_rate > 0.0

    @property
    def projected_finish(self) -> float:
        return self.segment_start + self.remaining / self.eff_rate


class FleetSimulator:
    """Runs one workload over a fleet under an optional chaos script.

    Args:
        topology: the fleet shape and backend mix.
        model_config: the encoder scored fleet-wide (default
            Protein-BERT-base).
        policy: degradation policy — detection scale, outage floor,
            brownout floor, shed fraction, circuit breaker.
        retry_policy: serving-layer retry knobs; only validated here
            (the interplay check of
            :func:`~repro.reliability.validate_policy_interplay`), so
            a config that would loop at the serving layer fails fast at
            fleet-plan time.
        heartbeat: heartbeat cadence and capacity discounts.
        fabric: fabric tier bandwidths.
        fault_model: seeded random-fault source layered *under* any
            scripted scenario: spontaneous instance failures and
            fabric transients.  Inert by default.
        seq_len: tokens per inference.
        reference_batch: shard size used to calibrate per-backend
            rates (memoized through the shape-keyed schedule cache).
    """

    def __init__(self, topology: FleetTopology,
                 model_config: Optional[BertConfig] = None,
                 policy: Optional[DegradationPolicy] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 heartbeat: Optional[HeartbeatConfig] = None,
                 fabric: Optional[FabricModel] = None,
                 fault_model: Optional[FaultModel] = None,
                 seq_len: int = 128,
                 reference_batch: int = 8) -> None:
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        if reference_batch <= 0:
            raise ValueError("reference_batch must be positive")
        self.topology = topology
        self.model_config = model_config or protein_bert_base()
        self.policy = policy or DegradationPolicy()
        self.retry_policy = retry_policy
        self.heartbeat = heartbeat or HeartbeatConfig()
        self.fabric = fabric or FabricModel()
        self.fault_model = fault_model or FaultModel()
        self.seq_len = seq_len
        self.reference_batch = reference_batch
        #: Tokens in (int32) plus the pooled embedding out (fp32).
        self.payload_bytes = float(
            4 * seq_len + 4 * self.model_config.hidden_size)
        self._rate_cache: Dict[str, float] = {}
        self._power_cache: Dict[str, float] = {}
        rates = {instance.instance_id: self._backend_rate(instance)
                 for instance in topology.instances}
        self.scheduler = DegradationAwareScheduler(
            topology, rates, self.fabric, self.policy, self.payload_bytes)

    # -- backend calibration --------------------------------------------

    def _backend_rate(self, instance: Instance) -> float:
        """Nominal inferences/second of one instance's backend."""
        spec = instance.backend
        key = spec.label
        if key in self._rate_cache:
            return self._rate_cache[key]
        if spec.kind == PROSE:
            schedule = cached_schedule(
                spec.hardware, self.model_config,
                batch=self.reference_batch, seq_len=self.seq_len)
            rate = self.reference_batch / schedule.makespan_seconds
            power = power_report(spec.hardware).accelerator_power_w
        else:
            device = {GPU_A100: a100, TPU_V2: tpu_v2}.get(spec.kind,
                                                          tpu_v3)()
            rate = device.throughput(self.model_config,
                                     batch=self.reference_batch,
                                     seq_len=self.seq_len)
            power = {GPU_A100: A100_MEASURED_POWER_WATTS,
                     TPU_V2: TPUV2_POWER_WATTS}.get(spec.kind,
                                                    TPUV3_POWER_WATTS)
        self._rate_cache[key] = rate
        self._power_cache[key] = power
        return rate

    def _backend_power(self, instance: Instance) -> float:
        self._backend_rate(instance)
        return self._power_cache[instance.backend.label]

    # -- nominal schedule ------------------------------------------------

    def nominal_plan(self, batch: int) -> SharedPlan:
        """The full-health shard plan (the homogeneous reference)."""
        health = HealthMonitor(
            [inst.instance_id for inst in self.topology.instances],
            heartbeat=self.heartbeat)
        plan = self.scheduler.plan(float(batch), health)
        assert plan is not None  # a fresh monitor always has capacity
        return plan

    def nominal_makespan(self, batch: int) -> float:
        """Fleet makespan of the nominal plan on a healthy fleet."""
        plan = self.nominal_plan(batch)
        rates = self.scheduler.rates
        return max(
            assignment.dispatch_seconds
            + assignment.amount / rates[assignment.instance_id]
            for assignment in plan.assignments)

    # -- simulation ------------------------------------------------------

    def run(self, batch: int = 256,
            scenario: Optional[ChaosScenario] = None,
            tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            monitor: Optional[Monitor] = None) -> FleetReport:
        """Simulate ``batch`` inferences under the chaos script.

        With no scenario and an inert fault model the event loop
        processes only shard completions, and every per-instance finish
        reproduces the nominal plan bit-identically.

        A live ``monitor`` (see :func:`repro.monitor.fleet_monitor`)
        samples fleet series at its tick cadence through read-only
        "sample" events on the same queue — it observes the simulation
        without touching its state, so every simulated number is
        bit-identical with and without one.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.fault_model.reset()
        nominal = self.nominal_makespan(batch)
        if self.retry_policy is not None:
            validate_policy_interplay(self.retry_policy, self.policy,
                                      nominal)
        health = HealthMonitor(
            [inst.instance_id for inst in self.topology.instances],
            heartbeat=self.heartbeat,
            circuit_breaker_failures=self.policy.circuit_breaker_failures,
            tracer=tracer, span_target=self._span_target)
        states: Dict[str, _Sim] = {}
        for instance in self.topology.instances:
            states[instance.instance_id] = _Sim(
                instance=instance, rate=self._backend_rate(instance),
                power_watts=self._backend_power(instance))

        counters = _Counters()
        events = _EventQueue()
        for event in (scenario.events if scenario is not None else ()):
            for instance in resolve_target(self.topology, event.target):
                events.push(event.at_fraction * nominal, event.action,
                            instance.instance_id, event)
        spontaneous = self.fault_model.failed_instances(
            len(self.topology.instances))
        for index in spontaneous:
            instance = self.topology.instances[index]
            at = self.fault_model.failure_fraction() * nominal
            events.push(at, FAIL, instance.instance_id, None)
        if monitor is not None:
            monitor.begin(nominal)
            events.push(monitor.sample_interval, "sample", "", None)

        # Initial dispatch: the nominal plan, since everyone is healthy.
        plan = self.nominal_plan(batch)
        for assignment in plan.assignments:
            state = states[assignment.instance_id]
            dispatch = assignment.dispatch_seconds
            dispatch += self._link_retry_seconds(state, assignment.amount,
                                                counters)
            state.allocated = assignment.amount
            state.remaining = assignment.amount
            state.segment_start = dispatch
            state.eff_rate = state.rate * health.capacity_factor(
                assignment.instance_id)
            if tracer is not None:
                pid, tid = self._span_target(assignment.instance_id)
                tracer.add_span(
                    "dispatch", 0.0, dispatch, pid=pid, tid=tid,
                    category="fabric",
                    tier=self.topology.tier_of(state.instance).value,
                    amount=assignment.amount)

        self._event_loop(states, health, events, nominal, counters,
                         tracer, monitor)

        makespan = max((state.finish_seconds for state in states.values()),
                       default=0.0)
        slo_outcome: Optional[SloOutcome] = None
        if monitor is not None:
            # Close the books at the makespan (or the last tick, if a
            # queued sample already ran past it) so the final budget
            # accounts for the whole run.
            final_t = max(makespan, monitor.last_tick)
            self._on_sample(final_t, states, health, counters, monitor,
                            None)
            slo_outcome = monitor.finalize(final_t).outcome()
        completed = sum(state.completed for state in states.values())
        recovery_seconds = 0.0
        if counters.first_failure is not None and counters.reshards:
            recovery_seconds = max(
                0.0, counters.last_recovery_finish - counters.first_failure)
        energy = HOST_POWER_WATTS * self.topology.hosts * makespan
        for state in states.values():
            energy += state.power_watts * state.active_seconds
        outcomes = tuple(
            InstanceOutcome(
                instance_id=instance_id, backend=state.instance.backend.label,
                allocated=state.allocated, completed=state.completed,
                finish_seconds=state.finish_seconds,
                final_state=health.state(instance_id).value,
                breaker_open=health.breaker_open(instance_id))
            for instance_id, state in states.items())
        report = FleetReport(
            scenario=scenario.name if scenario is not None else "none",
            topology=self.topology.describe(), batch=batch,
            completed=completed, shed=counters.shed,
            makespan_seconds=makespan, nominal_makespan_seconds=nominal,
            reshards=counters.reshards,
            resharded_inferences=counters.resharded,
            recovery_seconds=recovery_seconds,
            failures=counters.failures, detections=counters.detections,
            brownouts=counters.brownouts,
            link_retransmissions=counters.retransmissions,
            energy_joules=energy, per_instance=outcomes,
            transitions=tuple(health.transitions), slo=slo_outcome)
        self._emit_summary(report, states, health, tracer, metrics)
        return report

    # -- event loop ------------------------------------------------------

    def _event_loop(self, states: Dict[str, _Sim],
                    health: HealthMonitor, events: "_EventQueue",
                    nominal: float, counters: "_Counters",
                    tracer: Optional[Tracer],
                    monitor: Optional[Monitor] = None) -> None:
        detection = self.heartbeat.detection_seconds(nominal)
        warmup = self.heartbeat.warmup_seconds(nominal)
        while True:
            next_finish = min(
                (state.projected_finish for state in states.values()
                 if state.running), default=None)
            next_event = events.peek_time()
            if next_finish is None and next_event is None:
                break
            if next_event is None or (next_finish is not None
                                      and next_finish <= next_event):
                self._complete_at(next_finish, states, counters, tracer)
                continue
            for action, instance_id, payload in events.pop_at(next_event):
                t = next_event
                if action == FAIL:
                    self._on_fail(t, instance_id, states, health, events,
                                  detection, counters, tracer,
                                  scripted=payload is not None,
                                  monitor=monitor)
                elif action == "detect":
                    self._on_detect(t, payload, states, health, events,
                                    counters, tracer, monitor=monitor)
                elif action == RECOVER:
                    self._on_recover(t, instance_id, states, health,
                                     events, warmup, counters, tracer)
                elif action == "warmup_done":
                    self._on_warmup_done(t, instance_id, states, health)
                elif action == DEGRADE:
                    self._on_degrade(t, instance_id, states, health,
                                     payload.factor, reason="scripted",
                                     monitor=monitor)
                elif action == UNDEGRADE:
                    self._on_undegrade(t, instance_id, states, health)
                elif action == LINK_FLAP:
                    self._on_flap(t, instance_id, states, health, events,
                                  payload, nominal, tracer,
                                  monitor=monitor)
                elif action == "sample":
                    self._on_sample(t, states, health, counters, monitor,
                                    events)
                elif action == "flap_end":
                    self._on_flap_end(t, instance_id, states, health,
                                      tracer)
        # Anything still waiting for capacity that never returned is lost.
        backlog = counters.backlog
        if backlog > 0.0:
            counters.shed += backlog
            counters.backlog = 0.0

    # -- handlers --------------------------------------------------------

    def _span_target(self, instance_id: str) -> Tuple[str, str]:
        instance = self.topology.by_id(instance_id)
        return instance.host_id, f"s{instance.slot}"

    def _link_retry_seconds(self, state: _Sim, amount: float,
                            counters: "_Counters") -> float:
        """Fabric retransmission delay drawn from the fault model."""
        if self.fault_model.rates.link_transient <= 0.0:
            return 0.0
        errors = self.fault_model.link_transients(int(amount))
        if not errors:
            return 0.0
        counters.retransmissions += errors
        tier = self.topology.tier_of(state.instance)
        return errors * self.fabric.transfer_seconds(self.payload_bytes,
                                                     tier)

    def _progress(self, state: _Sim, t: float) -> None:
        """Fold the current constant-rate segment forward to ``t``."""
        if state.remaining <= 0.0 or state.eff_rate <= 0.0:
            state.segment_start = max(state.segment_start, t)
            return
        if t <= state.segment_start:
            return
        dt = t - state.segment_start
        done = min(state.remaining, state.eff_rate * dt)
        state.remaining -= done
        state.completed += done
        state.active_seconds += dt
        state.segment_start = t

    def _close_segment(self, state: _Sim, t: float,
                       tracer: Optional[Tracer], category: str) -> None:
        """Progress to ``t`` and emit the execution span just finished."""
        start = state.segment_start
        self._progress(state, t)
        if tracer is not None and t > start:
            pid, tid = self._span_target(state.instance.instance_id)
            tracer.add_span(
                "recovery_shard" if category == "recovery" else "shard",
                start, t, pid=pid, tid=tid, category=category,
                rate=state.eff_rate,
                backend=state.instance.backend.label)

    def _refresh_rate(self, state: _Sim, health: HealthMonitor) -> None:
        state.eff_rate = state.rate * health.capacity_factor(
            state.instance.instance_id)

    def _complete_at(self, t: float, states: Dict[str, _Sim],
                     counters: "_Counters",
                     tracer: Optional[Tracer]) -> None:
        for state in states.values():
            if state.running and state.projected_finish == t:
                category = ("recovery" if state.has_recovery_work
                            else "shard")
                self._close_segment(state, t, tracer, category)
                state.remaining = 0.0
                state.finish_seconds = t
                if state.has_recovery_work:
                    counters.last_recovery_finish = max(
                        counters.last_recovery_finish, t)

    def _on_fail(self, t: float, instance_id: str,
                 states: Dict[str, _Sim], health: HealthMonitor,
                 events: "_EventQueue", detection: float,
                 counters: "_Counters", tracer: Optional[Tracer],
                 scripted: bool,
                 monitor: Optional[Monitor] = None) -> None:
        if health.state(instance_id) is HealthState.DEAD:
            return
        if monitor is not None:
            monitor.mark(t, "fault", instance_id)
        state = states[instance_id]
        self._close_segment(state, t, tracer,
                            "recovery" if state.has_recovery_work
                            else "shard")
        state.lost = state.remaining
        state.remaining = 0.0
        state.eff_rate = 0.0
        state.finish_seconds = max(state.finish_seconds, t)
        health.transition(instance_id, HealthState.DEAD, t,
                           reason="scripted" if scripted else "spontaneous")
        counters.failures += 1
        if counters.first_failure is None:
            counters.first_failure = t
        events.push(t + detection, "detect", instance_id, instance_id)
        if tracer is not None:
            pid, tid = self._span_target(instance_id)
            tracer.instant("instance_failure", t, pid=pid, tid=tid,
                           category="fault", lost=state.lost)
            tracer.add_span("detection_window", t, t + detection, pid=pid,
                            tid=tid, category="fault")

    def _on_detect(self, t: float, instance_id: str,
                   states: Dict[str, _Sim], health: HealthMonitor,
                   events: "_EventQueue", counters: "_Counters",
                   tracer: Optional[Tracer],
                   monitor: Optional[Monitor] = None) -> None:
        if monitor is not None:
            monitor.mark(t, "detection", instance_id)
        state = states[instance_id]
        lost, state.lost = state.lost, 0.0
        if tracer is not None:
            tracer.instant("failure_detected", t, pid="fleet",
                           tid="scheduler", category="fault",
                           instance=instance_id, lost=lost)
        if lost <= 0.0:
            return
        counters.detections += 1
        self._reshard(t, lost, states, health, events, counters, tracer,
                      exclude=(instance_id,))

    def _reshard(self, t: float, work: float, states: Dict[str, _Sim],
                 health: HealthMonitor, events: "_EventQueue",
                 counters: "_Counters", tracer: Optional[Tracer],
                 exclude: Tuple[str, ...] = ()) -> None:
        if health.alive_count() < self.policy.min_survivors:
            counters.backlog += work
            if tracer is not None:
                tracer.instant("outage", t, pid="fleet", tid="scheduler",
                               category="fault", backlog=work)
            return
        plan = self.scheduler.plan(work, health, exclude=exclude,
                                   integral=False)
        if plan is None or not plan.assignments:
            counters.backlog += work
            return
        if plan.brownout:
            counters.brownouts += 1
            counters.shed += plan.shed
            if tracer is not None:
                tracer.instant(
                    "brownout_shed", t, pid="fleet", tid="scheduler",
                    category="fault", shed=plan.shed,
                    capacity_fraction=plan.capacity_fraction)
        counters.reshards += len(plan.assignments)
        counters.resharded += plan.total
        if tracer is not None:
            tracer.instant("reshard", t, pid="fleet", tid="scheduler",
                           category="recovery", work=plan.total,
                           targets=len(plan.assignments))
        for assignment in plan.assignments:
            target = states[assignment.instance_id]
            target.has_recovery_work = True
            target.allocated += assignment.amount
            if target.running:
                # Transfer overlaps the work already draining.
                self._progress(target, t)
                target.remaining += assignment.amount
            else:
                dispatch = assignment.dispatch_seconds
                dispatch += self._link_retry_seconds(
                    target, assignment.amount, counters)
                target.remaining = assignment.amount
                target.segment_start = t + dispatch
                self._refresh_rate(target, health)
                if tracer is not None:
                    pid, tid = self._span_target(assignment.instance_id)
                    tracer.add_span(
                        "dispatch", t, t + dispatch, pid=pid, tid=tid,
                        category="fabric", amount=assignment.amount,
                        tier=self.topology.tier_of(
                            target.instance).value)

    def _on_recover(self, t: float, instance_id: str,
                    states: Dict[str, _Sim], health: HealthMonitor,
                    events: "_EventQueue", warmup: float,
                    counters: "_Counters",
                    tracer: Optional[Tracer]) -> None:
        if health.state(instance_id) is not HealthState.DEAD:
            return
        health.transition(instance_id, HealthState.RECOVERING, t,
                           reason="restart")
        events.push(t + warmup, "warmup_done", instance_id, None)
        state = states[instance_id]
        self._refresh_rate(state, health)
        if counters.backlog > 0.0:
            backlog, counters.backlog = counters.backlog, 0.0
            self._reshard(t, backlog, states, health, events, counters,
                          tracer)

    def _on_warmup_done(self, t: float, instance_id: str,
                        states: Dict[str, _Sim],
                        health: HealthMonitor) -> None:
        if health.state(instance_id) is not HealthState.RECOVERING:
            return
        state = states[instance_id]
        self._progress(state, t)
        health.transition(instance_id, HealthState.HEALTHY, t,
                           reason="warmup_complete")
        self._refresh_rate(state, health)

    def _on_degrade(self, t: float, instance_id: str,
                    states: Dict[str, _Sim], health: HealthMonitor,
                    factor: float, reason: str,
                    monitor: Optional[Monitor] = None) -> None:
        if health.state(instance_id) not in (HealthState.HEALTHY,
                                              HealthState.DEGRADED):
            return
        if monitor is not None:
            monitor.mark(t, "fault", instance_id)
        state = states[instance_id]
        self._progress(state, t)
        health.transition(instance_id, HealthState.DEGRADED, t,
                           reason=reason, degraded_factor=factor)
        self._refresh_rate(state, health)

    def _on_undegrade(self, t: float, instance_id: str,
                      states: Dict[str, _Sim],
                      health: HealthMonitor) -> None:
        if health.state(instance_id) is not HealthState.DEGRADED:
            return
        state = states[instance_id]
        self._progress(state, t)
        health.transition(instance_id, HealthState.HEALTHY, t,
                           reason="undegrade")
        self._refresh_rate(state, health)

    def _on_flap(self, t: float, instance_id: str,
                 states: Dict[str, _Sim], health: HealthMonitor,
                 events: "_EventQueue", event, nominal: float,
                 tracer: Optional[Tracer],
                 monitor: Optional[Monitor] = None) -> None:
        if monitor is not None:
            monitor.mark(t, "fault", instance_id)
        state = states[instance_id]
        self._progress(state, t)
        health.set_link_factor(instance_id, event.factor)
        if health.state(instance_id) is HealthState.HEALTHY:
            # The flap shows as degraded health; capacity loss comes
            # from the link factor alone (degraded_factor=1.0).
            health.transition(instance_id, HealthState.DEGRADED, t,
                               reason="link_flap", degraded_factor=1.0)
        self._refresh_rate(state, health)
        events.push(t + event.duration_fraction * nominal, "flap_end",
                    instance_id, None)
        if tracer is not None:
            pid, tid = self._span_target(instance_id)
            tracer.add_span(
                "link_flap", t, t + event.duration_fraction * nominal,
                pid=pid, tid=tid, category="fault", factor=event.factor)

    def _on_sample(self, t: float, states: Dict[str, _Sim],
                   health: HealthMonitor, counters: "_Counters",
                   monitor: Optional[Monitor],
                   events: Optional["_EventQueue"]) -> None:
        """Read-only monitoring tick: sample series, feed SLOs, alert.

        This handler must never touch simulation state — in particular
        it must not call :meth:`_progress` (which folds segments and
        would perturb floating-point accumulation order).  In-flight
        work is estimated read-only from each instance's current
        constant-rate segment, which is exact under the fluid model.
        """
        if monitor is None:
            return
        total_rate = sum(state.rate for state in states.values())
        healthy_rate = sum(
            state.rate * health.capacity_factor(state.instance.instance_id)
            for state in states.values())
        capacity = healthy_rate / total_rate if total_rate > 0.0 else 0.0
        completed = 0.0
        for state in states.values():
            completed += state.completed
            if state.running and t > state.segment_start:
                completed += min(state.remaining,
                                 state.eff_rate * (t - state.segment_start))
            monitor.record(t, f"instance/{state.instance.instance_id}/rate",
                           state.eff_rate)
        monitor.record(t, "fleet/capacity_fraction", capacity)
        monitor.record(t, "fleet/completed", completed)
        monitor.record(t, "fleet/alive", float(health.alive_count()))
        monitor.record(t, "fleet/shed", counters.shed)
        monitor.record(t, "fleet/backlog", counters.backlog)
        monitor.record(t, "fleet/failures", float(counters.failures))
        monitor.record(t, "fleet/reshards", float(counters.reshards))
        monitor.record(t, "fleet/link_retransmissions",
                       float(counters.retransmissions))
        monitor.slo_event(t, "availability", good=capacity,
                          bad=1.0 - capacity)
        monitor.evaluate(t)
        if events is not None and (
                any(state.running for state in states.values())
                or events.peek_time() is not None):
            events.push(t + monitor.sample_interval, "sample", "", None)

    def _on_flap_end(self, t: float, instance_id: str,
                     states: Dict[str, _Sim], health: HealthMonitor,
                     tracer: Optional[Tracer]) -> None:
        state = states[instance_id]
        self._progress(state, t)
        health.set_link_factor(instance_id, 1.0)
        if health.state(instance_id) is HealthState.DEGRADED:
            last = health.transitions_of(instance_id)[-1]
            if last.reason == "link_flap":
                health.transition(instance_id, HealthState.HEALTHY, t,
                                   reason="link_flap_cleared")
        self._refresh_rate(state, health)

    # -- reporting -------------------------------------------------------

    def _emit_summary(self, report: FleetReport, states: Dict[str, _Sim],
                      health: HealthMonitor, tracer: Optional[Tracer],
                      metrics: Optional[MetricsRegistry]) -> None:
        if tracer is not None:
            tracer.add_span(
                "fleet_campaign", 0.0, report.makespan_seconds,
                pid="fleet", tid="overview", category="fleet",
                scenario=report.scenario, batch=report.batch,
                goodput=report.goodput, reshards=report.reshards,
                nominal_seconds=report.nominal_makespan_seconds,
                completed=report.completed, failures=report.failures)
            for instance_id in health.open_breakers():
                pid, tid = self._span_target(instance_id)
                tracer.instant("breaker_open", report.makespan_seconds,
                               pid=pid, tid=tid, category="fault")
        if metrics is None:
            return
        metrics.counter("fleet/completed").inc(report.completed)
        metrics.counter("fleet/shed").inc(report.shed)
        metrics.counter("fleet/reshards").inc(report.reshards)
        metrics.counter("fleet/failures").inc(report.failures)
        metrics.counter("fleet/detections").inc(report.detections)
        metrics.counter("fleet/brownouts").inc(report.brownouts)
        metrics.counter("fleet/link_retransmissions").inc(
            report.link_retransmissions)
        metrics.gauge("fleet/goodput").set(report.goodput)
        metrics.gauge("fleet/availability").set(report.availability)
        metrics.gauge("fleet/recovery_seconds").set(
            report.recovery_seconds)
        metrics.gauge("fleet/makespan_seconds").set(
            report.makespan_seconds)
        metrics.gauge("fleet/energy_joules").set(report.energy_joules)
        histogram = metrics.histogram("fleet/instance_finish_seconds")
        for state in states.values():
            if state.finish_seconds > 0.0:
                histogram.observe(state.finish_seconds)


@dataclass
class _Counters:
    """Run-wide mutable accounting shared by the handlers."""

    failures: int = 0
    detections: int = 0
    reshards: int = 0
    resharded: float = 0.0
    brownouts: int = 0
    retransmissions: int = 0
    shed: float = 0.0
    backlog: float = 0.0
    first_failure: Optional[float] = None
    last_recovery_finish: float = 0.0


class _EventQueue:
    """Deterministic time-ordered queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, str, object]] = []
        self._seq = 0

    def push(self, time: float, action: str, instance_id: str,
             payload: object) -> None:
        heapq.heappush(self._heap,
                       (time, self._seq, action, instance_id, payload))
        self._seq += 1

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop_at(self, time: float) -> List[Tuple[str, str, object]]:
        """All events scheduled exactly at ``time``, in push order."""
        batch = []
        while self._heap and self._heap[0][0] == time:
            _, _, action, instance_id, payload = heapq.heappop(self._heap)
            batch.append((action, instance_id, payload))
        return batch
