"""Fleet topology: racks of hosts of heterogeneous accelerator instances.

The paper's deployment story (Section 3.2) stops at four ProSE instances
behind one host CPU.  A discovery engine serving millions of users runs
*racks* of such hosts, and the failures that matter at that scale are
correlated: a rack loses power, an uplink flaps, one slow host drags
every batch sharded onto it.  This module models the static shape of
that fleet — which instance sits in which host and rack, what backend it
runs (a ProSE configuration or one of the calibrated commodity
baselines), and how expensive it is to move work between any two points
of the topology.

Three fabric tiers, in decreasing bandwidth order:

* **NVLink** — coordinator and instance share a host (the paper's
  intra-host links);
* **intra-rack** — different hosts on one rack's switch;
* **inter-rack** — crossing the rack-to-rack fabric.

Everything here is a frozen dataclass: a topology can be shared between
simulations, hashed into memo keys, and compared structurally in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..arch.config import HardwareConfig, best_perf

#: Backend kinds schedulable by the fleet.
PROSE = "prose"
GPU_A100 = "a100"
TPU_V2 = "tpuv2"
TPU_V3 = "tpuv3"

BASELINE_KINDS = (GPU_A100, TPU_V2, TPU_V3)


class LinkTier(enum.Enum):
    """Fabric tier between the scheduling host and an instance."""

    NVLINK = "nvlink"
    INTRA_RACK = "intra_rack"
    INTER_RACK = "inter_rack"


@dataclass(frozen=True)
class FabricModel:
    """Bandwidth and dispatch cost of the three fabric tiers.

    Defaults follow the paper's NVLink 3.0 host links (~300 GB/s per
    instance) over a 100 GbE-class rack switch and a thinner inter-rack
    spine — the usual oversubscription pyramid.

    Attributes:
        nvlink_bytes_per_second: intra-host link bandwidth.
        intra_rack_bytes_per_second: host-to-host bandwidth in a rack.
        inter_rack_bytes_per_second: rack-to-rack fabric bandwidth.
        dispatch_overhead_seconds: fixed per-shard dispatch cost
            (software + NIC latency), charged once per assignment.
    """

    nvlink_bytes_per_second: float = 300e9
    intra_rack_bytes_per_second: float = 12.5e9
    inter_rack_bytes_per_second: float = 3.125e9
    dispatch_overhead_seconds: float = 2.0e-6

    def __post_init__(self) -> None:
        if min(self.nvlink_bytes_per_second,
               self.intra_rack_bytes_per_second,
               self.inter_rack_bytes_per_second) <= 0:
            raise ValueError("fabric bandwidths must be positive")
        if self.dispatch_overhead_seconds < 0:
            raise ValueError("dispatch overhead must be non-negative")

    def bandwidth(self, tier: LinkTier) -> float:
        if tier is LinkTier.NVLINK:
            return self.nvlink_bytes_per_second
        if tier is LinkTier.INTRA_RACK:
            return self.intra_rack_bytes_per_second
        return self.inter_rack_bytes_per_second

    def transfer_seconds(self, payload_bytes: float,
                         tier: LinkTier) -> float:
        """One shard dispatch: fixed overhead plus payload at tier rate."""
        return (self.dispatch_overhead_seconds
                + payload_bytes / self.bandwidth(tier))


@dataclass(frozen=True)
class BackendSpec:
    """What one fleet instance actually runs.

    Attributes:
        kind: ``"prose"`` or one of the calibrated baselines
            (``"a100"``, ``"tpuv2"``, ``"tpuv3"``).
        hardware: the ProSE configuration; required iff kind is prose.
    """

    kind: str = PROSE
    hardware: Optional[HardwareConfig] = None

    def __post_init__(self) -> None:
        if self.kind == PROSE:
            if self.hardware is None:
                object.__setattr__(self, "hardware", best_perf())
        elif self.kind in BASELINE_KINDS:
            if self.hardware is not None:
                raise ValueError(
                    f"baseline backend '{self.kind}' takes no hardware "
                    f"configuration")
        else:
            raise ValueError(
                f"unknown backend kind '{self.kind}'; choose from: "
                f"{(PROSE,) + BASELINE_KINDS}")

    @property
    def label(self) -> str:
        if self.kind == PROSE:
            return f"prose:{self.hardware.name}"
        return self.kind


@dataclass(frozen=True)
class Instance:
    """One schedulable accelerator: its position and its backend."""

    rack: int
    host: int
    slot: int
    backend: BackendSpec = field(default_factory=BackendSpec)

    @property
    def instance_id(self) -> str:
        """Stable topology address, e.g. ``r0h1s2``."""
        return f"r{self.rack}h{self.host}s{self.slot}"

    @property
    def host_id(self) -> str:
        return f"r{self.rack}h{self.host}"


@dataclass(frozen=True)
class FleetTopology:
    """The full fleet, with the scheduling host pinned to one position.

    Attributes:
        instances: every instance, in (rack, host, slot) order.
        coordinator_rack: rack holding the fleet scheduler.
        coordinator_host: host (within that rack) holding the scheduler.
    """

    instances: Tuple[Instance, ...]
    coordinator_rack: int = 0
    coordinator_host: int = 0

    def __post_init__(self) -> None:
        if not self.instances:
            raise ValueError("a fleet needs at least one instance")
        ids = [instance.instance_id for instance in self.instances]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate instance positions in topology")
        ordered = tuple(sorted(
            self.instances,
            key=lambda inst: (inst.rack, inst.host, inst.slot)))
        object.__setattr__(self, "instances", ordered)

    # -- shape -----------------------------------------------------------

    @property
    def racks(self) -> int:
        return len({instance.rack for instance in self.instances})

    @property
    def hosts(self) -> int:
        return len({instance.host_id for instance in self.instances})

    def host_ids(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for instance in self.instances:
            seen.setdefault(instance.host_id, None)
        return tuple(seen)

    def instances_of_rack(self, rack: int) -> Tuple[Instance, ...]:
        return tuple(inst for inst in self.instances if inst.rack == rack)

    def instances_of_host(self, rack: int, host: int) -> Tuple[Instance, ...]:
        return tuple(inst for inst in self.instances
                     if inst.rack == rack and inst.host == host)

    def by_id(self, instance_id: str) -> Instance:
        for instance in self.instances:
            if instance.instance_id == instance_id:
                return instance
        raise KeyError(f"no instance '{instance_id}' in topology")

    # -- fabric distance -------------------------------------------------

    def tier_of(self, instance: Instance) -> LinkTier:
        """Fabric tier between the coordinator and ``instance``."""
        if instance.rack != self.coordinator_rack:
            return LinkTier.INTER_RACK
        if instance.host != self.coordinator_host:
            return LinkTier.INTRA_RACK
        return LinkTier.NVLINK

    def describe(self) -> str:
        kinds: Dict[str, int] = {}
        for instance in self.instances:
            label = instance.backend.label
            kinds[label] = kinds.get(label, 0) + 1
        mix = ", ".join(f"{count}x {label}"
                        for label, count in sorted(kinds.items()))
        return (f"{self.racks} rack(s), {self.hosts} host(s), "
                f"{len(self.instances)} instance(s) [{mix}]")


def build_fleet(racks: int = 2, hosts_per_rack: int = 2,
                instances_per_host: int = 4,
                hardware: Optional[HardwareConfig] = None,
                heterogeneous: bool = False) -> FleetTopology:
    """A regular fleet, optionally mixing in the calibrated baselines.

    With ``heterogeneous=True`` the *last* host of every rack runs
    commodity baselines instead of ProSE instances — A100s on even
    racks, TPUv3s on odd — turning the paper's comparison curves into
    schedulable (slower, hotter) capacity the degradation-aware
    scheduler must weigh, exactly as a real mixed fleet would.
    """
    if racks <= 0 or hosts_per_rack <= 0 or instances_per_host <= 0:
        raise ValueError("fleet dimensions must be positive")
    prose = BackendSpec(kind=PROSE, hardware=hardware or best_perf())
    instances = []
    for rack in range(racks):
        for host in range(hosts_per_rack):
            baseline_host = (heterogeneous and hosts_per_rack > 1
                             and host == hosts_per_rack - 1)
            for slot in range(instances_per_host):
                if baseline_host:
                    kind = GPU_A100 if rack % 2 == 0 else TPU_V3
                    backend = BackendSpec(kind=kind)
                else:
                    backend = prose
                instances.append(Instance(rack=rack, host=host, slot=slot,
                                          backend=backend))
    return FleetTopology(instances=tuple(instances))
