"""NumPy Protein BERT encoder and bfloat16 numerics."""

from .activations import exp, gelu, gelu_exact, layer_norm, softmax, tanh
from .attention import ATTENTION_MASK_VALUE, MultiHeadAttention
from .bert import EncoderLayer, ProteinBert
from .config import BertConfig, protein_bert_base, protein_bert_tiny
from .layers import Embedding, LayerNorm, Linear
from .tensors import (
    BF16_MANTISSA_BITS,
    all_bf16_values,
    bf16_compose,
    bf16_decompose,
    bf16_unbiased_exponent,
    is_bfloat16,
    quantization_error,
    to_bfloat16,
)
from .decoder import (
    CrossAttention,
    DecoderLayer,
    ProteinSeq2Seq,
    causal_mask,
    initialize_decoder_weights,
)
from .weights import (
    initialize_weights,
    load_weights,
    pretrained_like_weights,
    save_weights,
    validate_weights,
)
from .zoo import MODEL_ZOO, describe, get_model_config, zoo_names

__all__ = [
    "ATTENTION_MASK_VALUE",
    "CrossAttention",
    "DecoderLayer",
    "MODEL_ZOO",
    "ProteinSeq2Seq",
    "causal_mask",
    "describe",
    "get_model_config",
    "initialize_decoder_weights",
    "pretrained_like_weights",
    "zoo_names",
    "BF16_MANTISSA_BITS",
    "BertConfig",
    "Embedding",
    "EncoderLayer",
    "LayerNorm",
    "Linear",
    "MultiHeadAttention",
    "ProteinBert",
    "all_bf16_values",
    "bf16_compose",
    "bf16_decompose",
    "bf16_unbiased_exponent",
    "exp",
    "gelu",
    "gelu_exact",
    "initialize_weights",
    "is_bfloat16",
    "layer_norm",
    "load_weights",
    "protein_bert_base",
    "protein_bert_tiny",
    "quantization_error",
    "save_weights",
    "softmax",
    "tanh",
    "to_bfloat16",
    "validate_weights",
]
