"""Reference activation functions for the Protein BERT model.

These are the float32 "golden" implementations.  The accelerator-side
approximations (bfloat16 lookup tables with exponent-window truncation) live
in :mod:`repro.arch.lut` and are validated against these references.
"""

from __future__ import annotations

import numpy as np

#: Constant sqrt(2/pi) used by the tanh-based GELU approximation the paper
#: quotes: GELU(x) = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
GELU_TANH_COEFF = float(np.sqrt(2.0 / np.pi))

#: Cubic coefficient from the same formulation.
GELU_CUBIC_COEFF = 0.044715


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation, as in the paper)."""
    x = np.asarray(x, dtype=np.float64)
    inner = GELU_TANH_COEFF * (x + GELU_CUBIC_COEFF * np.power(x, 3))
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(np.float32)


def gelu_exact(x: np.ndarray) -> np.ndarray:
    """Exact GELU via the Gauss error function (scipy-free implementation)."""
    x = np.asarray(x, dtype=np.float64)
    # erf(x) computed from the complementary relationship with the normal CDF.
    from math import sqrt

    from numpy import vectorize

    try:
        from scipy.special import erf  # type: ignore
        values = 0.5 * x * (1.0 + erf(x / sqrt(2.0)))
    except ImportError:  # pragma: no cover - scipy is an install requirement
        import math
        values = 0.5 * x * (1.0 + vectorize(math.erf)(x / sqrt(2.0)))
    return values.astype(np.float32)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
               eps: float = 1e-12) -> np.ndarray:
    """Layer normalization over the last axis with affine parameters."""
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mean) / np.sqrt(var + eps)
    return normalized * gamma + beta


def exp(x: np.ndarray) -> np.ndarray:
    """Elementwise exponential (reference for the accelerator Exp LUT)."""
    return np.exp(np.asarray(x, dtype=np.float32)).astype(np.float32)


def tanh(x: np.ndarray) -> np.ndarray:
    """Elementwise tanh."""
    return np.tanh(np.asarray(x, dtype=np.float32)).astype(np.float32)
