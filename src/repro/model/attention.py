"""Multi-head self-attention for the Protein BERT encoder.

The attention sublayer produces exactly the op mix the paper's dataflow
analysis keys on: four large MatMuls (Q/K/V projections and the output
projection → Dataflow 1) and the batched dot products with scaling and
softmax (→ Dataflow 3).  Per-head dot products have the small shapes the
paper quotes (m ≈ seq·heads-batched, k = 64), which drive the choice of
small E-Type systolic arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..trace.ops import OpKind, bmm_op, elementwise_op
from ..trace.recorder import TraceRecorder, maybe_record
from .activations import softmax
from .config import BertConfig
from .layers import Linear

#: Large negative number used to mask out padding positions before softmax.
ATTENTION_MASK_VALUE = -1e9


class MultiHeadAttention:
    """Scaled dot-product multi-head attention.

    Args:
        config: model hyperparameters.
        query / key / value / output: the four projection layers.
        layer: encoder layer index for trace provenance.
    """

    def __init__(self, config: BertConfig, query: Linear, key: Linear,
                 value: Linear, output: Linear, layer: int = -1) -> None:
        self.config = config
        self.query = query
        self.key = key
        self.value = value
        self.output = output
        self.layer = layer

    def forward(self, hidden: np.ndarray,
                attention_mask: Optional[np.ndarray] = None,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        """Run attention over ``hidden`` of shape ``(batch, seq, hidden)``.

        Args:
            hidden: input activations.
            attention_mask: optional ``(batch, seq)`` array with 1 for real
                tokens and 0 for padding.
            recorder: optional trace recorder.

        Returns:
            Context of shape ``(batch, seq, hidden)`` (pre-residual).
        """
        batch, seq, width = hidden.shape
        cfg = self.config
        if width != cfg.hidden_size:
            raise ValueError("attention: hidden width mismatch")
        heads, head_dim = cfg.num_heads, cfg.head_dim

        q = self.query.forward(hidden, recorder)
        k = self.key.forward(hidden, recorder)
        v = self.value.forward(hidden, recorder)

        def split_heads(x: np.ndarray) -> np.ndarray:
            maybe_record(recorder, elementwise_op(
                OpKind.TRANSPOSE, (batch, seq, heads, head_dim),
                name="attention.split_heads", layer=self.layer))
            return x.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)

        q, k, v = split_heads(q), split_heads(k), split_heads(v)

        # Attention scores: per-(batch, head) dot products — the paper's
        # "batched matrix multiplications ... the smallest matrices".
        maybe_record(recorder, bmm_op(
            batch * heads, seq, head_dim, seq,
            name="attention.scores", layer=self.layer))
        scores = q @ k.transpose(0, 1, 3, 2)

        # Scale by 1/sqrt(d): an elementwise Matrix Div in the ATen trace.
        maybe_record(recorder, elementwise_op(
            OpKind.DIV, (batch, heads, seq, seq),
            name="attention.scale", layer=self.layer,
            metadata={"divisor": float(np.sqrt(head_dim))}))
        scores = scores / np.sqrt(head_dim).astype(np.float32)

        if attention_mask is not None:
            if attention_mask.shape != (batch, seq):
                raise ValueError("attention_mask must be (batch, seq)")
            maybe_record(recorder, elementwise_op(
                OpKind.ADD, (batch, heads, seq, seq),
                name="attention.mask", layer=self.layer))
            bias = (1.0 - attention_mask[:, None, None, :]) * ATTENTION_MASK_VALUE
            scores = scores + bias.astype(np.float32)

        maybe_record(recorder, elementwise_op(
            OpKind.SOFTMAX, (batch, heads, seq, seq),
            name="attention.softmax", layer=self.layer))
        probabilities = softmax(scores, axis=-1)

        # Weighted sum of values: the second batched MatMul of Dataflow 3.
        maybe_record(recorder, bmm_op(
            batch * heads, seq, seq, head_dim,
            name="attention.context", layer=self.layer))
        context = probabilities @ v

        maybe_record(recorder, elementwise_op(
            OpKind.TRANSPOSE, (batch, seq, heads, head_dim),
            name="attention.merge_heads", layer=self.layer))
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, width)
        return self.output.forward(context, recorder)
