"""The Protein BERT encoder (paper Figure 7).

One encoder layer is the attention sublayer (multi-head attention + residual
Add & Norm), the intermediate sublayer (wide projection + GELU), and the
output sublayer (narrow projection + residual Add & Norm).  Twelve layers
run consecutively; a downstream model (e.g. the binding-affinity regression)
consumes pooled features from the final hidden states.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..trace.ops import OpKind, elementwise_op
from ..trace.recorder import TraceRecorder, maybe_record
from .activations import gelu
from .attention import MultiHeadAttention
from .config import BertConfig
from .layers import Embedding, LayerNorm, Linear
from .weights import initialize_weights, validate_weights


class EncoderLayer:
    """One Protein BERT encoder layer: attention → intermediate → output."""

    def __init__(self, config: BertConfig, weights: Dict[str, np.ndarray],
                 index: int) -> None:
        prefix = f"layer.{index}"
        self.index = index
        self.config = config
        self.attention = MultiHeadAttention(
            config,
            query=Linear(weights[f"{prefix}.attention.query.weight"],
                         weights[f"{prefix}.attention.query.bias"],
                         name=f"{prefix}.attention.query", layer=index),
            key=Linear(weights[f"{prefix}.attention.key.weight"],
                       weights[f"{prefix}.attention.key.bias"],
                       name=f"{prefix}.attention.key", layer=index),
            value=Linear(weights[f"{prefix}.attention.value.weight"],
                         weights[f"{prefix}.attention.value.bias"],
                         name=f"{prefix}.attention.value", layer=index),
            output=Linear(weights[f"{prefix}.attention.attention_output.weight"],
                          weights[f"{prefix}.attention.attention_output.bias"],
                          name=f"{prefix}.attention.output", layer=index),
            layer=index)
        self.attention_norm = LayerNorm(
            weights[f"{prefix}.attention.layernorm.gamma"],
            weights[f"{prefix}.attention.layernorm.beta"],
            eps=config.layer_norm_eps,
            name=f"{prefix}.attention.layernorm", layer=index)
        self.intermediate = Linear(
            weights[f"{prefix}.intermediate.weight"],
            weights[f"{prefix}.intermediate.bias"],
            name=f"{prefix}.intermediate", layer=index)
        self.output = Linear(
            weights[f"{prefix}.output.weight"],
            weights[f"{prefix}.output.bias"],
            name=f"{prefix}.output", layer=index)
        self.output_norm = LayerNorm(
            weights[f"{prefix}.output.layernorm.gamma"],
            weights[f"{prefix}.output.layernorm.beta"],
            eps=config.layer_norm_eps,
            name=f"{prefix}.output.layernorm", layer=index)

    def forward(self, hidden: np.ndarray,
                attention_mask: Optional[np.ndarray] = None,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        """Run one encoder layer over ``(batch, seq, hidden)`` activations."""
        attended = self.attention.forward(hidden, attention_mask, recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, hidden.shape,
            name=f"layer.{self.index}.attention.residual", layer=self.index))
        hidden = self.attention_norm.forward(attended + hidden, recorder)

        inner = self.intermediate.forward(hidden, recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.GELU, inner.shape,
            name=f"layer.{self.index}.gelu", layer=self.index))
        inner = gelu(inner)

        projected = self.output.forward(inner, recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, hidden.shape,
            name=f"layer.{self.index}.output.residual", layer=self.index))
        return self.output_norm.forward(projected + hidden, recorder)


class ProteinBert:
    """A NumPy Protein BERT encoder.

    Args:
        config: model hyperparameters (BERT-base by default).
        weights: flat weight dictionary; synthesized deterministically when
            omitted.
        seed: seed for synthesized weights.
    """

    def __init__(self, config: Optional[BertConfig] = None,
                 weights: Optional[Dict[str, np.ndarray]] = None,
                 seed: int = 0) -> None:
        self.config = config or BertConfig()
        if weights is None:
            weights = initialize_weights(self.config, seed=seed)
        else:
            validate_weights(weights, self.config)
        self.weights = weights
        self.token_embedding = Embedding(weights["embeddings.token"],
                                         name="embeddings.token")
        self.position_embedding = Embedding(weights["embeddings.position"],
                                            name="embeddings.position")
        self.embedding_norm = LayerNorm(
            weights["embeddings.layernorm.gamma"],
            weights["embeddings.layernorm.beta"],
            eps=self.config.layer_norm_eps, name="embeddings.layernorm")
        self.layers = [EncoderLayer(self.config, weights, i)
                       for i in range(self.config.num_layers)]

    def embed(self, token_ids: np.ndarray,
              recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        """Token + position embeddings followed by layer norm."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        batch, seq = token_ids.shape
        if seq > self.config.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position "
                f"{self.config.max_position}")
        tokens = self.token_embedding.forward(token_ids, recorder)
        positions = self.position_embedding.forward(
            np.tile(np.arange(seq), (batch, 1)), recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, tokens.shape, name="embeddings.add"))
        return self.embedding_norm.forward(tokens + positions, recorder)

    def forward(self, token_ids: np.ndarray,
                attention_mask: Optional[np.ndarray] = None,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        """Full encoder forward pass.

        Args:
            token_ids: ``(batch, seq)`` integer array.
            attention_mask: optional ``(batch, seq)`` 1/0 mask.
            recorder: optional trace recorder capturing the ATen op stream.

        Returns:
            Final hidden states, shape ``(batch, seq, hidden)``.
        """
        hidden = self.embed(token_ids, recorder)
        for layer in self.layers:
            hidden = layer.forward(hidden, attention_mask, recorder)
        return hidden

    def features(self, token_ids: np.ndarray,
                 attention_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Mean-pooled per-sequence features for downstream tasks.

        Pools final hidden states over real (unmasked) tokens, the standard
        TAPE-style feature extraction the binding study uses.
        """
        hidden = self.forward(token_ids, attention_mask)
        if attention_mask is None:
            return hidden.mean(axis=1)
        mask = attention_mask[..., None].astype(np.float32)
        totals = (hidden * mask).sum(axis=1)
        counts = np.maximum(mask.sum(axis=1), 1.0)
        return totals / counts
