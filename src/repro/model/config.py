"""Protein BERT model configuration.

The paper's Protein BERT "is identical in structure to human language BERT
models" (Section 2.1): a BERT-base encoder (12 layers, hidden 768, 12 heads,
intermediate 3072) over the amino-acid vocabulary, with input lengths from
~300 to 2000+ tokens.  The matrix sizes the paper quotes (m = 65536,
k = 768/3072, n = 768 for Dataflow 1; m = 1024, k = 64, n = 512 for the
attention dot products) all derive from this configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proteins.alphabet import DEFAULT_VOCABULARY


@dataclass(frozen=True)
class BertConfig:
    """Hyperparameters of a BERT-style encoder.

    Attributes:
        vocab_size: token vocabulary size (30 for the TAPE protein alphabet).
        hidden_size: model width (768 for BERT-base).
        num_layers: number of encoder layers (12).
        num_heads: attention heads per layer (12).
        intermediate_size: feed-forward inner width (3072).
        max_position: longest supported input length.
        layer_norm_eps: epsilon for layer normalization.
    """

    vocab_size: int = DEFAULT_VOCABULARY.size
    hidden_size: int = 768
    num_layers: int = 12
    num_heads: int = 12
    intermediate_size: int = 3072
    max_position: int = 2048
    layer_norm_eps: float = 1e-12

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must divide evenly across heads")
        for name in ("vocab_size", "hidden_size", "num_layers", "num_heads",
                     "intermediate_size", "max_position"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head dimension (64 for BERT-base)."""
        return self.hidden_size // self.num_heads

    @property
    def parameter_count(self) -> int:
        """Total learned parameters in the encoder stack plus embeddings."""
        embed = (self.vocab_size + self.max_position) * self.hidden_size
        embed_norm = 2 * self.hidden_size
        per_layer = (
            4 * (self.hidden_size * self.hidden_size + self.hidden_size)
            + 2 * (self.hidden_size * self.intermediate_size)
            + self.intermediate_size + self.hidden_size
            + 2 * (2 * self.hidden_size))
        return embed + embed_norm + self.num_layers * per_layer


def protein_bert_base() -> BertConfig:
    """The Protein BERT configuration used throughout the paper."""
    return BertConfig()


def protein_bert_tiny(num_layers: int = 2, hidden_size: int = 64,
                      num_heads: int = 4, intermediate_size: int = 128,
                      max_position: int = 256) -> BertConfig:
    """A scaled-down configuration for fast functional tests."""
    return BertConfig(hidden_size=hidden_size, num_layers=num_layers,
                      num_heads=num_heads, intermediate_size=intermediate_size,
                      max_position=max_position)
