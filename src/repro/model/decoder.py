"""Transformer decoder layers — the paper's stated extension path.

Conclusion: "By swapping out the transformer model weights being
accelerated (e.g., adding decoder layers for language translation) ...
ProSE is easily applicable to a multitude of other protein and NLP-
related tasks."  This module adds that capability: a causal decoder layer
with self-attention, encoder-decoder cross-attention, and the same
GELU feed-forward block, so encoder-decoder models (translation,
sequence-to-sequence protein design) run on the same substrate.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..trace.ops import OpKind, bmm_op, elementwise_op
from ..trace.recorder import TraceRecorder, maybe_record
from .activations import gelu, softmax
from .attention import ATTENTION_MASK_VALUE
from .config import BertConfig
from .layers import Embedding, LayerNorm, Linear
from .weights import _truncated_normal


def causal_mask(seq_len: int) -> np.ndarray:
    """Lower-triangular additive attention bias of shape (seq, seq)."""
    bias = np.triu(np.full((seq_len, seq_len), ATTENTION_MASK_VALUE,
                           dtype=np.float32), k=1)
    return bias


class CrossAttention:
    """Multi-head attention with separate query and key/value sources.

    With ``kv`` equal to the query source and a causal bias this is the
    decoder's masked self-attention; with ``kv`` set to the encoder
    output it is encoder-decoder cross-attention.
    """

    def __init__(self, config: BertConfig, query: Linear, key: Linear,
                 value: Linear, output: Linear, name: str = "cross",
                 layer: int = -1) -> None:
        self.config = config
        self.query = query
        self.key = key
        self.value = value
        self.output = output
        self.name = name
        self.layer = layer

    def forward(self, hidden: np.ndarray, kv: np.ndarray,
                additive_bias: Optional[np.ndarray] = None,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        batch, q_len, width = hidden.shape
        kv_len = kv.shape[1]
        cfg = self.config
        heads, head_dim = cfg.num_heads, cfg.head_dim

        q = self.query.forward(hidden, recorder)
        k = self.key.forward(kv, recorder)
        v = self.value.forward(kv, recorder)

        def split(x: np.ndarray, length: int) -> np.ndarray:
            maybe_record(recorder, elementwise_op(
                OpKind.TRANSPOSE, (batch, length, heads, head_dim),
                name=f"{self.name}.split_heads", layer=self.layer))
            return (x.reshape(batch, length, heads, head_dim)
                    .transpose(0, 2, 1, 3))

        qh = split(q, q_len)
        kh = split(k, kv_len)
        vh = split(v, kv_len)

        maybe_record(recorder, bmm_op(
            batch * heads, q_len, head_dim, kv_len,
            name=f"{self.name}.scores", layer=self.layer))
        scores = qh @ kh.transpose(0, 1, 3, 2)
        maybe_record(recorder, elementwise_op(
            OpKind.DIV, (batch, heads, q_len, kv_len),
            name=f"{self.name}.scale", layer=self.layer,
            metadata={"divisor": float(np.sqrt(head_dim))}))
        scores = scores / np.sqrt(head_dim).astype(np.float32)
        if additive_bias is not None:
            maybe_record(recorder, elementwise_op(
                OpKind.ADD, (batch, heads, q_len, kv_len),
                name=f"{self.name}.bias", layer=self.layer))
            scores = scores + additive_bias.astype(np.float32)

        maybe_record(recorder, elementwise_op(
            OpKind.SOFTMAX, (batch, heads, q_len, kv_len),
            name=f"{self.name}.softmax", layer=self.layer))
        probabilities = softmax(scores, axis=-1)

        maybe_record(recorder, bmm_op(
            batch * heads, q_len, kv_len, head_dim,
            name=f"{self.name}.context", layer=self.layer))
        context = probabilities @ vh
        maybe_record(recorder, elementwise_op(
            OpKind.TRANSPOSE, (batch, q_len, heads, head_dim),
            name=f"{self.name}.merge_heads", layer=self.layer))
        merged = context.transpose(0, 2, 1, 3).reshape(batch, q_len, width)
        return self.output.forward(merged, recorder)


def initialize_decoder_weights(config: BertConfig, seed: int = 0
                               ) -> Dict[str, np.ndarray]:
    """Deterministic weights for a decoder stack (flat dotted keys)."""
    rng = np.random.default_rng(seed + 10_000)
    weights: Dict[str, np.ndarray] = {}
    h, inter = config.hidden_size, config.intermediate_size
    weights["decoder.embeddings.token"] = _truncated_normal(
        rng, (config.vocab_size, h))
    weights["decoder.embeddings.position"] = _truncated_normal(
        rng, (config.max_position, h))
    weights["decoder.embeddings.layernorm.gamma"] = np.ones(
        h, dtype=np.float32)
    weights["decoder.embeddings.layernorm.beta"] = np.zeros(
        h, dtype=np.float32)
    for index in range(config.num_layers):
        prefix = f"decoder.layer.{index}"
        for block in ("self", "cross"):
            for proj in ("query", "key", "value", "output"):
                weights[f"{prefix}.{block}.{proj}.weight"] = \
                    _truncated_normal(rng, (h, h))
                weights[f"{prefix}.{block}.{proj}.bias"] = np.zeros(
                    h, dtype=np.float32)
            weights[f"{prefix}.{block}.layernorm.gamma"] = np.ones(
                h, dtype=np.float32)
            weights[f"{prefix}.{block}.layernorm.beta"] = np.zeros(
                h, dtype=np.float32)
        weights[f"{prefix}.intermediate.weight"] = _truncated_normal(
            rng, (h, inter))
        weights[f"{prefix}.intermediate.bias"] = np.zeros(
            inter, dtype=np.float32)
        weights[f"{prefix}.output.weight"] = _truncated_normal(
            rng, (inter, h))
        weights[f"{prefix}.output.bias"] = np.zeros(h, dtype=np.float32)
        weights[f"{prefix}.output.layernorm.gamma"] = np.ones(
            h, dtype=np.float32)
        weights[f"{prefix}.output.layernorm.beta"] = np.zeros(
            h, dtype=np.float32)
    return weights


class DecoderLayer:
    """Masked self-attention → cross-attention → feed-forward."""

    def __init__(self, config: BertConfig, weights: Dict[str, np.ndarray],
                 index: int) -> None:
        prefix = f"decoder.layer.{index}"
        self.index = index
        self.config = config

        def attention(block: str) -> CrossAttention:
            return CrossAttention(
                config,
                query=Linear(weights[f"{prefix}.{block}.query.weight"],
                             weights[f"{prefix}.{block}.query.bias"],
                             name=f"{prefix}.{block}.query", layer=index),
                key=Linear(weights[f"{prefix}.{block}.key.weight"],
                           weights[f"{prefix}.{block}.key.bias"],
                           name=f"{prefix}.{block}.key", layer=index),
                value=Linear(weights[f"{prefix}.{block}.value.weight"],
                             weights[f"{prefix}.{block}.value.bias"],
                             name=f"{prefix}.{block}.value", layer=index),
                output=Linear(weights[f"{prefix}.{block}.output.weight"],
                              weights[f"{prefix}.{block}.output.bias"],
                              name=f"{prefix}.{block}.output", layer=index),
                name=f"{prefix}.{block}", layer=index)

        self.self_attention = attention("self")
        self.self_norm = LayerNorm(
            weights[f"{prefix}.self.layernorm.gamma"],
            weights[f"{prefix}.self.layernorm.beta"],
            name=f"{prefix}.self.layernorm", layer=index)
        self.cross_attention = attention("cross")
        self.cross_norm = LayerNorm(
            weights[f"{prefix}.cross.layernorm.gamma"],
            weights[f"{prefix}.cross.layernorm.beta"],
            name=f"{prefix}.cross.layernorm", layer=index)
        self.intermediate = Linear(
            weights[f"{prefix}.intermediate.weight"],
            weights[f"{prefix}.intermediate.bias"],
            name=f"{prefix}.intermediate", layer=index)
        self.output = Linear(
            weights[f"{prefix}.output.weight"],
            weights[f"{prefix}.output.bias"],
            name=f"{prefix}.output", layer=index)
        self.output_norm = LayerNorm(
            weights[f"{prefix}.output.layernorm.gamma"],
            weights[f"{prefix}.output.layernorm.beta"],
            name=f"{prefix}.output.layernorm", layer=index)

    def forward(self, hidden: np.ndarray, encoder_hidden: np.ndarray,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        batch, tgt_len, _ = hidden.shape
        bias = causal_mask(tgt_len)[None, None]
        attended = self.self_attention.forward(hidden, hidden, bias,
                                               recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, hidden.shape,
            name=f"decoder.layer.{self.index}.self.residual",
            layer=self.index))
        hidden = self.self_norm.forward(attended + hidden, recorder)

        crossed = self.cross_attention.forward(hidden, encoder_hidden,
                                               None, recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, hidden.shape,
            name=f"decoder.layer.{self.index}.cross.residual",
            layer=self.index))
        hidden = self.cross_norm.forward(crossed + hidden, recorder)

        inner = self.intermediate.forward(hidden, recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.GELU, inner.shape,
            name=f"decoder.layer.{self.index}.gelu", layer=self.index))
        inner = gelu(inner)
        projected = self.output.forward(inner, recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, hidden.shape,
            name=f"decoder.layer.{self.index}.output.residual",
            layer=self.index))
        return self.output_norm.forward(projected + hidden, recorder)


class ProteinSeq2Seq:
    """An encoder-decoder protein model on the same ProSE substrate.

    Pairs the standard :class:`~repro.model.bert.ProteinBert` encoder
    with a causal decoder stack — the "adding decoder layers" extension
    the paper's conclusion describes.
    """

    def __init__(self, config: Optional[BertConfig] = None,
                 seed: int = 0) -> None:
        from .bert import ProteinBert

        self.config = config or BertConfig()
        self.encoder = ProteinBert(self.config, seed=seed)
        weights = initialize_decoder_weights(self.config, seed=seed)
        self.weights = weights
        self.token_embedding = Embedding(
            weights["decoder.embeddings.token"],
            name="decoder.embeddings.token")
        self.position_embedding = Embedding(
            weights["decoder.embeddings.position"],
            name="decoder.embeddings.position")
        self.embedding_norm = LayerNorm(
            weights["decoder.embeddings.layernorm.gamma"],
            weights["decoder.embeddings.layernorm.beta"],
            name="decoder.embeddings.layernorm")
        self.layers = [DecoderLayer(self.config, weights, i)
                       for i in range(self.config.num_layers)]

    def forward(self, source_ids: np.ndarray, target_ids: np.ndarray,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        """Encode the source and decode the target (teacher-forced).

        Returns the decoder's final hidden states
        ``(batch, tgt_len, hidden)``.
        """
        encoder_hidden = self.encoder.forward(source_ids,
                                              recorder=recorder)
        target_ids = np.asarray(target_ids)
        batch, tgt_len = target_ids.shape
        tokens = self.token_embedding.forward(target_ids, recorder)
        positions = self.position_embedding.forward(
            np.tile(np.arange(tgt_len), (batch, 1)), recorder)
        maybe_record(recorder, elementwise_op(
            OpKind.ADD, tokens.shape, name="decoder.embeddings.add"))
        hidden = self.embedding_norm.forward(tokens + positions, recorder)
        for layer in self.layers:
            hidden = layer.forward(hidden, encoder_hidden, recorder)
        return hidden
