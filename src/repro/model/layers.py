"""Basic neural-network layers for the NumPy Protein BERT encoder.

Each layer's forward pass optionally records the ATen-level ops it performs
into a :class:`~repro.trace.recorder.TraceRecorder`, mirroring the PyTorch
JIT instrumentation of the paper's Figure 15.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..trace.ops import OpKind, elementwise_op, matmul_op
from ..trace.recorder import TraceRecorder, maybe_record
from .activations import layer_norm


class Linear:
    """Affine projection ``y = x @ W + b``.

    Args:
        weight: array of shape ``(in_features, out_features)``.
        bias: array of shape ``(out_features,)`` or None.
        name: provenance label used in traces.
        layer: encoder layer index for trace records.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                 name: str = "linear", layer: int = -1) -> None:
        if weight.ndim != 2:
            raise ValueError("Linear weight must be 2-D (in, out)")
        if bias is not None and bias.shape != (weight.shape[1],):
            raise ValueError("Linear bias shape must match out_features")
        self.weight = np.asarray(weight, dtype=np.float32)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float32)
        self.name = name
        self.layer = layer

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        """Apply the projection to ``x`` of shape ``(..., in_features)``."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last dim {self.in_features}, "
                f"got {x.shape[-1]}")
        rows = int(np.prod(x.shape[:-1]))
        maybe_record(recorder, matmul_op(
            rows, self.in_features, self.out_features,
            name=self.name, layer=self.layer))
        y = x @ self.weight
        if self.bias is not None:
            maybe_record(recorder, elementwise_op(
                OpKind.ADD, x.shape[:-1] + (self.out_features,),
                name=f"{self.name}.bias", layer=self.layer,
                metadata={"vector_operand": 1.0}))
            y = y + self.bias
        return y


class LayerNorm:
    """Layer normalization with learned scale and shift."""

    def __init__(self, gamma: np.ndarray, beta: np.ndarray,
                 eps: float = 1e-12, name: str = "layernorm",
                 layer: int = -1) -> None:
        if gamma.shape != beta.shape or gamma.ndim != 1:
            raise ValueError("LayerNorm gamma/beta must be equal-shape 1-D")
        self.gamma = np.asarray(gamma, dtype=np.float32)
        self.beta = np.asarray(beta, dtype=np.float32)
        self.eps = eps
        self.name = name
        self.layer = layer

    def forward(self, x: np.ndarray,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        if x.shape[-1] != self.gamma.shape[0]:
            raise ValueError(f"{self.name}: feature dim mismatch")
        maybe_record(recorder, elementwise_op(
            OpKind.LAYERNORM, x.shape, name=self.name, layer=self.layer))
        return layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Embedding:
    """Token / position embedding lookup."""

    def __init__(self, table: np.ndarray, name: str = "embedding") -> None:
        if table.ndim != 2:
            raise ValueError("Embedding table must be 2-D (vocab, hidden)")
        self.table = np.asarray(table, dtype=np.float32)
        self.name = name

    @property
    def num_embeddings(self) -> int:
        return self.table.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.table.shape[1]

    def forward(self, ids: np.ndarray,
                recorder: Optional[TraceRecorder] = None) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise ValueError(f"{self.name}: token id out of range")
        maybe_record(recorder, elementwise_op(
            OpKind.EMBEDDING, ids.shape + (self.embedding_dim,),
            name=self.name))
        return self.table[ids]
