"""bfloat16 emulation on top of NumPy float32.

ProSE computes MACs in bfloat16 and accumulates in 32-bit (paper Figure 10b),
"similar to TPUs to prevent precision loss".  NumPy has no native bfloat16,
so we emulate it exactly: a bfloat16 value is a float32 whose low 16 mantissa
bits are zero.  Rounding uses round-to-nearest-even on the discarded bits,
which matches hardware bfloat16 converters.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Number of mantissa bits explicitly stored by bfloat16.
BF16_MANTISSA_BITS = 7

#: Exponent bias shared by bfloat16 and float32.
EXPONENT_BIAS = 127


def to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round float values to the nearest bfloat16, returned as float32.

    Implements round-to-nearest-even: add ``0x7FFF + lsb`` to the uint32
    view before truncating the low 16 bits.  NaNs are preserved.
    """
    array = np.ascontiguousarray(values, dtype=np.float32)
    bits = array.view(np.uint32)
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    # `rounded & mask` allocates a fresh buffer, so viewing it as float32
    # needs no defensive copy.
    result = (rounded & np.uint32(0xFFFF0000)).view(np.float32)
    nan_mask = np.isnan(array)
    if nan_mask.any():
        result[nan_mask] = np.float32("nan")
    return result.reshape(np.shape(values))


def is_bfloat16(values: np.ndarray) -> np.ndarray:
    """Elementwise check that values are exactly representable in bfloat16."""
    array = np.ascontiguousarray(values, dtype=np.float32)
    bits = array.view(np.uint32)
    return ((bits & np.uint32(0xFFFF)) == 0) | np.isnan(array)


def bf16_decompose(value: float) -> Tuple[int, int, int]:
    """Split a bfloat16 value into (sign, biased exponent, mantissa) fields.

    The special-function lookup tables (:mod:`repro.arch.lut`) index on these
    fields exactly as the hardware's two-level indexed lookup would.
    """
    bits = int(np.float32(value).view(np.uint32))
    sign = (bits >> 31) & 0x1
    exponent = (bits >> 23) & 0xFF
    mantissa = (bits >> (23 - BF16_MANTISSA_BITS)) & ((1 << BF16_MANTISSA_BITS) - 1)
    return sign, exponent, mantissa


def bf16_compose(sign: int, exponent: int, mantissa: int) -> float:
    """Inverse of :func:`bf16_decompose`."""
    if not 0 <= sign <= 1:
        raise ValueError("sign must be 0 or 1")
    if not 0 <= exponent <= 0xFF:
        raise ValueError("biased exponent must fit in 8 bits")
    if not 0 <= mantissa < (1 << BF16_MANTISSA_BITS):
        raise ValueError("mantissa must fit in 7 bits")
    bits = (sign << 31) | (exponent << 23) | (mantissa << (23 - BF16_MANTISSA_BITS))
    return float(np.uint32(bits).view(np.float32))


def bf16_unbiased_exponent(value: float) -> int:
    """Unbiased exponent of a bfloat16 value (used by LUT range checks)."""
    _, exponent, _ = bf16_decompose(value)
    return exponent - EXPONENT_BIAS


def all_bf16_values(exponent_range: Tuple[int, int],
                    include_negative: bool = True) -> np.ndarray:
    """Enumerate every finite bfloat16 value with unbiased exponent in range.

    Args:
        exponent_range: inclusive ``(low, high)`` unbiased exponent window.
        include_negative: also emit the negative half of the domain.

    Returns:
        A 1-D float32 array of distinct bfloat16 values, ascending.
    """
    low, high = exponent_range
    values = []
    signs = (0, 1) if include_negative else (0,)
    for sign in signs:
        for exponent in range(low + EXPONENT_BIAS, high + EXPONENT_BIAS + 1):
            for mantissa in range(1 << BF16_MANTISSA_BITS):
                values.append(bf16_compose(sign, exponent, mantissa))
    return np.array(sorted(set(values)), dtype=np.float32)


def quantization_error(values: np.ndarray) -> np.ndarray:
    """Absolute error introduced by rounding ``values`` to bfloat16."""
    array = np.asarray(values, dtype=np.float32)
    return np.abs(array - to_bfloat16(array))
