"""Weight initialization, save, and load for the Protein BERT encoder.

The paper uses TAPE's public pre-trained ProteinBERT weights.  Those weights
are not redistributable here, so we generate deterministic synthetic weights
with the standard BERT initialization (truncated normal, std 0.02).  Every
architecture-side result in the paper depends only on tensor *shapes*, which
are identical; the binding study's need for informative features is met by
random-feature projections (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from .config import BertConfig

#: Standard BERT initializer scale.
INIT_STD = 0.02


def _truncated_normal(rng: np.random.Generator, shape, std: float = INIT_STD
                      ) -> np.ndarray:
    """Truncated normal at ±2 std, matching BERT's initializer."""
    values = rng.normal(0.0, std, size=shape)
    return np.clip(values, -2.0 * std, 2.0 * std).astype(np.float32)


def initialize_weights(config: BertConfig, seed: int = 0
                       ) -> Dict[str, np.ndarray]:
    """Create a full, deterministic weight dictionary for ``config``.

    Keys follow a flat dotted scheme, e.g. ``"layer.3.attention.query.weight"``.
    """
    rng = np.random.default_rng(seed)
    weights: Dict[str, np.ndarray] = {}
    hidden, inter = config.hidden_size, config.intermediate_size

    weights["embeddings.token"] = _truncated_normal(
        rng, (config.vocab_size, hidden))
    weights["embeddings.position"] = _truncated_normal(
        rng, (config.max_position, hidden))
    weights["embeddings.layernorm.gamma"] = np.ones(hidden, dtype=np.float32)
    weights["embeddings.layernorm.beta"] = np.zeros(hidden, dtype=np.float32)

    for index in range(config.num_layers):
        prefix = f"layer.{index}"
        for proj in ("query", "key", "value", "attention_output"):
            weights[f"{prefix}.attention.{proj}.weight"] = _truncated_normal(
                rng, (hidden, hidden))
            weights[f"{prefix}.attention.{proj}.bias"] = np.zeros(
                hidden, dtype=np.float32)
        weights[f"{prefix}.attention.layernorm.gamma"] = np.ones(
            hidden, dtype=np.float32)
        weights[f"{prefix}.attention.layernorm.beta"] = np.zeros(
            hidden, dtype=np.float32)
        weights[f"{prefix}.intermediate.weight"] = _truncated_normal(
            rng, (hidden, inter))
        weights[f"{prefix}.intermediate.bias"] = np.zeros(
            inter, dtype=np.float32)
        weights[f"{prefix}.output.weight"] = _truncated_normal(
            rng, (inter, hidden))
        weights[f"{prefix}.output.bias"] = np.zeros(hidden, dtype=np.float32)
        weights[f"{prefix}.output.layernorm.gamma"] = np.ones(
            hidden, dtype=np.float32)
        weights[f"{prefix}.output.layernorm.beta"] = np.zeros(
            hidden, dtype=np.float32)
    return weights


def pretrained_like_weights(config: BertConfig, seed: int = 0,
                            descriptor_scale: float = 0.3
                            ) -> Dict[str, np.ndarray]:
    """Synthetic weights that mimic *pretrained* protein LM structure.

    Pretrained protein language models are known to embed amino acids so
    that biochemical descriptors (hydropathy, charge, volume) are linearly
    recoverable from the token embeddings.  TAPE's actual weights are not
    redistributable, so this initializer reproduces that property: the
    first three embedding dimensions carry the normalized Kyte-Doolittle
    hydropathy, side-chain charge, and side-chain volume of each amino
    acid, at a magnitude (``descriptor_scale``) that survives layer mixing.
    The binding study (Section 2.2) relies on exactly this structure.
    """
    from ..proteins.alphabet import CHARGE, HYDROPATHY, VOLUME, \
        DEFAULT_VOCABULARY

    weights = initialize_weights(config, seed=seed)
    table = weights["embeddings.token"]
    vocab = DEFAULT_VOCABULARY
    for token_id, token in enumerate(vocab.tokens):
        if token_id >= config.vocab_size or len(token) != 1:
            continue  # special tokens keep their random embeddings
        hydro = HYDROPATHY.get(token, 0.0) / 4.5
        charge = CHARGE.get(token, 0.0)
        volume = (VOLUME.get(token, 140.0) - 140.0) / 90.0
        table[token_id, 0] = descriptor_scale * hydro
        table[token_id, 1] = descriptor_scale * charge
        table[token_id, 2] = descriptor_scale * volume
    return weights


def save_weights(weights: Dict[str, np.ndarray],
                 path: Union[str, Path]) -> None:
    """Persist a weight dictionary as a compressed ``.npz`` archive."""
    np.savez_compressed(str(path), **weights)


def load_weights(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load a weight dictionary saved by :func:`save_weights`."""
    with np.load(str(path)) as archive:
        return {key: archive[key] for key in archive.files}


def validate_weights(weights: Dict[str, np.ndarray],
                     config: BertConfig) -> None:
    """Raise ``ValueError`` if any expected tensor is missing or mis-shaped."""
    expected = initialize_weights(config, seed=0)
    missing = sorted(set(expected) - set(weights))
    if missing:
        raise ValueError(f"missing weight tensors: {missing[:5]}...")
    for key, reference in expected.items():
        if weights[key].shape != reference.shape:
            raise ValueError(
                f"weight {key}: expected shape {reference.shape}, "
                f"got {weights[key].shape}")
