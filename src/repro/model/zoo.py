"""Protein language model zoo.

The paper's workflow "automatically improve[s] (without manual
engineering) as larger and more powerful Protein BERT-style models are
developed [8, 35, 45]" and its streaming design "prevents unscalable
memory usage on large models".  This registry captures the public model
scales those citations refer to — TAPE's ProteinBERT, the ESM family, and
the standard BERT sizes — so scalability experiments can sweep them.
"""

from __future__ import annotations

from typing import Dict, List

from .config import BertConfig

#: Named configurations (protein vocabulary throughout).
MODEL_ZOO: Dict[str, BertConfig] = {
    # TAPE's transformer: BERT-base sized — the paper's Protein BERT.
    "tape-bert": BertConfig(hidden_size=768, num_layers=12, num_heads=12,
                            intermediate_size=3072, max_position=2048),
    # BERT-large sized protein model.
    "protein-bert-large": BertConfig(hidden_size=1024, num_layers=24,
                                     num_heads=16, intermediate_size=4096,
                                     max_position=2048),
    # ESM-1b (Rives et al. 2021): 33 layers, width 1280.
    "esm-1b": BertConfig(hidden_size=1280, num_layers=33, num_heads=20,
                         intermediate_size=5120, max_position=2048),
    # ESM-small (esm-1v-ish 6-layer distillation scale).
    "esm-small": BertConfig(hidden_size=768, num_layers=6, num_heads=12,
                            intermediate_size=3072, max_position=2048),
    # MobileBERT-ish compact protein model for edge scenarios.
    "protein-bert-compact": BertConfig(hidden_size=512, num_layers=12,
                                       num_heads=8, intermediate_size=1024,
                                       max_position=2048),
}


def get_model_config(name: str) -> BertConfig:
    """Look up a zoo configuration by name."""
    try:
        return MODEL_ZOO[name]
    except KeyError as error:
        raise KeyError(
            f"unknown model '{name}'; known: {sorted(MODEL_ZOO)}"
        ) from error


def zoo_names() -> List[str]:
    """Registered model names, smallest parameter count first."""
    return sorted(MODEL_ZOO, key=lambda name: MODEL_ZOO[name].parameter_count)


def describe(name: str) -> str:
    """One-line summary of a zoo model."""
    config = get_model_config(name)
    return (f"{name}: {config.num_layers}L x {config.hidden_size}h "
            f"({config.num_heads} heads, FFN {config.intermediate_size}) "
            f"- {config.parameter_count / 1e6:.0f}M params")
