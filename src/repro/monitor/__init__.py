"""Live monitoring: sim-time SLOs, error budgets, burn-rate alerts.

Sits on top of :mod:`repro.telemetry.timeseries` and plugs into the
fleet and serving simulators through an optional ``monitor=`` parameter
(mirroring ``tracer=``/``metrics=``): pass ``None`` and every simulated
number stays bit-identical; pass a :class:`Monitor` and the run also
produces a deterministic alert timeline, per-SLO error budgets, and an
ASCII dashboard.

Typical use::

    from repro.monitor import fleet_monitor, render_dashboard

    monitor = fleet_monitor()
    report = simulator.run(batch, scenario=scenario, monitor=monitor)
    print(render_dashboard(monitor))
    print(report.slo.summary())
"""

from .alerts import (
    PAGE,
    SEVERITIES,
    TICKET,
    Alert,
    BurnRateRule,
    ThresholdRule,
)
from .dashboard import (
    budget_gauge,
    format_alert_report,
    render_dashboard,
    sparkline,
)
from .engine import (
    DEFAULT_SAMPLES,
    Mark,
    Monitor,
    MonitorReport,
    SloOutcome,
    fleet_monitor,
    fleet_rules,
    fleet_slos,
    serving_monitor,
    serving_rules,
    serving_slos,
)
from .slo import (
    AVAILABILITY,
    LATENCY,
    OBJECTIVES,
    SLO,
    BudgetStatus,
    SLOTracker,
)

__all__ = [
    "AVAILABILITY",
    "Alert",
    "BudgetStatus",
    "BurnRateRule",
    "DEFAULT_SAMPLES",
    "LATENCY",
    "Mark",
    "Monitor",
    "MonitorReport",
    "OBJECTIVES",
    "PAGE",
    "SEVERITIES",
    "SLO",
    "SLOTracker",
    "SloOutcome",
    "TICKET",
    "ThresholdRule",
    "budget_gauge",
    "fleet_monitor",
    "fleet_rules",
    "fleet_slos",
    "format_alert_report",
    "render_dashboard",
    "serving_monitor",
    "serving_rules",
    "serving_slos",
    "sparkline",
]
