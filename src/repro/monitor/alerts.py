"""Alert rules: multi-window multi-burn-rate and simple thresholds.

Two rule classes, both evaluated at every monitor tick:

* :class:`BurnRateRule` — the Google-SRE shape: fire when the SLO's
  burn rate exceeds a threshold over a *long* window AND over a *short*
  window simultaneously.  The long window gives the alert statistical
  weight (one bad tick cannot page); the short window makes it reset
  fast once the incident is over (without it, a long window stays
  poisoned and the alert can neither re-fire nor resolve promptly).
  Windows are fractions of the monitoring horizon so one rule set
  scales from millisecond smoke runs to full campaigns;
* :class:`ThresholdRule` — fire while a time series' latest sample
  violates a comparison (shed work observed, queue depth above a
  limit).

Rules are edge-triggered: an :class:`Alert` is appended when the
condition first holds, resolved when it first stops holding, and a new
activation appends a fresh alert — so the alert list *is* the incident
timeline.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Alert severities, mildest first.
TICKET = "ticket"
PAGE = "page"

SEVERITIES = (TICKET, PAGE)

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when an SLO burns its budget too fast in two windows at once.

    Attributes:
        name: rule name (unique within a monitor).
        slo: name of the SLO whose burn rate is evaluated.
        severity: :data:`PAGE` or :data:`TICKET`.
        burn_threshold: minimum burn rate (in budgets-per-horizon) that
            both windows must exceed.
        long_window_fraction: long window length as a fraction of the
            monitoring horizon.
        short_window_fraction: short window length, likewise; must not
            exceed the long window.
    """

    name: str
    slo: str
    severity: str = PAGE
    burn_threshold: float = 14.4
    long_window_fraction: float = 0.05
    short_window_fraction: float = 0.015

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity '{self.severity}'; "
                             f"choose from {SEVERITIES}")
        if self.burn_threshold <= 0.0:
            raise ValueError("burn_threshold must be positive")
        if not 0.0 < self.short_window_fraction \
                <= self.long_window_fraction:
            raise ValueError("windows must satisfy 0 < short <= long")


@dataclass(frozen=True)
class ThresholdRule:
    """Fire while a series' latest sample violates a comparison."""

    name: str
    series: str
    op: str = ">"
    threshold: float = 0.0
    severity: str = TICKET

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison '{self.op}'; choose "
                             f"from {tuple(_OPS)}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity '{self.severity}'; "
                             f"choose from {SEVERITIES}")

    def violated(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass
class Alert:
    """One rule activation: fired at a tick, resolved when it cleared.

    Attributes:
        rule: the firing rule's name.
        severity: the rule's severity at firing time.
        fired_at: sim-time of the first violating evaluation.
        value: the violating burn rate / series value at firing time.
        slo: the SLO a burn-rate rule watched (None for thresholds).
        resolved_at: sim-time the condition first stopped holding;
            None while still active at end of run.
        peak_value: worst value observed while active.
    """

    rule: str
    severity: str
    fired_at: float
    value: float
    slo: Optional[str] = None
    resolved_at: Optional[float] = None
    peak_value: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.peak_value < self.value:
            self.peak_value = self.value

    @property
    def active(self) -> bool:
        return self.resolved_at is None
