"""ASCII dashboard: sparklines, budget gauges, and alert timelines.

Pure string rendering over a finalized :class:`~.engine.Monitor` —
suitable for terminals, CI logs, and golden-file tests.  Layout:

.. code-block:: text

    monitor 'fleet' — horizon 12.345 ms, 128 ticks, 3 alerts
    series                         last        spark
    fleet/capacity_fraction       0.500        ▇▇▇▇▃▃▃▃▅▆▇▇
    ...
    error budgets
    availability   target 99.900%  [####................]  21.3% left
    alerts
    PAGE    availability-fast-burn  fired 4.321 ms  (+0.104 ms after fault)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .alerts import Alert
from .engine import Monitor, MonitorReport

#: Sparkline glyphs, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Rendered when a sparkline bin precedes the first sample.
SPARK_EMPTY = " "


def _format_seconds(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def sparkline(series, width: int = 48, start: float = 0.0,
              end: Optional[float] = None) -> str:
    """Render a series as a ``width``-character block-glyph strip.

    The timeline ``[start, end]`` is cut into ``width`` equal bins and
    each bin shows the step-function value at its right edge, normalised
    across the series' min/max (a constant series renders flat at the
    middle glyph).  Bins that end before the first sample render blank.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if end is None:
        end = series.last_time if series.last_time is not None else start
    if len(series) == 0 or end <= start:
        return SPARK_EMPTY * width
    values = [value for _t, value in series.samples()]
    lo, hi = min(values), max(values)
    span = hi - lo
    first_time = next(iter(series.samples()))[0]
    cells: List[str] = []
    for i in range(width):
        edge = start + (end - start) * (i + 1) / width
        if edge < first_time:
            cells.append(SPARK_EMPTY)
            continue
        value = series.value_at(edge)
        if span <= 0.0:
            cells.append(SPARK_GLYPHS[3])
            continue
        level = int((value - lo) / span * (len(SPARK_GLYPHS) - 1))
        cells.append(SPARK_GLYPHS[level])
    return "".join(cells)


def budget_gauge(remaining_fraction: float, width: int = 20) -> str:
    """``[####........]`` — filled cells are budget still unspent."""
    if width <= 0:
        raise ValueError("width must be positive")
    remaining = min(1.0, max(0.0, remaining_fraction))
    filled = int(round(remaining * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _alert_line(alert: Alert, fault_seconds: Optional[float]) -> str:
    parts = [f"{alert.severity.upper():<7}", f"{alert.rule:<24}",
             f"fired {_format_seconds(alert.fired_at)}"]
    if fault_seconds is not None and alert.fired_at >= fault_seconds:
        delta = alert.fired_at - fault_seconds
        parts.append(f"(+{_format_seconds(delta)} after fault)")
    parts.append(f"peak {alert.peak_value:.1f}")
    if alert.resolved_at is not None:
        parts.append(f"resolved {_format_seconds(alert.resolved_at)}")
    else:
        parts.append("still active")
    return "  ".join(parts)


def format_alert_report(report: MonitorReport) -> str:
    """The incident timeline: marks, then alerts with fault deltas."""
    lines = [f"alert report — monitor '{report.name}', "
             f"{len(report.alerts)} alert(s) "
             f"({len(report.pages)} page, {len(report.tickets)} ticket)"]
    for mark in report.marks:
        suffix = f" [{mark.target}]" if mark.target else ""
        lines.append(f"  mark    {mark.label:<24}at "
                     f"{_format_seconds(mark.at_seconds)}{suffix}")
    fault = report.fault_seconds
    for alert in report.alerts:
        lines.append("  " + _alert_line(alert, fault))
    if not report.alerts:
        lines.append("  (no alerts fired)")
    return "\n".join(lines)


def render_dashboard(monitor: Monitor, width: int = 48,
                     series_names: Optional[Sequence[str]] = None) -> str:
    """Full-panel dashboard: sparklines, budgets, then the alert log."""
    report = monitor.report()
    end = max(report.end_seconds, report.horizon_seconds)
    names = list(series_names) if series_names is not None \
        else [name for name in monitor.store.names()
              if not name.startswith("slo/")]
    lines = [f"monitor '{report.name}' — horizon "
             f"{_format_seconds(report.horizon_seconds)}, "
             f"{report.ticks} ticks, {len(report.alerts)} alert(s)"]
    if names:
        label_width = max(len(name) for name in names)
        lines.append(f"{'series':<{label_width}}  {'last':>10}  spark")
        for name in names:
            series = monitor.store.get(name)
            if series is None:
                continue
            last = series.last
            shown = f"{last:.3f}" if last is not None else "-"
            lines.append(f"{name:<{label_width}}  {shown:>10}  "
                         f"{sparkline(series, width=width, end=end)}")
    if report.budgets:
        lines.append("error budgets")
        for budget in report.budgets:
            lines.append(
                f"  {budget.slo:<14}target {budget.target:.3%}  "
                f"{budget_gauge(budget.remaining_fraction)}  "
                f"{budget.remaining_fraction:6.1%} left  "
                f"worst burn {budget.worst_burn_rate:.1f}")
    lines.append(format_alert_report(report))
    return "\n".join(lines)
