"""The monitor engine: sampling, SLO tracking, rule evaluation.

A :class:`Monitor` is the live-observability companion a simulator
carries through a run:

1. the simulator calls :meth:`Monitor.begin` with the *nominal horizon*
   (the fault-free makespan), which fixes the sample interval and
   scales every rule's windows;
2. at each sample tick it :meth:`record`\\ s instantaneous series values,
   feeds weighted good/bad events to the SLOs (:meth:`slo_event`), and
   calls :meth:`evaluate` — which snapshots the cumulative SLO series
   and runs every alert rule edge-triggered;
3. notable instants (fault injected, failure detected) land as
   :meth:`mark`\\ s, so the final report can state the incident timeline
   as *fault at t, detected at t+d, paged at t+p*;
4. :meth:`finalize` closes the run into an immutable
   :class:`MonitorReport`, and :meth:`MonitorReport.outcome` compresses
   that into the tiny :class:`SloOutcome` simulators attach to their
   own report dataclasses.

The engine is pure bookkeeping over the simulator's clock: it draws no
randomness and never writes back into the simulation, so enabling it
cannot change any simulated result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..telemetry.timeseries import TimeSeriesStore
from .alerts import (
    PAGE,
    TICKET,
    Alert,
    BurnRateRule,
    ThresholdRule,
)
from .slo import AVAILABILITY, LATENCY, SLO, BudgetStatus, SLOTracker

AlertRule = Union[BurnRateRule, ThresholdRule]

#: Default sample ticks across the nominal horizon.
DEFAULT_SAMPLES = 128


@dataclass(frozen=True)
class Mark:
    """A labelled instant on the monitoring timeline (fault, detection)."""

    at_seconds: float
    label: str
    target: str = ""


@dataclass(frozen=True)
class SloOutcome:
    """Compact service-impact summary attached to simulator reports."""

    alerts: int
    pages: int
    tickets: int
    worst_burn_rate: float
    budget_remaining: float
    fault_seconds: Optional[float] = None
    detection_seconds: Optional[float] = None
    first_page_seconds: Optional[float] = None

    @property
    def page_delay_seconds(self) -> Optional[float]:
        """Fault-to-page latency; None without both endpoints."""
        if self.fault_seconds is None or self.first_page_seconds is None:
            return None
        return self.first_page_seconds - self.fault_seconds

    def summary(self) -> str:
        parts = [f"alerts={self.alerts} (pages={self.pages})",
                 f"worst_burn={self.worst_burn_rate:.1f}",
                 f"budget_left={self.budget_remaining:.1%}"]
        delay = self.page_delay_seconds
        if delay is not None:
            parts.append(f"page_delay={delay * 1e3:.3f} ms")
        return " ".join(parts)


@dataclass(frozen=True)
class MonitorReport:
    """Everything one monitored run concluded, immutable."""

    name: str
    horizon_seconds: float
    end_seconds: float
    ticks: int
    sample_interval: float
    alerts: Tuple[Alert, ...]
    budgets: Tuple[BudgetStatus, ...]
    marks: Tuple[Mark, ...]

    @property
    def pages(self) -> Tuple[Alert, ...]:
        return tuple(a for a in self.alerts if a.severity == PAGE)

    @property
    def tickets(self) -> Tuple[Alert, ...]:
        return tuple(a for a in self.alerts if a.severity == TICKET)

    @property
    def worst_burn_rate(self) -> float:
        return max((b.worst_burn_rate for b in self.budgets), default=0.0)

    @property
    def budget_remaining(self) -> float:
        """Most-consumed SLO's remaining budget (1.0 with no SLOs)."""
        return min((b.remaining_fraction for b in self.budgets),
                   default=1.0)

    def first_mark(self, label: str) -> Optional[Mark]:
        for mark in self.marks:
            if mark.label == label:
                return mark
        return None

    @property
    def fault_seconds(self) -> Optional[float]:
        mark = self.first_mark("fault")
        return mark.at_seconds if mark else None

    @property
    def detection_seconds(self) -> Optional[float]:
        mark = self.first_mark("detection")
        return mark.at_seconds if mark else None

    def first_alert(self, severity: Optional[str] = None
                    ) -> Optional[Alert]:
        for alert in self.alerts:
            if severity is None or alert.severity == severity:
                return alert
        return None

    def outcome(self) -> SloOutcome:
        first_page = self.first_alert(PAGE)
        return SloOutcome(
            alerts=len(self.alerts), pages=len(self.pages),
            tickets=len(self.tickets),
            worst_burn_rate=self.worst_burn_rate,
            budget_remaining=self.budget_remaining,
            fault_seconds=self.fault_seconds,
            detection_seconds=self.detection_seconds,
            first_page_seconds=(first_page.fired_at
                                if first_page else None))


class Monitor:
    """Live time-series + SLO + alerting state for one simulated run.

    Args:
        slos: declarative objectives; burn-rate rules must reference
            them by name.
        rules: burn-rate and threshold rules, evaluated every tick.
        samples: sample ticks across the nominal horizon (the simulator
            keeps ticking at the same interval past it when a degraded
            run stretches).
        name: monitor label for dashboards/exports.
    """

    def __init__(self, slos: Sequence[SLO] = (),
                 rules: Sequence[AlertRule] = (),
                 samples: int = DEFAULT_SAMPLES,
                 name: str = "monitor") -> None:
        if samples < 2:
            raise ValueError("samples must be at least 2")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO names")
        self.name = name
        self.samples = samples
        self.store = TimeSeriesStore(name)
        self.slos = tuple(slos)
        self.rules = tuple(rules)
        self._trackers: Dict[str, SLOTracker] = {
            slo.name: SLOTracker(
                slo, self.store.series(f"slo/{slo.name}/good"),
                self.store.series(f"slo/{slo.name}/bad"))
            for slo in self.slos}
        for rule in self.rules:
            if isinstance(rule, BurnRateRule) \
                    and rule.slo not in self._trackers:
                raise ValueError(
                    f"rule '{rule.name}' references unknown SLO "
                    f"'{rule.slo}'")
        rule_names = [rule.name for rule in self.rules]
        if len(set(rule_names)) != len(rule_names):
            raise ValueError("duplicate rule names")
        self.horizon_seconds: Optional[float] = None
        self.sample_interval: float = 0.0
        self.alerts: List[Alert] = []
        self.marks: List[Mark] = []
        self.ticks = 0
        self._last_tick = 0.0
        self._active: Dict[str, Alert] = {}
        self._report: Optional[MonitorReport] = None

    # -- lifecycle -------------------------------------------------------

    def begin(self, horizon_seconds: float) -> None:
        """Arm the monitor for a run with the given nominal horizon."""
        if horizon_seconds <= 0.0:
            raise ValueError("horizon must be positive")
        if self.horizon_seconds is not None:
            raise ValueError("monitor already armed; use a fresh Monitor "
                             "per run")
        self.horizon_seconds = horizon_seconds
        self.sample_interval = horizon_seconds / self.samples

    @property
    def last_tick(self) -> float:
        """Sim-time of the most recent :meth:`evaluate` call."""
        return self._last_tick

    def _require_armed(self) -> float:
        if self.horizon_seconds is None:
            raise ValueError("call begin(horizon) before using the "
                             "monitor")
        return self.horizon_seconds

    # -- observation -----------------------------------------------------

    def record(self, t: float, name: str, value: float) -> None:
        """Sample one series value at sim-time ``t``."""
        self._require_armed()
        self.store.record(name, t, value)

    def slo_event(self, t: float, slo_name: str, good: float = 0.0,
                  bad: float = 0.0) -> None:
        """Feed weighted good/bad events to an SLO (unknown: no-op).

        Unknown names are ignored so instrumentation sites can emit
        their full vocabulary while a monitor tracks only the
        objectives it was configured with.
        """
        self._require_armed()
        tracker = self._trackers.get(slo_name)
        if tracker is not None:
            tracker.add(good=good, bad=bad)

    def mark(self, t: float, label: str, target: str = "") -> None:
        """Pin a labelled instant (fault, detection) on the timeline."""
        self._require_armed()
        self.marks.append(Mark(at_seconds=t, label=label, target=target))

    def slo(self, name: str) -> Optional[SLO]:
        tracker = self._trackers.get(name)
        return tracker.slo if tracker is not None else None

    def latency_threshold(self, nominal_seconds: float) -> Optional[float]:
        """The latency SLO's good/bad boundary for one nominal time."""
        for slo in self.slos:
            if slo.objective == LATENCY:
                return slo.latency_multiple * nominal_seconds
        return None

    # -- evaluation ------------------------------------------------------

    def evaluate(self, t: float) -> Tuple[Alert, ...]:
        """Snapshot SLO series and run every rule at sim-time ``t``.

        Returns the alerts that *fired at this tick* (handy for tests);
        the full list accumulates on :attr:`alerts`.
        """
        horizon = self._require_armed()
        self.ticks += 1
        self._last_tick = t
        for tracker in self._trackers.values():
            tracker.sample(t)
        fired_now: List[Alert] = []
        for rule in self.rules:
            value = self._rule_value(rule, t, horizon)
            violated = value is not None
            active = self._active.get(rule.name)
            if violated and active is None:
                alert = Alert(rule=rule.name, severity=rule.severity,
                              fired_at=t, value=value,
                              slo=(rule.slo if isinstance(
                                  rule, BurnRateRule) else None))
                self.alerts.append(alert)
                self._active[rule.name] = alert
                fired_now.append(alert)
            elif violated and active is not None:
                active.peak_value = max(active.peak_value, value)
            elif not violated and active is not None:
                active.resolved_at = t
                del self._active[rule.name]
        return tuple(fired_now)

    def _rule_value(self, rule: AlertRule, t: float,
                    horizon: float) -> Optional[float]:
        """The violating value, or None when the rule is quiet."""
        if isinstance(rule, BurnRateRule):
            tracker = self._trackers[rule.slo]
            long_burn = tracker.burn_rate(
                t - rule.long_window_fraction * horizon, t)
            short_burn = tracker.burn_rate(
                t - rule.short_window_fraction * horizon, t)
            if (long_burn is not None and short_burn is not None
                    and long_burn >= rule.burn_threshold
                    and short_burn >= rule.burn_threshold):
                return max(long_burn, short_burn)
            return None
        series = self.store.get(rule.series)
        value = series.last if series is not None else None
        if value is not None and rule.violated(value):
            return value
        return None

    # -- reporting -------------------------------------------------------

    def finalize(self, end_seconds: Optional[float] = None
                 ) -> MonitorReport:
        """Close the run into an immutable report (idempotent)."""
        horizon = self._require_armed()
        if self._report is None:
            self._report = MonitorReport(
                name=self.name, horizon_seconds=horizon,
                end_seconds=(end_seconds if end_seconds is not None
                             else self._last_tick),
                ticks=self.ticks, sample_interval=self.sample_interval,
                alerts=tuple(self.alerts),
                budgets=tuple(tracker.budget()
                              for tracker in self._trackers.values()),
                marks=tuple(self.marks))
        return self._report

    def report(self) -> MonitorReport:
        """The finalized report (finalizing at the last tick if needed)."""
        return self.finalize()


# -- presets -------------------------------------------------------------

def fleet_slos() -> Tuple[SLO, ...]:
    """The fleet objective: serve on (nearly) all provisioned capacity."""
    return (SLO(name="availability", objective=AVAILABILITY, target=0.999,
                description="schedulable capacity over provisioned"),)


def fleet_rules() -> Tuple[AlertRule, ...]:
    """Google-SRE-style ladder scaled to one campaign horizon."""
    return (
        BurnRateRule(name="availability-fast-burn", slo="availability",
                     severity=PAGE, burn_threshold=14.4,
                     long_window_fraction=0.05,
                     short_window_fraction=0.015),
        BurnRateRule(name="availability-slow-burn", slo="availability",
                     severity=PAGE, burn_threshold=6.0,
                     long_window_fraction=0.25,
                     short_window_fraction=0.05),
        BurnRateRule(name="availability-budget", slo="availability",
                     severity=TICKET, burn_threshold=1.0,
                     long_window_fraction=1.0,
                     short_window_fraction=0.25),
        ThresholdRule(name="shed-work", series="fleet/shed", op=">",
                      threshold=0.0, severity=TICKET),
        ThresholdRule(name="outage-backlog", series="fleet/backlog",
                      op=">", threshold=0.0, severity=PAGE),
    )


def fleet_monitor(samples: int = DEFAULT_SAMPLES) -> Monitor:
    """A monitor preconfigured for :class:`~repro.fleet.FleetSimulator`."""
    return Monitor(slos=fleet_slos(), rules=fleet_rules(),
                   samples=samples, name="fleet")


def serving_slos() -> Tuple[SLO, ...]:
    """Serving objectives: finish batches, and finish them on time."""
    return (
        SLO(name="latency", objective=LATENCY, target=0.95,
            latency_multiple=1.5,
            description="batch served within 1.5x its nominal time"),
        SLO(name="availability", objective=AVAILABILITY, target=0.999,
            description="sequences served (not dropped)"),
    )


def serving_rules() -> Tuple[AlertRule, ...]:
    return (
        BurnRateRule(name="latency-fast-burn", slo="latency",
                     severity=PAGE, burn_threshold=4.0,
                     long_window_fraction=0.1,
                     short_window_fraction=0.02),
        BurnRateRule(name="latency-budget", slo="latency",
                     severity=TICKET, burn_threshold=1.0,
                     long_window_fraction=1.0,
                     short_window_fraction=0.2),
        BurnRateRule(name="availability-fast-burn", slo="availability",
                     severity=PAGE, burn_threshold=14.4,
                     long_window_fraction=0.1,
                     short_window_fraction=0.02),
        ThresholdRule(name="dropped-sequences", series="serving/dropped",
                      op=">", threshold=0.0, severity=PAGE),
    )


def serving_monitor(samples: int = DEFAULT_SAMPLES) -> Monitor:
    """A monitor preconfigured for the serving campaign simulator."""
    return Monitor(slos=serving_slos(), rules=serving_rules(),
                   samples=samples, name="serving")
