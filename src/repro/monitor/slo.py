"""Service-level objectives and error-budget accounting.

An :class:`SLO` is declarative: a name, an objective class, and a target
fraction of *good* events.  The monitor engine feeds each SLO a stream
of weighted good/bad events (a fleet sample tick contributes its
capacity fraction as good and the remainder as bad; a serving batch
contributes one event classified against its latency threshold) and the
:class:`SLOTracker` turns that stream into the two numbers SRE practice
runs on:

* **burn rate** over a window — the windowed error rate divided by the
  budgeted error rate ``1 - target``.  Burn 1.0 spends the budget
  exactly at the horizon; burn 14.4 exhausts a 30-day budget in 2 days,
  which is the classic "page now" threshold;
* **error budget remaining** — 1 minus the fraction of the total
  allowed badness already consumed, floored at zero.

Good/bad totals are sampled into cumulative time series, so windowed
error rates are two step-function reads — no event log replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..telemetry.timeseries import TimeSeries

#: Objective classes.
AVAILABILITY = "availability"
LATENCY = "latency"

OBJECTIVES = (AVAILABILITY, LATENCY)


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    Attributes:
        name: objective name; instrumentation sites address SLO events
            to it (``availability``, ``latency``).
        objective: :data:`AVAILABILITY` (good = healthy capacity /
            successful work) or :data:`LATENCY` (good = served under
            the threshold).
        target: required good fraction in [0, 1), e.g. 0.999; the error
            budget is ``1 - target``.
        latency_multiple: for latency objectives, the threshold as a
            multiple of the nominal (fault-free) service time — the
            instrumentation site classifies each event against
            ``latency_multiple * nominal``.
        description: one-line summary for dashboards.
    """

    name: str
    objective: str = AVAILABILITY
    target: float = 0.999
    latency_multiple: float = 1.5
    description: str = ""

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(f"unknown objective '{self.objective}'; "
                             f"choose from {OBJECTIVES}")
        if not 0.0 <= self.target < 1.0:
            raise ValueError(f"target must be in [0, 1), got "
                             f"{self.target}")
        if self.latency_multiple < 1.0:
            raise ValueError("latency_multiple must be >= 1.0")

    @property
    def budget_fraction(self) -> float:
        """The allowed bad fraction (1 - target)."""
        return 1.0 - self.target


@dataclass(frozen=True)
class BudgetStatus:
    """End-of-run error-budget account for one SLO."""

    slo: str
    target: float
    good: float
    bad: float
    consumed_fraction: float    # of the budget; may exceed 1.0
    remaining_fraction: float   # floored at 0.0
    worst_burn_rate: float

    @property
    def total(self) -> float:
        return self.good + self.bad

    @property
    def error_fraction(self) -> float:
        return self.bad / self.total if self.total > 0 else 0.0


class SLOTracker:
    """Accumulates one SLO's good/bad stream and answers burn queries.

    The tracker owns two cumulative time series (sampled by the monitor
    at its tick cadence) plus running totals, and remembers the worst
    burn rate any rule evaluation observed — the headline number for
    reports.
    """

    def __init__(self, slo: SLO, good_series: TimeSeries,
                 bad_series: TimeSeries) -> None:
        self.slo = slo
        self.good_series = good_series
        self.bad_series = bad_series
        self.good = 0.0
        self.bad = 0.0
        self.worst_burn_rate = 0.0

    def add(self, good: float = 0.0, bad: float = 0.0) -> None:
        if good < 0.0 or bad < 0.0:
            raise ValueError("SLO event weights must be non-negative")
        self.good += good
        self.bad += bad

    def sample(self, t: float) -> None:
        """Append the cumulative totals at sim-time ``t``."""
        self.good_series.append(t, self.good)
        self.bad_series.append(t, self.bad)

    def error_rate(self, start: float, end: float) -> Optional[float]:
        """Windowed bad fraction; None when the window saw no events."""
        good = self.good_series.delta(start, end)
        bad = self.bad_series.delta(start, end)
        total = good + bad
        if total <= 0.0:
            return None
        return bad / total

    def burn_rate(self, start: float, end: float) -> Optional[float]:
        """Windowed error rate over the budgeted rate (None: no events).

        A burn rate of 1.0 consumes the budget exactly over the SLO
        horizon; values above page-worthy thresholds mean the budget
        dies in a fraction of it.
        """
        rate = self.error_rate(start, end)
        if rate is None:
            return None
        burn = rate / self.slo.budget_fraction
        if burn > self.worst_burn_rate:
            self.worst_burn_rate = burn
        return burn

    def budget(self) -> BudgetStatus:
        """The end-of-run (or so-far) budget account."""
        total = self.good + self.bad
        allowed = self.slo.budget_fraction * total
        consumed = self.bad / allowed if allowed > 0.0 else 0.0
        return BudgetStatus(
            slo=self.slo.name, target=self.slo.target, good=self.good,
            bad=self.bad, consumed_fraction=consumed,
            remaining_fraction=max(0.0, 1.0 - consumed),
            worst_burn_rate=self.worst_burn_rate)
