"""Parallel sweep execution and shape-keyed memoization.

Two cooperating pieces:

* :class:`SweepExecutor` — fans independent evaluations (DSE points,
  experiment artifacts, fault-rate campaigns) out over a process pool;
  ``workers=1`` is the bit-identical serial path, and results always
  come back in input order regardless of worker count.
* the shape-keyed caches (:mod:`repro.parallel.cache`) — traced dataflow
  graphs keyed by ``(model_config, batch, seq_len)`` and schedules keyed
  by ``(trace_key, hardware_config, link, host)``, with an in-memory LRU
  plus an optional on-disk layer (``REPRO_CACHE_DIR``).
"""

from .cache import (
    CACHE_VERSION,
    ENV_CACHE_DIR,
    CacheStats,
    ShapeCache,
    cache_stats,
    clear_caches,
    configure,
    content_hash,
    get_cache,
    record_cache_metrics,
    schedule_cache,
    schedule_key,
    trace_cache,
    trace_key,
)
from .executor import ENV_WORKERS, SweepExecutor
from .memo import cached_build_graph, cached_schedule

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ENV_CACHE_DIR",
    "ENV_WORKERS",
    "ShapeCache",
    "SweepExecutor",
    "cache_stats",
    "cached_build_graph",
    "cached_schedule",
    "clear_caches",
    "configure",
    "content_hash",
    "get_cache",
    "record_cache_metrics",
    "schedule_cache",
    "schedule_key",
    "trace_cache",
    "trace_key",
]
