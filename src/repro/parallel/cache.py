"""Shape-keyed memoization caches for traces and schedules.

The expensive artifacts of the simulated stack are pure functions of a
small amount of configuration: a traced dataflow graph depends only on
``(model_config, batch, seq_len)``, and a :class:`ScheduleResult` only on
the trace key plus ``(hardware_config, link, host)`` and the orchestrator
knobs.  This module derives stable content hashes from those inputs and
stores the artifacts in per-process LRU caches with an optional on-disk
layer, so a 200-point DSE sweep traces the model once instead of 200
times and a warm re-run skips the cycle-level scheduler entirely.

Disk layer: set the ``REPRO_CACHE_DIR`` environment variable (or call
:func:`configure`) to a directory path; entries are pickled under
``<dir>/<cache>/<key>.pkl`` and survive across processes and runs.
Delete the directory (or call ``clear_caches(disk=True)``) to clear it.
Keys embed :data:`CACHE_VERSION`; bump it when an artifact's layout
changes so stale disk entries miss instead of deserializing garbage.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable selecting the on-disk cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Bump when cached artifact layouts change (invalidates disk entries).
CACHE_VERSION = 1

#: Default in-memory capacities (entries, not bytes).
DEFAULT_TRACE_CAPACITY = 128
DEFAULT_SCHEDULE_CAPACITY = 1024


# ---------------------------------------------------------------------------
# Content hashing


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, hash-stable structure.

    Dataclasses become (qualname, field tuples), enums (qualname, value),
    floats their exact ``repr`` round-trip.  Unknown types raise rather
    than keying on ``id()``-dependent reprs.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__qualname__,
                tuple((f.name, _canonical(getattr(obj, f.name)))
                      for f in dataclasses.fields(obj)))
    if isinstance(obj, enum.Enum):
        return (type(obj).__qualname__, _canonical(obj.value))
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        return tuple(_canonical(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(item)) for item in obj)))
    if isinstance(obj, dict):
        return ("dict", tuple(sorted(
            (repr(_canonical(k)), _canonical(v)) for k, v in obj.items())))
    raise TypeError(
        f"cannot derive a cache key from {type(obj).__qualname__}")


def content_hash(obj: Any) -> str:
    """Stable hex digest of ``obj``'s canonical form (PYTHONHASHSEED-free)."""
    payload = repr(_canonical(obj)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


def trace_key(model_config: Any, batch: int, seq_len: int,
              with_mask: bool = False) -> str:
    """Cache key for one traced dataflow graph."""
    return content_hash(("trace", CACHE_VERSION, model_config,
                         int(batch), int(seq_len), bool(with_mask)))


def schedule_key(trace: str, hardware: Any, host: Any,
                 threads: Optional[int] = None,
                 policy: str = "earliest_finish",
                 contention_coefficient: Optional[float] = None,
                 dispatch_overhead: Optional[float] = None) -> str:
    """Cache key for one scheduled run of a traced workload.

    ``hardware`` embeds its link and lane partition, so any change to the
    operating point changes the key.
    """
    return content_hash(("schedule", CACHE_VERSION, trace, hardware, host,
                         threads, policy, contention_coefficient,
                         dispatch_overhead))


# ---------------------------------------------------------------------------
# Cache implementation


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (memory and disk layers)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0

    def delta(self, before: Optional["CacheStats"] = None) -> "CacheStats":
        """Stats accumulated since ``before`` (or since construction)."""
        if before is None:
            return CacheStats(**dataclasses.asdict(self))
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            puts=self.puts - before.puts,
            evictions=self.evictions - before.evictions,
            disk_hits=self.disk_hits - before.disk_hits,
            disk_writes=self.disk_writes - before.disk_writes)

    def merge(self, other: "CacheStats") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))


class ShapeCache:
    """Thread-safe LRU cache with an optional pickle-on-disk layer.

    Args:
        name: cache label (also the on-disk subdirectory name).
        capacity: in-memory entry limit; least-recently-used evict.
        disk_dir: directory for the persistent layer; None disables it.
        enabled: when False every lookup misses and every put is a no-op
            (the ``--no-cache`` escape hatch).
    """

    _MISSING = object()

    def __init__(self, name: str, capacity: int = 256,
                 disk_dir: Optional[Path] = None,
                 enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.enabled = enabled
        self._data: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    # -- core ------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        if not self.enabled:
            return default
        with self._lock:
            value = self._data.get(key, self._MISSING)
            if value is not self._MISSING:
                self._data.move_to_end(key)
                self._stats.hits += 1
                return value
        value = self._disk_read(key)
        if value is not self._MISSING:
            with self._lock:
                self._stats.hits += 1
                self._stats.disk_hits += 1
                self._insert(key, value)
            return value
        with self._lock:
            self._stats.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._stats.puts += 1
            self._insert(key, value)
        self._disk_write(key, value)

    def _insert(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self._stats.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self, disk: bool = False) -> None:
        """Drop every entry and reset the counters (disk layer on request)."""
        with self._lock:
            self._data.clear()
            self._stats = CacheStats()
        if disk and self.disk_dir is not None:
            directory = self.disk_dir / self.name
            if directory.is_dir():
                for path in directory.glob("*.pkl"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss counters."""
        with self._lock:
            return self._stats.delta()

    # -- disk layer ------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / self.name / f"{key}.pkl"

    def _disk_read(self, key: str) -> Any:
        path = self._disk_path(key)
        if path is None or not path.is_file():
            return self._MISSING
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Corrupt or incompatible entry: treat as a miss and drop it.
            try:
                path.unlink()
            except OSError:
                pass
            return self._MISSING

    def _disk_write(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except (OSError, pickle.PicklingError):
            return
        with self._lock:
            self._stats.disk_writes += 1


# ---------------------------------------------------------------------------
# Process-global caches

_UNSET = object()
_state: Dict[str, Any] = {"disk_dir": _UNSET, "enabled": True}
_caches: Dict[str, ShapeCache] = {}
_registry_lock = threading.Lock()


def _resolve_disk_dir() -> Optional[Path]:
    if _state["disk_dir"] is _UNSET:
        env = os.environ.get(ENV_CACHE_DIR, "").strip()
        _state["disk_dir"] = Path(env) if env else None
    return _state["disk_dir"]


def get_cache(name: str, capacity: int = 256) -> ShapeCache:
    """The process-global cache registered under ``name`` (created lazily)."""
    with _registry_lock:
        cache = _caches.get(name)
        if cache is None:
            cache = ShapeCache(name, capacity=capacity,
                               disk_dir=_resolve_disk_dir(),
                               enabled=_state["enabled"])
            _caches[name] = cache
        return cache


def trace_cache() -> ShapeCache:
    """Cache of traced :class:`~repro.dataflow.graph.DataflowGraph`s."""
    return get_cache("trace", DEFAULT_TRACE_CAPACITY)


def schedule_cache() -> ShapeCache:
    """Cache of :class:`~repro.sched.orchestrator.ScheduleResult`s."""
    return get_cache("schedule", DEFAULT_SCHEDULE_CAPACITY)


def configure(disk_dir: Any = _UNSET, enabled: Any = _UNSET) -> None:
    """Reconfigure the global caches.

    Args:
        disk_dir: on-disk layer directory; ``None`` disables persistence,
            omitted keeps the current setting (default: ``REPRO_CACHE_DIR``).
        enabled: False short-circuits every cache to pass-through.
    """
    with _registry_lock:
        if disk_dir is not _UNSET:
            _state["disk_dir"] = (Path(disk_dir) if disk_dir is not None
                                  else None)
            for cache in _caches.values():
                cache.disk_dir = _state["disk_dir"]
        if enabled is not _UNSET:
            _state["enabled"] = bool(enabled)
            for cache in _caches.values():
                cache.enabled = _state["enabled"]


def clear_caches(disk: bool = False) -> None:
    """Empty every registered cache (and its disk layer when asked)."""
    with _registry_lock:
        caches = list(_caches.values())
    for cache in caches:
        cache.clear(disk=disk)


def cache_stats() -> Dict[str, CacheStats]:
    """Snapshot of each registered cache's counters, keyed by cache name."""
    with _registry_lock:
        return {name: cache.stats for name, cache in _caches.items()}


def record_cache_metrics(metrics,
                         stats: Optional[Dict[str, CacheStats]] = None
                         ) -> None:
    """Write hit/miss counters into a telemetry ``MetricsRegistry``."""
    for name, snapshot in (stats or cache_stats()).items():
        metrics.counter(f"cache/{name}/hits").inc(snapshot.hits)
        metrics.counter(f"cache/{name}/misses").inc(snapshot.misses)
        metrics.counter(f"cache/{name}/disk_hits").inc(snapshot.disk_hits)
        metrics.counter(f"cache/{name}/evictions").inc(snapshot.evictions)
