"""Process-pool fan-out for independent sweep evaluations.

:class:`SweepExecutor` maps a picklable function over a work list.  With
``workers=1`` it runs the exact serial loop the callers used before this
module existed — same call order, same results, no pickling — so serial
runs stay bit-identical.  With ``workers>1`` it fans out over a
``ProcessPoolExecutor`` (fork start method where available, so workers
inherit warm in-memory caches) and reassembles results in input order,
making the output independent of worker count and completion order.

Telemetry: when given a tracer, every task becomes a wall-clock span on
its worker's track; when given a metrics registry, task counts, wall
time, and the cache hit/miss deltas observed inside the workers are
accumulated as counters/gauges.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..telemetry.spans import WALL_CLOCK, Tracer
from .cache import CacheStats, cache_stats

#: Environment variable supplying a default worker count.
ENV_WORKERS = "REPRO_SWEEP_WORKERS"


@dataclass
class _TaskResult:
    """One completed task: its value plus worker/timing/cache accounting."""

    index: int
    pid: int
    start: float
    end: float
    value: Any
    cache_delta: Dict[str, CacheStats] = field(default_factory=dict)


def _invoke(fn: Callable[[Any], Any], index: int, item: Any) -> _TaskResult:
    """Run one task, measuring wall time and cache-counter deltas.

    Module-level so it pickles into worker processes; the perf_counter
    stamps share CLOCK_MONOTONIC with the parent on POSIX, letting the
    parent place spans on a common wall clock.
    """
    before = cache_stats()
    start = time.perf_counter()
    value = fn(item)
    end = time.perf_counter()
    delta = {name: stats.delta(before.get(name))
             for name, stats in cache_stats().items()}
    return _TaskResult(index=index, pid=os.getpid(), start=start, end=end,
                       value=value, cache_delta=delta)


class SweepExecutor:
    """Fans independent evaluations out over worker processes.

    Args:
        workers: process count; 1 (the default) is the serial fast path.

    Attributes:
        last_mode: how the most recent :meth:`map` actually ran —
            ``"serial"``, ``"process"``, or ``"serial-fallback"`` when
            pool creation failed (e.g. a sandbox without fork).
        last_cache_stats: cache hit/miss deltas observed inside the
            tasks of the most recent :meth:`map`, merged across workers.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self.last_mode = "serial"
        self.last_cache_stats: Dict[str, CacheStats] = {}

    @staticmethod
    def resolve_workers(workers: Optional[int] = None) -> int:
        """An explicit count, else ``REPRO_SWEEP_WORKERS``, else 1."""
        if workers is not None:
            return max(1, int(workers))
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                return 1
        return 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any], *,
            tracer: Optional[Tracer] = None,
            metrics=None, label: str = "sweep") -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        Args:
            fn: picklable callable (module-level function or a
                ``functools.partial`` of one) applied to each item.
            items: the work list; fully materialized before dispatch.
            tracer: optional span tracer (one wall-clock span per task on
                a per-worker track, plus a summary span).
            metrics: optional ``MetricsRegistry`` for task counters and
                cache hit/miss deltas.
            label: track/metric prefix for this sweep.

        Raises:
            whatever ``fn`` raises, re-raised in the parent.
        """
        work = list(items)
        base = time.perf_counter()
        if self.workers == 1 or len(work) <= 1:
            self.last_mode = "serial"
            records = [_invoke(fn, index, item)
                       for index, item in enumerate(work)]
        else:
            records = self._map_processes(fn, work)
        records.sort(key=lambda record: record.index)
        elapsed = time.perf_counter() - base
        self._record_telemetry(records, base, elapsed, tracer, metrics,
                               label)
        return [record.value for record in records]

    # ------------------------------------------------------------------

    def _map_processes(self, fn: Callable[[Any], Any],
                       work: List[Any]) -> List[_TaskResult]:
        try:
            methods = multiprocessing.get_all_start_methods()
            context = (multiprocessing.get_context("fork")
                       if "fork" in methods else None)
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(work)),
                mp_context=context)
        except (OSError, PermissionError, ValueError):
            # No usable process pool (restricted sandbox): stay correct.
            self.last_mode = "serial-fallback"
            return [_invoke(fn, index, item)
                    for index, item in enumerate(work)]
        self.last_mode = "process"
        with pool:
            futures = [pool.submit(_invoke, fn, index, item)
                       for index, item in enumerate(work)]
            return [future.result() for future in futures]

    def _record_telemetry(self, records: List[_TaskResult], base: float,
                          elapsed: float, tracer: Optional[Tracer],
                          metrics, label: str) -> None:
        merged: Dict[str, CacheStats] = {}
        for record in records:
            for name, delta in record.cache_delta.items():
                merged.setdefault(name, CacheStats()).merge(delta)
        self.last_cache_stats = merged
        if tracer is not None:
            workers = sorted({record.pid for record in records})
            for record in records:
                start = max(0.0, record.start - base)
                end = max(start, record.end - base)
                tracer.add_span(f"{label}[{record.index}]", start, end,
                                pid=label, tid=f"worker:{record.pid}",
                                category="sweep", clock=WALL_CLOCK,
                                index=record.index, mode=self.last_mode)
            tracer.add_span(f"{label}.map", 0.0, elapsed, pid=label,
                            tid="executor", category="sweep",
                            clock=WALL_CLOCK, tasks=len(records),
                            workers=len(workers), mode=self.last_mode)
        if metrics is not None:
            metrics.counter(f"parallel/{label}/tasks").inc(len(records))
            metrics.gauge(f"parallel/{label}/wall_seconds").set(elapsed)
            metrics.gauge(f"parallel/{label}/workers").set(
                len({record.pid for record in records}))
            for name, delta in merged.items():
                metrics.counter(f"cache/{name}/hits").inc(delta.hits)
                metrics.counter(f"cache/{name}/misses").inc(delta.misses)
                metrics.counter(f"cache/{name}/disk_hits").inc(
                    delta.disk_hits)
