"""Memoized entry points for tracing and scheduling.

Thin wrappers that route :func:`repro.dataflow.builder.build_graph_for`
and :meth:`repro.sched.orchestrator.Orchestrator.run` through the global
shape-keyed caches.  Both functions are deterministic, so a cached value
is bit-identical to a fresh computation; callers that need telemetry
spans from inside the scheduler should keep calling the orchestrator
directly (spans are a side effect the cache cannot replay).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..dataflow.builder import build_graph_for
from ..dataflow.graph import DataflowGraph
from .cache import schedule_cache, schedule_key, trace_cache, trace_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..arch.config import HardwareConfig
    from ..model.config import BertConfig
    from ..sched.host import HostModel
    from ..sched.orchestrator import ScheduleResult


def cached_build_graph(config: "BertConfig", batch: int, seq_len: int,
                       with_mask: bool = False) -> DataflowGraph:
    """Trace a workload once per process (plus the optional disk layer).

    The graph is immutable (frozen dataclass nodes), so sharing one
    instance across orchestrator runs is safe.
    """
    cache = trace_cache()
    key = trace_key(config, batch, seq_len, with_mask)
    graph = cache.get(key)
    if graph is None:
        graph = build_graph_for(config, batch=batch, seq_len=seq_len,
                                with_mask=with_mask)
        cache.put(key, graph)
    return graph


def cached_schedule(hardware: "HardwareConfig", model_config: "BertConfig",
                    batch: int, seq_len: int,
                    host: Optional["HostModel"] = None,
                    threads: Optional[int] = None,
                    policy: str = "earliest_finish",
                    contention_coefficient: Optional[float] = None,
                    dispatch_overhead: Optional[float] = None
                    ) -> "ScheduleResult":
    """Simulate one batched inference, memoized on its full shape key.

    The key covers the workload (via :func:`trace_key`), the hardware
    configuration (which embeds its link and lane partition), the host
    model, and every orchestrator knob, so any change to the operating
    point misses rather than returning a stale schedule.
    """
    from ..sched.host import HostModel
    from ..sched.orchestrator import CONTENTION_COEFFICIENT, Orchestrator
    from ..arch.interconnect import DISPATCH_OVERHEAD_SECONDS

    host = host or HostModel()
    if contention_coefficient is None:
        contention_coefficient = CONTENTION_COEFFICIENT
    if dispatch_overhead is None:
        dispatch_overhead = DISPATCH_OVERHEAD_SECONDS
    cache = schedule_cache()
    key = schedule_key(trace_key(model_config, batch, seq_len), hardware,
                       host, threads=threads, policy=policy,
                       contention_coefficient=contention_coefficient,
                       dispatch_overhead=dispatch_overhead)
    result = cache.get(key)
    if result is None:
        result = Orchestrator(
            hardware, host=host,
            contention_coefficient=contention_coefficient,
            dispatch_overhead=dispatch_overhead,
            policy=policy).run(model_config, batch=batch, seq_len=seq_len,
                               threads=threads)
        cache.put(key, result)
    return result
