"""Physical model: synthesis anchors, SRAM, scaling, power/area."""

from .energy import (
    IDLE_POWER_FRACTION,
    EnergyReport,
    energy_report,
    format_energy,
)
from .power import (
    PowerReport,
    accelerator_power_watts,
    area_mm2,
    array_characteristics,
    power_area_table,
    power_report,
    system_power_watts,
)
from .scaling import (
    AREA_FACTORS,
    DELAY_FACTORS,
    POWER_FACTORS,
    ScalingResult,
    scale_area,
    scale_delay,
    scale_frequency,
    scale_power,
)
from .sram import SramMacro, input_buffer_bits, synthesize_sram
from .synthesis import (
    A100_DIE_AREA_MM2,
    A100_TDP_WATTS,
    TABLE2_ROWS,
    ArrayCharacteristics,
    characteristics,
    table2,
    validate_clock_feasibility,
)

__all__ = [
    "EnergyReport",
    "IDLE_POWER_FRACTION",
    "energy_report",
    "format_energy",
    "A100_DIE_AREA_MM2",
    "A100_TDP_WATTS",
    "AREA_FACTORS",
    "ArrayCharacteristics",
    "DELAY_FACTORS",
    "POWER_FACTORS",
    "PowerReport",
    "ScalingResult",
    "SramMacro",
    "TABLE2_ROWS",
    "accelerator_power_watts",
    "area_mm2",
    "array_characteristics",
    "characteristics",
    "input_buffer_bits",
    "power_area_table",
    "power_report",
    "scale_area",
    "scale_delay",
    "scale_frequency",
    "scale_power",
    "synthesize_sram",
    "system_power_watts",
    "table2",
    "validate_clock_feasibility",
]
