"""Energy attribution: where do the joules of one inference go?

Combines a :class:`~repro.sched.orchestrator.ScheduleResult` with the
physical model to decompose a batch's energy into active array energy
(per dataflow kind), idle array energy, and host energy — the
accounting behind the paper's efficiency headline, one level deeper.

Idle arrays still burn most of their power (leakage plus clocking); the
paper's synthesized numbers are totals, so we attribute an idle fraction
of the per-array power when an array is not executing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..arch.config import HardwareConfig
from ..dataflow.patterns import ArrayType
from ..sched.host import HOST_POWER_WATTS
from ..sched.orchestrator import ScheduleResult
from .power import array_characteristics

#: Fraction of active power an idle (clock-gated) array still draws.
IDLE_POWER_FRACTION = 0.35


@dataclass(frozen=True)
class EnergyReport:
    """Energy decomposition of one batched inference.

    Attributes:
        active_joules_by_kind: array energy attributed to each dataflow
            kind's compute demand.
        idle_joules: energy burnt by idle (clock-gated) arrays.
        host_joules: host CPU + DRAM energy over the makespan.
        batch: inferences the energy paid for.
    """

    active_joules_by_kind: Tuple[Tuple[str, float], ...]
    idle_joules: float
    host_joules: float
    batch: int

    @property
    def active_joules(self) -> float:
        return sum(value for _, value in self.active_joules_by_kind)

    @property
    def total_joules(self) -> float:
        return self.active_joules + self.idle_joules + self.host_joules

    @property
    def joules_per_inference(self) -> float:
        return self.total_joules / self.batch

    def share(self, component: str) -> float:
        """Fraction of total energy for 'idle', 'host', or a kind name."""
        if component == "idle":
            return self.idle_joules / self.total_joules
        if component == "host":
            return self.host_joules / self.total_joules
        for kind, value in self.active_joules_by_kind:
            if kind == component:
                return value / self.total_joules
        raise KeyError(component)


def energy_report(schedule: ScheduleResult,
                  hardware: HardwareConfig) -> EnergyReport:
    """Decompose one schedule's energy using the physical model.

    Active energy per kind uses each kind's compute demand at the mean
    active power of the arrays that can execute it; idle energy charges
    the remaining array-seconds at the idle fraction; host energy covers
    the full makespan (its power constant is already duty-weighted).
    """
    makespan = schedule.makespan_seconds
    total_active: Dict[str, float] = dict(
        schedule.kind_compute_seconds)

    # Mean active power per array type, input buffers included.
    type_power: Dict[ArrayType, float] = {}
    type_array_seconds: Dict[ArrayType, float] = {}
    total_idle_joules = 0.0
    for group in hardware.groups:
        char = array_characteristics(hardware, group.array_type,
                                     group.size)
        power_w = (char.inbuf_power_mw if hardware.use_input_buffer
                   else char.power_mw) / 1000.0
        type_power[group.array_type] = power_w
        type_array_seconds[group.array_type] = group.count * makespan

    kind_to_type = {"dataflow1": ArrayType.M, "dataflow2": ArrayType.G,
                    "dataflow3": ArrayType.E}
    active_rows = []
    busy_by_type: Dict[ArrayType, float] = {t: 0.0 for t in ArrayType}
    for kind, seconds in sorted(total_active.items()):
        array_type = kind_to_type.get(kind, ArrayType.M)
        power = type_power.get(array_type, 0.0)
        active_rows.append((kind, seconds * power))
        busy_by_type[array_type] += seconds

    for array_type, available in type_array_seconds.items():
        idle_seconds = max(available - busy_by_type.get(array_type, 0.0),
                           0.0)
        total_idle_joules += (idle_seconds
                              * type_power.get(array_type, 0.0)
                              * IDLE_POWER_FRACTION)

    return EnergyReport(active_joules_by_kind=tuple(active_rows),
                        idle_joules=total_idle_joules,
                        host_joules=makespan * HOST_POWER_WATTS,
                        batch=schedule.batch)


def format_energy(report: EnergyReport) -> str:
    lines = [f"{'component':>12s} {'joules':>9s} {'share':>7s}"]
    for kind, joules in report.active_joules_by_kind:
        lines.append(f"{kind:>12s} {joules:9.3f} "
                     f"{report.share(kind):6.1%}")
    lines.append(f"{'idle':>12s} {report.idle_joules:9.3f} "
                 f"{report.share('idle'):6.1%}")
    lines.append(f"{'host':>12s} {report.host_joules:9.3f} "
                 f"{report.share('host'):6.1%}")
    lines.append(f"total {report.total_joules:.3f} J for {report.batch} "
                 f"inferences ({report.joules_per_inference * 1e3:.2f} "
                 f"mJ/inference)")
    return "\n".join(lines)
