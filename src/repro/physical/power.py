"""System-level power and area accounting for ProSE instances.

Combines the per-array synthesis numbers (Table 2 / the parametric model)
with the host-side power constants the paper measured via RAPL: the ProSE
system power is the accelerator's array power (with input buffers), plus
the CPU's duty-cycle-weighted active power, plus DRAM power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..arch.config import HardwareConfig
from ..dataflow.patterns import ArrayType
from ..sched.host import HOST_POWER_WATTS
from .synthesis import ArrayCharacteristics, characteristics


@dataclass(frozen=True)
class PowerReport:
    """Power/area decomposition of one ProSE configuration.

    Attributes:
        accelerator_power_w: sum of array (+InBuf) powers.
        host_power_w: duty-weighted CPU + DRAM power.
        area_mm2: total accelerator silicon area.
        per_group: (group label, power W, area mm²) rows.
    """

    accelerator_power_w: float
    host_power_w: float
    area_mm2: float
    per_group: Tuple[Tuple[str, float, float], ...]

    @property
    def system_power_w(self) -> float:
        return self.accelerator_power_w + self.host_power_w


def _array_luts(config: HardwareConfig, array_type: ArrayType
                ) -> Tuple[bool, bool]:
    """Which LUTs each array of the given type carries."""
    if config.pooled:
        # Homogeneous baseline arrays carry both LUT kinds (Table 2's
        # 64×64 yes/yes row) so any array can run any dataflow.
        return True, True
    return array_type is ArrayType.G, array_type is ArrayType.E


def array_characteristics(config: HardwareConfig, array_type: ArrayType,
                          size: int) -> ArrayCharacteristics:
    """Synthesis characteristics of one array within ``config``."""
    gelu, exp = _array_luts(config, array_type)
    return characteristics(size, gelu=gelu, exp=exp)


def power_report(config: HardwareConfig) -> PowerReport:
    """Full power/area report for a hardware configuration."""
    total_power_mw = 0.0
    total_area = 0.0
    rows = []
    for group in config.groups:
        char = array_characteristics(config, group.array_type, group.size)
        if config.use_input_buffer:
            power = char.inbuf_power_mw * group.count
            area = char.inbuf_area_mm2 * group.count
        else:
            power = char.power_mw * group.count
            area = char.area_mm2 * group.count
        total_power_mw += power
        total_area += area
        rows.append((group.label, power / 1000.0, area))
    return PowerReport(
        accelerator_power_w=total_power_mw / 1000.0,
        host_power_w=HOST_POWER_WATTS,
        area_mm2=total_area,
        per_group=tuple(rows))


def accelerator_power_watts(config: HardwareConfig) -> float:
    """Accelerator-only power (the Table 4 'Power' column)."""
    return power_report(config).accelerator_power_w


def system_power_watts(config: HardwareConfig) -> float:
    """Accelerator + host power charged to ProSE inference."""
    return power_report(config).system_power_w


def area_mm2(config: HardwareConfig) -> float:
    """Accelerator area (the Table 4 'Area' column)."""
    return power_report(config).area_mm2


def power_area_table(configs) -> Dict[str, Tuple[float, float]]:
    """(power mW, area mm²) per configuration, Table-4 style."""
    table = {}
    for config in configs:
        report = power_report(config)
        table[config.name] = (report.accelerator_power_w * 1000.0,
                              report.area_mm2)
    return table
