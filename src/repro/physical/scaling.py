"""Technology-node scaling (Stillmaker & Baas style, paper Section 4.1).

The paper synthesizes systolic arrays in FreePDK 15 nm and SRAMs in a 45 nm
PDK, then scales both to 7 nm using "the sub-10 nm technology scaling
methodology" of Stillmaker & Baas.  This module provides the per-node
scaling factors that methodology tabulates, so every physical number in the
repository carries explicit provenance from a synthesis node to 7 nm.

Factors are normalized to 45 nm = 1.0.  They follow the published shape of
the Stillmaker-Baas curves: delay and energy improve steeply down to 14 nm
and then flatten in the sub-10 nm regime, while area keeps shrinking
roughly with feature-size squared (tempered by fin quantization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Relative gate delay vs 45 nm (smaller is faster).
DELAY_FACTORS: Dict[int, float] = {
    180: 4.10, 130: 2.62, 90: 1.79, 65: 1.33, 45: 1.00,
    32: 0.77, 20: 0.57, 15: 0.45, 14: 0.43, 10: 0.36, 7: 0.30,
}

#: Relative switching power at constant frequency vs 45 nm.
POWER_FACTORS: Dict[int, float] = {
    180: 9.20, 130: 4.71, 90: 2.60, 65: 1.62, 45: 1.00,
    32: 0.71, 20: 0.42, 15: 0.31, 14: 0.29, 10: 0.21, 7: 0.16,
}

#: Relative area vs 45 nm.
AREA_FACTORS: Dict[int, float] = {
    180: 16.0, 130: 8.34, 90: 4.00, 65: 2.09, 45: 1.00,
    32: 0.51, 20: 0.20, 15: 0.12, 14: 0.11, 10: 0.062, 7: 0.036,
}


@dataclass(frozen=True)
class ScalingResult:
    """A value scaled between technology nodes, with the factors used."""

    value: float
    from_nm: int
    to_nm: int
    factor: float


def _factor(table: Dict[int, float], from_nm: int, to_nm: int) -> float:
    if from_nm not in table or to_nm not in table:
        known = sorted(table)
        raise ValueError(f"unknown node; known nodes: {known}")
    return table[to_nm] / table[from_nm]


def scale_delay(value: float, from_nm: int, to_nm: int) -> ScalingResult:
    """Scale a delay (or inverse frequency) between nodes."""
    factor = _factor(DELAY_FACTORS, from_nm, to_nm)
    return ScalingResult(value * factor, from_nm, to_nm, factor)


def scale_frequency(value: float, from_nm: int, to_nm: int) -> ScalingResult:
    """Scale a clock frequency between nodes (inverse of delay)."""
    factor = 1.0 / _factor(DELAY_FACTORS, from_nm, to_nm)
    return ScalingResult(value * factor, from_nm, to_nm, factor)


def scale_power(value: float, from_nm: int, to_nm: int) -> ScalingResult:
    """Scale switching power at constant frequency between nodes."""
    factor = _factor(POWER_FACTORS, from_nm, to_nm)
    return ScalingResult(value * factor, from_nm, to_nm, factor)


def scale_area(value: float, from_nm: int, to_nm: int) -> ScalingResult:
    """Scale silicon area between nodes."""
    factor = _factor(AREA_FACTORS, from_nm, to_nm)
    return ScalingResult(value * factor, from_nm, to_nm, factor)
