"""OpenRAM-style SRAM model for the ProSE input buffers.

The paper synthesizes the input buffers with OpenRAM at a 45 nm PDK and
scales the results to 7 nm.  This module provides a parametric SRAM macro
model — bitcell array plus peripheral overhead — calibrated so that the
input-buffer deltas of Table 2 (which grow linearly with array rows) are
reproduced, and exposes the 45 nm → 7 nm scaling step explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scaling import scale_area, scale_power

#: 45 nm 6T SRAM bitcell area in mm² (typical published foundry value).
BITCELL_AREA_45NM_MM2 = 0.374e-6

#: Peripheral (decoder, sense amps, IO) area overhead fraction.
PERIPHERY_OVERHEAD = 0.9

#: 45 nm dynamic read energy per bit in joules (OpenRAM-class macro).
READ_ENERGY_PER_BIT_45NM = 0.08e-12

#: 45 nm leakage per bit in watts.
LEAKAGE_PER_BIT_45NM = 12e-12


@dataclass(frozen=True)
class SramMacro:
    """One synthesized SRAM macro scaled to a target node.

    Attributes:
        bits: storage capacity in bits.
        node_nm: technology node of the reported numbers.
        area_mm2: macro area.
        read_power_mw: dynamic power at the given access rate.
        leakage_mw: static power.
    """

    bits: int
    node_nm: int
    area_mm2: float
    read_power_mw: float
    leakage_mw: float

    @property
    def total_power_mw(self) -> float:
        return self.read_power_mw + self.leakage_mw


def synthesize_sram(bits: int, access_hz: float, node_nm: int = 7
                    ) -> SramMacro:
    """Model an OpenRAM macro at 45 nm and scale it to ``node_nm``.

    Args:
        bits: macro capacity.
        access_hz: sustained read accesses per second (whole words count
            once per bit here for simplicity).
        node_nm: target node (default 7 nm as in the paper).
    """
    if bits <= 0 or access_hz < 0:
        raise ValueError("bits must be positive and access rate non-negative")
    area_45 = bits * BITCELL_AREA_45NM_MM2 * (1.0 + PERIPHERY_OVERHEAD)
    read_power_45 = bits * READ_ENERGY_PER_BIT_45NM * access_hz * 1e3  # mW
    leakage_45 = bits * LEAKAGE_PER_BIT_45NM * 1e3                      # mW
    return SramMacro(
        bits=bits,
        node_nm=node_nm,
        area_mm2=scale_area(area_45, 45, node_nm).value,
        read_power_mw=scale_power(read_power_45, 45, node_nm).value,
        leakage_mw=scale_power(leakage_45, 45, node_nm).value)


def input_buffer_bits(array_size: int, depth: int = 8,
                      element_bits: int = 16) -> int:
    """Capacity of one array's streaming input buffers.

    Two operand buffers (A and B), each ``depth`` entries of one
    ``array_size``-wide bfloat16 slice (Figure 10a), plus the partial input
    buffer holding one operand strip for local-dataflow reuse (Figure 11d,
    sized for a k=768 strip).
    """
    streaming = 2 * depth * array_size * element_bits
    partial = array_size * 768 * element_bits
    return streaming + partial
