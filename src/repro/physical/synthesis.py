"""Synthesized physical characteristics of ProSE components (Table 2).

The paper's flow is Chisel → Verilog → Synopsys synthesis in FreePDK 15 nm
→ scaled to 7 nm; input-buffer SRAMs come from OpenRAM at 45 nm, also
scaled to 7 nm.  We anchor a parametric model on the nine synthesized data
points of Table 2 and interpolate the rest of the (size, GELU, Exp) space
the same way the authors' flow would: quadratic-in-n array cost plus
per-ALU LUT deltas plus a linear-in-n input-buffer term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: A100 reference envelope for the %-columns of Table 2 (GA100 die).
A100_TDP_WATTS = 400.0
A100_DIE_AREA_MM2 = 826.0


@dataclass(frozen=True)
class ArrayCharacteristics:
    """Physical characteristics of one synthesized systolic array at 7 nm.

    Attributes:
        size: array dimension n.
        gelu / exp: which special-function LUTs are attached.
        frequency_mhz: post-synthesis maximum clock.
        power_mw: array power (excluding input buffer).
        inbuf_power_mw: array + input-buffer power.
        area_mm2: array area.
        inbuf_area_mm2: array + input-buffer area.
    """

    size: int
    gelu: bool
    exp: bool
    frequency_mhz: float
    power_mw: float
    inbuf_power_mw: float
    area_mm2: float
    inbuf_area_mm2: float

    @property
    def percent_a100_power(self) -> float:
        return 100.0 * self.inbuf_power_mw / 1000.0 / A100_TDP_WATTS

    @property
    def percent_a100_area(self) -> float:
        return 100.0 * self.inbuf_area_mm2 / A100_DIE_AREA_MM2


#: Table 2 verbatim: (size, gelu, exp) -> (freq MHz, power mW, +InBuf power,
#: area mm², +InBuf area).
TABLE2_ROWS: Dict[Tuple[int, bool, bool], Tuple[float, float, float, float, float]] = {
    (16, False, False): (1977.1, 249.3, 268.6, 0.183, 0.213),
    (16, False, True):  (925.2, 260.2, 279.5, 0.190, 0.221),
    (16, True, False):  (887.1, 255.1, 274.4, 0.187, 0.217),
    (32, False, False): (1707.1, 802.6, 841.2, 0.706, 0.766),
    (32, False, True):  (886.8, 830.0, 868.5, 0.725, 0.786),
    (32, True, False):  (870.3, 808.4, 847.0, 0.719, 0.779),
    (64, False, False): (1626.1, 2552.1, 2629.1, 2.788, 2.908),
    (64, False, True):  (858.1, 2578.2, 2655.2, 2.829, 2.949),
    (64, True, False):  (860.4, 2514.8, 2591.8, 2.816, 2.936),
    (64, True, True):   (858.1, 2585.8, 2662.9, 2.863, 2.983),
}


def _quadratic_fit(points: Dict[int, float]) -> Tuple[float, float, float]:
    """Fit value = a·n² + b·n + c through three (n, value) anchors."""
    sizes = sorted(points)
    matrix = np.array([[n * n, n, 1.0] for n in sizes])
    values = np.array([points[n] for n in sizes])
    a, b, c = np.linalg.solve(matrix, values)
    return float(a), float(b), float(c)


_BASE_POWER_FIT = _quadratic_fit({n: TABLE2_ROWS[(n, False, False)][1]
                                  for n in (16, 32, 64)})
_BASE_AREA_FIT = _quadratic_fit({n: TABLE2_ROWS[(n, False, False)][3]
                                 for n in (16, 32, 64)})

#: Input-buffer deltas are linear in n (the buffer width is one array row).
_INBUF_POWER_PER_ROW = np.mean([
    (TABLE2_ROWS[(n, False, False)][2] - TABLE2_ROWS[(n, False, False)][1]) / n
    for n in (16, 32, 64)])
_INBUF_AREA_PER_ROW = np.mean([
    (TABLE2_ROWS[(n, False, False)][4] - TABLE2_ROWS[(n, False, False)][3]) / n
    for n in (16, 32, 64)])

#: Per-ALU LUT deltas (one LUT replica per SIMD ALU, i.e. per row).
_EXP_POWER_PER_ALU = np.mean([
    (TABLE2_ROWS[(n, False, True)][1] - TABLE2_ROWS[(n, False, False)][1]) / n
    for n in (16, 32, 64)])
_EXP_AREA_PER_ALU = np.mean([
    (TABLE2_ROWS[(n, False, True)][3] - TABLE2_ROWS[(n, False, False)][3]) / n
    for n in (16, 32, 64)])
_GELU_POWER_PER_ALU = np.mean([
    max(TABLE2_ROWS[(n, True, False)][1] - TABLE2_ROWS[(n, False, False)][1],
        0.0) / n
    for n in (16, 32, 64)])
_GELU_AREA_PER_ALU = np.mean([
    (TABLE2_ROWS[(n, True, False)][3] - TABLE2_ROWS[(n, False, False)][3]) / n
    for n in (16, 32, 64)])

#: Frequencies by capability (LUT-equipped arrays close at the SIMD clock).
_MATMUL_FREQ_FIT = {16: 1977.1, 32: 1707.1, 64: 1626.1}
_LUT_FREQ_FLOOR = 858.1


def characteristics(size: int, gelu: bool = False, exp: bool = False
                    ) -> ArrayCharacteristics:
    """Physical characteristics for an arbitrary (size, GELU, Exp) array.

    Exact Table 2 rows are returned verbatim; other points interpolate the
    anchored parametric model.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    key = (size, gelu, exp)
    if key in TABLE2_ROWS:
        freq, power, inbuf_power, area, inbuf_area = TABLE2_ROWS[key]
        return ArrayCharacteristics(size, gelu, exp, freq, power,
                                    inbuf_power, area, inbuf_area)

    a, b, c = _BASE_POWER_FIT
    power = a * size * size + b * size + c
    a, b, c = _BASE_AREA_FIT
    area = a * size * size + b * size + c
    if gelu:
        power += _GELU_POWER_PER_ALU * size
        area += _GELU_AREA_PER_ALU * size
    if exp:
        power += _EXP_POWER_PER_ALU * size
        area += _EXP_AREA_PER_ALU * size
    if gelu or exp:
        frequency = _LUT_FREQ_FLOOR
    else:
        known = sorted(_MATMUL_FREQ_FIT)
        frequency = float(np.interp(size, known,
                                    [_MATMUL_FREQ_FIT[n] for n in known]))
    inbuf_power = power + _INBUF_POWER_PER_ROW * size
    inbuf_area = area + _INBUF_AREA_PER_ROW * size
    return ArrayCharacteristics(size, gelu, exp, frequency, max(power, 0.0),
                                max(inbuf_power, 0.0), max(area, 0.0),
                                max(inbuf_area, 0.0))


def table2() -> Tuple[ArrayCharacteristics, ...]:
    """All rows of Table 2, in the paper's order."""
    return tuple(characteristics(size, gelu, exp)
                 for (size, gelu, exp) in sorted(TABLE2_ROWS))


def validate_clock_feasibility(matmul_frequency_hz: float,
                               simd_frequency_hz: float) -> bool:
    """Check the double-pumped 1.6 GHz / 800 MHz clocks close timing.

    The slowest MatMul-capable array (1626.1 MHz) must beat the matmul
    clock, and the slowest LUT-equipped array (858.1 MHz) the SIMD clock.
    """
    slowest_matmul = min(row[0] for key, row in TABLE2_ROWS.items()
                         if not key[1] and not key[2])
    slowest_simd = min(row[0] for key, row in TABLE2_ROWS.items()
                       if key[1] or key[2])
    return (slowest_matmul * 1e6 >= matmul_frequency_hz
            and slowest_simd * 1e6 >= simd_frequency_hz)
