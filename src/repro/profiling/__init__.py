"""Workload profiling (Figure 3 runtime breakdown)."""

from .intensity import (
    IntensityPoint,
    dataflow_intensities,
    intensity_report,
    intensity_vs_length,
    machine_balance,
)
from .memory import (
    MemoryFootprint,
    footprint_sweep,
    format_sweep,
    model_footprint,
    prose_device_bytes,
)
from .breakdown import (
    CATEGORY_ORDER,
    FIGURE3_LENGTHS,
    BreakdownRow,
    format_breakdown,
    matmul_share_bounds,
    profile_breakdown,
)

__all__ = [
    "CATEGORY_ORDER",
    "IntensityPoint",
    "MemoryFootprint",
    "dataflow_intensities",
    "intensity_report",
    "intensity_vs_length",
    "machine_balance",
    "footprint_sweep",
    "format_sweep",
    "model_footprint",
    "prose_device_bytes",
    "FIGURE3_LENGTHS",
    "BreakdownRow",
    "format_breakdown",
    "matmul_share_bounds",
    "profile_breakdown",
]
