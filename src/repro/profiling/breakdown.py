"""Runtime-breakdown profiling of Protein BERT (paper Section 2.3).

Reproduces Figure 3: the fraction of inference time each operation class
consumes on the A100 as the input sequence length grows from 32 to 2048
tokens, using the paper's per-length throughput-optimal batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.gpu import a100
from ..baselines.roofline import RooflineDevice, best_batch_for_length
from ..model.config import BertConfig, protein_bert_base
from ..trace.ops import FIGURE3_CATEGORIES
from ..trace.tracer import TraceSpec, trace_model

#: The sequence lengths Figure 3 profiles.
FIGURE3_LENGTHS: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048)

#: Display order of the Figure 3 legend.
CATEGORY_ORDER: Tuple[str, ...] = tuple(FIGURE3_CATEGORIES)


@dataclass(frozen=True)
class BreakdownRow:
    """One column of Figure 3: the op-class shares at one length."""

    seq_len: int
    batch: int
    shares: Tuple[Tuple[str, float], ...]

    def share(self, category: str) -> float:
        for name, value in self.shares:
            if name == category:
                return value
        return 0.0

    @property
    def matmul_share(self) -> float:
        """Combined (batched + unbatched) matrix-multiply share."""
        return self.share("Matrix Multiply") + self.share("Batched Mat Mul")


def profile_breakdown(config: Optional[BertConfig] = None,
                      device: Optional[RooflineDevice] = None,
                      lengths: Sequence[int] = FIGURE3_LENGTHS,
                      batches: Optional[Sequence[int]] = None
                      ) -> List[BreakdownRow]:
    """Profile the per-category runtime shares across sequence lengths.

    Args:
        config: model configuration (default: Protein BERT base).
        device: device model to profile on (default: the A100).
        lengths: sequence lengths to sweep.
        batches: batch size per length; defaults to the paper's
            throughput-optimal A100 batches.

    Returns:
        One :class:`BreakdownRow` per length, shares summing to 1.
    """
    config = config or protein_bert_base()
    device = device or a100()
    rows: List[BreakdownRow] = []
    for index, seq_len in enumerate(lengths):
        batch = (batches[index] if batches is not None
                 else best_batch_for_length(seq_len))
        ops = trace_model(TraceSpec(config=config, batch=batch,
                                    seq_len=seq_len))
        seconds = device.category_seconds(ops)
        total = sum(seconds.values())
        shares = tuple((category, seconds.get(category, 0.0) / total)
                       for category in CATEGORY_ORDER)
        rows.append(BreakdownRow(seq_len=seq_len, batch=batch,
                                 shares=shares))
    return rows


def format_breakdown(rows: Sequence[BreakdownRow]) -> str:
    """Render the breakdown as an aligned text table (Figure 3 as rows)."""
    header = f"{'seq':>6s} {'batch':>7s} " + " ".join(
        f"{name[:12]:>13s}" for name in CATEGORY_ORDER)
    lines = [header]
    for row in rows:
        cells = " ".join(f"{row.share(name) * 100:12.1f}%"
                         for name in CATEGORY_ORDER)
        lines.append(f"{row.seq_len:6d} {row.batch:7d} {cells}")
    return "\n".join(lines)


def matmul_share_bounds(rows: Sequence[BreakdownRow]) -> Tuple[float, float]:
    """(min, max) combined matmul share — the paper reports 35%-52%."""
    shares = [row.matmul_share for row in rows]
    return min(shares), max(shares)
