"""Operational-intensity analysis of the three dataflows.

Why is Dataflow 3 the hard one?  Because its operational intensity
(FLOPs per streamed byte) is an order of magnitude below Dataflow 1/2's:
the attention dot products have k = 64 and their softmax intermediates
round-trip the host.  This module computes per-dataflow intensity and
compares it against each platform's machine balance (peak FLOPs per
byte of feed bandwidth) — the roofline lens on the paper's Section 3.2
"ProSE Efficiencies" discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..arch.config import HardwareConfig, best_perf
from ..dataflow.builder import build_graph_for
from ..dataflow.patterns import DataflowKind
from ..model.config import BertConfig, protein_bert_base

#: Bytes per streamed element.
ELEMENT_BYTES = 2


@dataclass(frozen=True)
class IntensityPoint:
    """Aggregate FLOPs and traffic of one dataflow kind."""

    kind: DataflowKind
    flops: int
    stream_bytes: int

    @property
    def intensity(self) -> float:
        """FLOPs per byte of host-link traffic."""
        return self.flops / self.stream_bytes if self.stream_bytes else 0.0


def dataflow_intensities(config: Optional[BertConfig] = None,
                         batch: int = 4, seq_len: int = 512
                         ) -> Dict[DataflowKind, IntensityPoint]:
    """Per-kind operational intensity for one inference workload."""
    config = config or protein_bert_base()
    graph = build_graph_for(config, batch=batch, seq_len=seq_len)
    flops: Dict[DataflowKind, int] = {kind: 0 for kind in DataflowKind}
    bytes_: Dict[DataflowKind, int] = {kind: 0 for kind in DataflowKind}
    for _, dataflow in graph.dataflows:
        flops[dataflow.kind] += dataflow.flops
        bytes_[dataflow.kind] += dataflow.stream_bytes(ELEMENT_BYTES)
    return {kind: IntensityPoint(kind=kind, flops=flops[kind],
                                 stream_bytes=bytes_[kind])
            for kind in DataflowKind}


def machine_balance(hardware: Optional[HardwareConfig] = None) -> float:
    """ProSE's peak FLOPs per byte of link bandwidth.

    Dataflows with intensity below this are link-bound on the instance.
    """
    hardware = hardware or best_perf()
    peak_flops = (hardware.total_pes * 2 * hardware.matmul_frequency)
    return peak_flops / hardware.link.total_bandwidth


def intensity_report(config: Optional[BertConfig] = None,
                     hardware: Optional[HardwareConfig] = None,
                     seq_len: int = 512) -> str:
    """Side-by-side intensities vs the instance's machine balance."""
    points = dataflow_intensities(config, seq_len=seq_len)
    balance = machine_balance(hardware)
    lines = [f"machine balance (BestPerf @ link): {balance:.1f} FLOP/B",
             f"{'dataflow':>11s} {'GFLOP':>8s} {'MB':>8s} "
             f"{'FLOP/B':>8s} {'bound':>8s}"]
    for kind in DataflowKind:
        point = points[kind]
        bound = "compute" if point.intensity > balance else "link"
        lines.append(f"{kind.value:>11s} {point.flops / 1e9:8.2f} "
                     f"{point.stream_bytes / 2 ** 20:8.1f} "
                     f"{point.intensity:8.1f} {bound:>8s}")
    return "\n".join(lines)


def intensity_vs_length(config: Optional[BertConfig] = None,
                        lengths=(128, 512, 2048)
                        ) -> List[Dict[DataflowKind, IntensityPoint]]:
    """How each dataflow's intensity moves with sequence length."""
    return [dataflow_intensities(config, seq_len=length)
            for length in lengths]
