"""Memory-footprint model for Protein BERT inference.

Section 2.1: "both compute time and memory footprint increase
quadratically as a function of input sequence length for some
operations".  This module computes the activation/weight footprints
analytically from the traced op stream, quantifying (a) the quadratic
attention-score blow-up that limits batch size on a 40 GiB A100 (the
Section 2.3 batch table) and (b) why ProSE's streaming design needs no
device-resident footprint at all beyond its accumulators and buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..arch.config import HardwareConfig, best_perf
from ..model.config import BertConfig, protein_bert_base
from ..physical.sram import input_buffer_bits

#: Bytes per activation element on the GPU (fp16 activations).
GPU_ACTIVATION_BYTES = 2

#: Bytes per weight element (fp16).
WEIGHT_BYTES = 2

#: A100 device memory (Table 1: 40 GiB HBM2).
A100_MEMORY_BYTES = 40 * 2 ** 30


@dataclass(frozen=True)
class MemoryFootprint:
    """Peak per-inference memory decomposition on a commodity device.

    Attributes:
        seq_len: tokens per sequence.
        weight_bytes: model parameters (batch-independent).
        linear_activation_bytes: per-sequence activations that scale
            linearly with length (hidden states, FFN intermediates).
        quadratic_activation_bytes: per-sequence attention scores/probs
            that scale quadratically with length.
    """

    seq_len: int
    weight_bytes: int
    linear_activation_bytes: int
    quadratic_activation_bytes: int

    @property
    def per_sequence_bytes(self) -> int:
        return (self.linear_activation_bytes
                + self.quadratic_activation_bytes)

    def max_batch(self, device_bytes: int = A100_MEMORY_BYTES,
                  workspace_fraction: float = 0.8) -> int:
        """Largest batch fitting in ``device_bytes`` of device memory."""
        available = device_bytes * workspace_fraction - self.weight_bytes
        if available <= 0:
            return 0
        return max(int(available // self.per_sequence_bytes), 0)


def model_footprint(config: BertConfig, seq_len: int) -> MemoryFootprint:
    """Analytic footprint of one layer-pipelined inference.

    Activations are counted for the live set of one encoder layer (the
    framework frees or reuses buffers layer to layer): hidden states in/
    out, Q/K/V, the FFN intermediate, and the per-head score matrices.
    """
    if seq_len <= 0 or seq_len > config.max_position:
        raise ValueError("seq_len out of range for the model")
    h, inter, heads = (config.hidden_size, config.intermediate_size,
                       config.num_heads)
    weight_bytes = config.parameter_count * WEIGHT_BYTES
    # Live linear activations: hidden in/out + Q,K,V + context + FFN
    # intermediate (the dominant term).
    linear = seq_len * (6 * h + inter) * GPU_ACTIVATION_BYTES
    # Scores + probabilities per head, double-buffered across the softmax.
    quadratic = 2 * heads * seq_len * seq_len * GPU_ACTIVATION_BYTES
    return MemoryFootprint(seq_len=seq_len, weight_bytes=weight_bytes,
                           linear_activation_bytes=linear,
                           quadratic_activation_bytes=quadratic)


def footprint_sweep(config: Optional[BertConfig] = None,
                    lengths: Sequence[int] = (32, 64, 128, 256, 512,
                                              1024, 2048)
                    ) -> List[MemoryFootprint]:
    """Footprints across the Figure 3 length sweep."""
    config = config or protein_bert_base()
    return [model_footprint(config, seq_len) for seq_len in lengths]


def prose_device_bytes(hardware: Optional[HardwareConfig] = None) -> int:
    """Total on-accelerator storage of a ProSE instance.

    Accumulators (32 bits per PE) plus the streaming/partial input
    buffers — the paper's whole point: no scratchpad, no device DRAM.
    """
    hardware = hardware or best_perf()
    accumulator_bits = 32 * hardware.total_pes
    buffer_bits = sum(group.count * input_buffer_bits(group.size)
                      for group in hardware.groups)
    return (accumulator_bits + buffer_bits) // 8


def format_sweep(footprints: Sequence[MemoryFootprint],
                 hardware: Optional[HardwareConfig] = None) -> str:
    """Render the sweep with the paper-style maximum A100 batch column."""
    lines = [f"{'seq':>6s} {'quad MB/seq':>12s} {'linear MB/seq':>14s} "
             f"{'max A100 batch':>15s}"]
    for footprint in footprints:
        lines.append(
            f"{footprint.seq_len:6d} "
            f"{footprint.quadratic_activation_bytes / 2 ** 20:12.2f} "
            f"{footprint.linear_activation_bytes / 2 ** 20:14.2f} "
            f"{footprint.max_batch():15d}")
    device = prose_device_bytes(hardware)
    lines.append(f"ProSE on-accelerator storage, total: "
                 f"{device / 2 ** 20:.2f} MiB (length-independent)")
    return "\n".join(lines)
