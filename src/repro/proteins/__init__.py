"""Protein substrate: alphabet, tokenizer, sequences, datasets."""

from .alphabet import (
    AMINO_ACID_NAMES,
    CHARGE,
    DEFAULT_VOCABULARY,
    EXTENDED_AMINO_ACIDS,
    HYDROPATHY,
    STANDARD_AMINO_ACIDS,
    VOLUME,
    Vocabulary,
    is_valid_sequence,
)
from .datasets import (
    FAB_LENGTH,
    BindingDataset,
    BindingEnergyModel,
    FabVariant,
    make_binding_dataset,
)
from .sequences import (
    BACKGROUND_FREQUENCIES,
    FastaRecord,
    SequenceGenerator,
    format_fasta,
    iter_windows,
    length_histogram,
    parse_fasta,
    read_fasta,
    write_fasta,
)
from .tokenizer import Encoding, ProteinTokenizer
from .workloads import (
    Workload,
    WorkloadItem,
    bucket_batches,
    multi_domain_workload,
    screening_campaign,
    uniprot_like_workload,
)

__all__ = [
    "AMINO_ACID_NAMES",
    "BACKGROUND_FREQUENCIES",
    "CHARGE",
    "DEFAULT_VOCABULARY",
    "EXTENDED_AMINO_ACIDS",
    "FAB_LENGTH",
    "HYDROPATHY",
    "STANDARD_AMINO_ACIDS",
    "VOLUME",
    "BindingDataset",
    "BindingEnergyModel",
    "Encoding",
    "FabVariant",
    "FastaRecord",
    "ProteinTokenizer",
    "SequenceGenerator",
    "Vocabulary",
    "Workload",
    "WorkloadItem",
    "bucket_batches",
    "multi_domain_workload",
    "screening_campaign",
    "uniprot_like_workload",
    "format_fasta",
    "is_valid_sequence",
    "iter_windows",
    "length_histogram",
    "make_binding_dataset",
    "parse_fasta",
    "read_fasta",
    "write_fasta",
]
