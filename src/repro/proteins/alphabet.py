"""Amino-acid alphabet and token vocabulary for Protein BERT models.

A Protein BERT model tokenizes a protein sequence one amino acid per token
(paper Section 2.1, Figure 2).  The vocabulary follows the TAPE convention:
the 20 standard amino acids, the 5 ambiguous/non-standard codes that appear
in real sequence databases (B, O, U, X, Z), and the special tokens BERT-style
models require (pad, mask, class, separator, unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The 20 standard proteinogenic amino acids, one-letter codes.
STANDARD_AMINO_ACIDS: Tuple[str, ...] = (
    "A", "C", "D", "E", "F", "G", "H", "I", "K", "L",
    "M", "N", "P", "Q", "R", "S", "T", "V", "W", "Y",
)

#: Ambiguous / non-standard one-letter codes found in sequence databases.
EXTENDED_AMINO_ACIDS: Tuple[str, ...] = ("B", "O", "U", "X", "Z")

#: Three-letter names, used by FASTA annotation helpers and examples.
AMINO_ACID_NAMES: Dict[str, str] = {
    "A": "Alanine", "C": "Cysteine", "D": "Aspartate", "E": "Glutamate",
    "F": "Phenylalanine", "G": "Glycine", "H": "Histidine", "I": "Isoleucine",
    "K": "Lysine", "L": "Leucine", "M": "Methionine", "N": "Asparagine",
    "P": "Proline", "Q": "Glutamine", "R": "Arginine", "S": "Serine",
    "T": "Threonine", "V": "Valine", "W": "Tryptophan", "Y": "Tyrosine",
    "B": "Asx", "O": "Pyrrolysine", "U": "Selenocysteine", "X": "Unknown",
    "Z": "Glx",
}

#: Kyte-Doolittle hydropathy index, used by the synthetic binding-energy
#: model in :mod:`repro.binding` as a simple biophysical descriptor.
HYDROPATHY: Dict[str, float] = {
    "A": 1.8, "C": 2.5, "D": -3.5, "E": -3.5, "F": 2.8, "G": -0.4,
    "H": -3.2, "I": 4.5, "K": -3.9, "L": 3.8, "M": 1.9, "N": -3.5,
    "P": -1.6, "Q": -3.5, "R": -4.5, "S": -0.8, "T": -0.7, "V": 4.2,
    "W": -0.9, "Y": -1.3, "B": -3.5, "O": -3.9, "U": 2.5, "X": 0.0,
    "Z": -3.5,
}

#: Approximate residue side-chain charge at physiological pH.
CHARGE: Dict[str, float] = {
    "D": -1.0, "E": -1.0, "K": 1.0, "R": 1.0, "H": 0.1,
}

#: Approximate side-chain volume in cubic angstroms.
VOLUME: Dict[str, float] = {
    "A": 88.6, "C": 108.5, "D": 111.1, "E": 138.4, "F": 189.9, "G": 60.1,
    "H": 153.2, "I": 166.7, "K": 168.6, "L": 166.7, "M": 162.9, "N": 114.1,
    "P": 112.7, "Q": 143.8, "R": 173.4, "S": 89.0, "T": 116.1, "V": 140.0,
    "W": 227.8, "Y": 193.6, "B": 112.6, "O": 170.0, "U": 108.5, "X": 140.0,
    "Z": 141.1,
}


@dataclass(frozen=True)
class Vocabulary:
    """A token vocabulary mapping amino-acid characters to integer ids.

    Follows the TAPE layout: special tokens first, then amino acids.  The
    special tokens mirror what a BERT-style model needs for pre-training and
    downstream fine-tuning tasks.
    """

    pad_token: str = "<pad>"
    mask_token: str = "<mask>"
    cls_token: str = "<cls>"
    sep_token: str = "<sep>"
    unk_token: str = "<unk>"
    tokens: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.tokens:
            specials = (self.pad_token, self.mask_token, self.cls_token,
                        self.sep_token, self.unk_token)
            object.__setattr__(
                self, "tokens",
                specials + STANDARD_AMINO_ACIDS + EXTENDED_AMINO_ACIDS)

    @property
    def size(self) -> int:
        """Number of distinct tokens (30 for the default layout)."""
        return len(self.tokens)

    def index(self, token: str) -> int:
        """Return the integer id for ``token``, or the <unk> id if absent."""
        try:
            return self.tokens.index(token)
        except ValueError:
            return self.tokens.index(self.unk_token)

    @property
    def pad_id(self) -> int:
        return self.tokens.index(self.pad_token)

    @property
    def mask_id(self) -> int:
        return self.tokens.index(self.mask_token)

    @property
    def cls_id(self) -> int:
        return self.tokens.index(self.cls_token)

    @property
    def sep_id(self) -> int:
        return self.tokens.index(self.sep_token)

    @property
    def unk_id(self) -> int:
        return self.tokens.index(self.unk_token)

    def id_to_token(self, token_id: int) -> str:
        """Inverse of :meth:`index`."""
        return self.tokens[token_id]


#: Module-level default vocabulary shared by the tokenizer and the model.
DEFAULT_VOCABULARY = Vocabulary()


def is_valid_sequence(sequence: str, allow_extended: bool = True) -> bool:
    """Return True when every character is a recognised amino-acid code."""
    valid: List[str] = list(STANDARD_AMINO_ACIDS)
    if allow_extended:
        valid.extend(EXTENDED_AMINO_ACIDS)
    allowed = set(valid)
    return bool(sequence) and all(ch in allowed for ch in sequence.upper())
