"""Synthetic antibody-variant datasets for the binding-affinity study.

Paper Section 2.2 trains a downstream regression on 39 Herceptin Fab
variants and tests on 35 BH1 Fab variants, both binding the HER2 protein
(AB-Bind database [46]).  The database itself is not redistributable, so we
build the closest synthetic equivalent: two variant libraries derived from a
shared Fab-like scaffold (~450 residues, matching the paper's Fab length),
with a biophysically motivated ground-truth binding energy.

The ground truth scores each variant by the hydropathy / charge / volume of
the residues at a set of "paratope" positions (the antibody positions that
contact the antigen), plus epistatic pairwise terms and measurement noise.
This preserves the property the paper's experiment demonstrates: sequence-
level features extracted by a Protein BERT encoder carry enough signal for a
regularized linear model to rank variants by affinity with rank correlation
around 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .alphabet import CHARGE, HYDROPATHY, VOLUME
from .sequences import SequenceGenerator

#: Length of the Fab subsequence, "∼450 amino acids" per the paper.
FAB_LENGTH = 450

#: Number of paratope (antigen-contacting) positions in the synthetic model.
NUM_PARATOPE_POSITIONS = 24


@dataclass(frozen=True)
class FabVariant:
    """One antibody Fab variant with its ground-truth binding affinity.

    Attributes:
        name: identifier such as ``"herceptin_v07"``.
        sequence: amino-acid string of the Fab subsequence.
        affinity: synthetic binding affinity (higher binds more strongly).
    """

    name: str
    sequence: str
    affinity: float


@dataclass(frozen=True)
class BindingDataset:
    """Train/test split for the binding-affinity experiment.

    Attributes:
        train: Herceptin-like variants (paper: 39 sequences).
        test: BH1-like variants used as the independent test set (paper: 35).
        paratope: positions the ground-truth energy reads.
    """

    train: Tuple[FabVariant, ...]
    test: Tuple[FabVariant, ...]
    paratope: Tuple[int, ...] = field(default=(), repr=False)

    @property
    def train_sequences(self) -> List[str]:
        return [v.sequence for v in self.train]

    @property
    def test_sequences(self) -> List[str]:
        return [v.sequence for v in self.test]

    @property
    def train_affinities(self) -> np.ndarray:
        return np.array([v.affinity for v in self.train])

    @property
    def test_affinities(self) -> np.ndarray:
        return np.array([v.affinity for v in self.test])


class BindingEnergyModel:
    """Synthetic ground-truth binding energy over paratope residues.

    The energy is a weighted sum of per-position biophysical descriptors
    (hydropathy, charge, side-chain volume) at the paratope positions, plus
    pairwise epistasis between adjacent paratope positions.  Weights are
    drawn once from the seed so the model is deterministic.

    The hydropathy weights carry a positive mean: burying hydrophobic
    surface at a protein-protein interface is the dominant favorable term
    in real binding free energies, and this composition-level signal is
    what sequence-only language-model features can credibly transfer.
    """

    def __init__(self, paratope: Sequence[int], seed: int = 7) -> None:
        if not paratope:
            raise ValueError("paratope must contain at least one position")
        self.paratope = tuple(paratope)
        rng = np.random.default_rng(seed)
        count = len(self.paratope)
        self._hydropathy_weights = rng.normal(1.0, 0.4, size=count)
        self._charge_weights = rng.normal(0.5, 0.8, size=count)
        self._volume_weights = rng.normal(0.0, 0.004, size=count)
        self._pair_weights = rng.normal(0.0, 0.3, size=max(count - 1, 1))

    def energy(self, sequence: str) -> float:
        """Return the ground-truth binding energy of ``sequence``."""
        residues = [sequence[p] for p in self.paratope]
        hydro = np.array([HYDROPATHY.get(r, 0.0) for r in residues])
        charge = np.array([CHARGE.get(r, 0.0) for r in residues])
        volume = np.array([VOLUME.get(r, 140.0) for r in residues])
        linear = (self._hydropathy_weights @ hydro
                  + self._charge_weights @ charge
                  + self._volume_weights @ volume)
        pairwise = float(
            self._pair_weights[:len(residues) - 1]
            @ (hydro[:-1] * hydro[1:])) if len(residues) > 1 else 0.0
        return float(linear + 0.1 * pairwise)


def make_binding_dataset(num_train: int = 39, num_test: int = 35,
                         seed: int = 2022, noise_scale: float = 0.3,
                         mutations_per_variant: int = 6) -> BindingDataset:
    """Build the synthetic Herceptin/BH1 binding dataset.

    Variant libraries substitute positions in the CDR-like region around
    the paratope — as real antibody affinity-maturation libraries do — so
    every variant perturbs the binding interface.

    Args:
        num_train: number of Herceptin-like training variants (paper: 39).
        num_test: number of BH1-like test variants (paper: 35).
        seed: master RNG seed.
        noise_scale: standard deviation of measurement noise added to the
            ground-truth energy, relative to the energy's own spread.
        mutations_per_variant: point substitutions applied per variant.

    Returns:
        A :class:`BindingDataset` with deterministic contents.
    """
    generator = SequenceGenerator(seed=seed)
    scaffold = generator.sequence(FAB_LENGTH)

    rng = np.random.default_rng(seed + 1)
    paratope = tuple(sorted(rng.choice(
        FAB_LENGTH, size=NUM_PARATOPE_POSITIONS, replace=False).tolist()))
    energy_model = BindingEnergyModel(paratope, seed=seed + 2)
    # The CDR-like mutable region: the paratope plus flanking residues.
    cdr_region = sorted({p + offset for p in paratope
                         for offset in (-1, 0, 1)
                         if 0 <= p + offset < FAB_LENGTH})

    # BH1 is a distinct antibody binding the same HER2 epitope; derive it
    # from the shared scaffold with a larger framework edit distance.
    framework = [p for p in range(FAB_LENGTH) if p not in set(cdr_region)]
    bh1_scaffold = generator.mutate(scaffold, num_mutations=40,
                                    positions=framework)

    def build(prefix: str, base: str, count: int) -> List[FabVariant]:
        variants = []
        for index in range(count):
            sequence = generator.mutate(base, mutations_per_variant,
                                        positions=cdr_region)
            energy = energy_model.energy(sequence)
            variants.append((f"{prefix}_v{index:02d}", sequence, energy))
        energies = np.array([v[2] for v in variants])
        spread = float(energies.std()) or 1.0
        noise = rng.normal(0.0, noise_scale * spread, size=count)
        return [FabVariant(name, seq, float(e + n))
                for (name, seq, e), n in zip(variants, noise)]

    train = build("herceptin", scaffold, num_train)
    test = build("bh1", bh1_scaffold, num_test)
    return BindingDataset(train=tuple(train), test=tuple(test),
                          paratope=paratope)
