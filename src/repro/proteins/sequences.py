"""Synthetic protein sequence generation and FASTA I/O.

The paper profiles Protein BERT on "synthetic protein strings" (Section 2.3)
with lengths from 32 to 2048 tokens.  This module produces such strings with
realistic amino-acid composition (UniProt background frequencies) and also
provides a tiny FASTA reader/writer so examples can round-trip datasets.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .alphabet import STANDARD_AMINO_ACIDS, is_valid_sequence

#: Approximate UniProt/Swiss-Prot background amino-acid frequencies.
BACKGROUND_FREQUENCIES: Dict[str, float] = {
    "A": 0.0826, "C": 0.0139, "D": 0.0546, "E": 0.0672, "F": 0.0387,
    "G": 0.0708, "H": 0.0228, "I": 0.0593, "K": 0.0580, "L": 0.0965,
    "M": 0.0241, "N": 0.0406, "P": 0.0475, "Q": 0.0393, "R": 0.0553,
    "S": 0.0660, "T": 0.0535, "V": 0.0687, "W": 0.0110, "Y": 0.0292,
}


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: a header line and an amino-acid sequence."""

    header: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


class SequenceGenerator:
    """Generates synthetic protein strings with background composition.

    Args:
        seed: RNG seed; generation is fully deterministic given the seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._alphabet = np.array(STANDARD_AMINO_ACIDS)
        freqs = np.array([BACKGROUND_FREQUENCIES[a]
                          for a in STANDARD_AMINO_ACIDS])
        self._probabilities = freqs / freqs.sum()

    def sequence(self, length: int) -> str:
        """Draw one synthetic protein string of exactly ``length`` residues."""
        if length <= 0:
            raise ValueError("sequence length must be positive")
        draws = self._rng.choice(self._alphabet, size=length,
                                 p=self._probabilities)
        return "".join(draws)

    def batch(self, count: int, length: int) -> List[str]:
        """Draw ``count`` synthetic strings of equal ``length``."""
        return [self.sequence(length) for _ in range(count)]

    def mutate(self, sequence: str, num_mutations: int,
               positions: Optional[Sequence[int]] = None) -> str:
        """Apply ``num_mutations`` random point substitutions.

        Used to derive antibody variants from a scaffold (Section 2.2's 39
        Herceptin Fab variants are point-mutant libraries).

        Args:
            sequence: the scaffold to mutate.
            num_mutations: number of distinct positions to substitute.
            positions: restrict substitutions to these positions (antibody
                libraries mutate the CDR/paratope region); all positions
                when omitted.
        """
        if num_mutations < 0:
            raise ValueError("num_mutations must be non-negative")
        candidates = (list(range(len(sequence))) if positions is None
                      else sorted(set(positions)))
        if num_mutations > len(candidates):
            raise ValueError("cannot mutate more positions than candidates")
        if any(not 0 <= p < len(sequence) for p in candidates):
            raise ValueError("mutation position out of range")
        residues = list(sequence)
        chosen = self._rng.choice(candidates, size=num_mutations,
                                  replace=False)
        for pos in chosen:
            current = residues[pos]
            choices = [a for a in STANDARD_AMINO_ACIDS if a != current]
            residues[pos] = str(self._rng.choice(choices))
        return "".join(residues)


def parse_fasta(text: str) -> List[FastaRecord]:
    """Parse FASTA-formatted text into records.

    Raises:
        ValueError: on malformed input (sequence data before any header,
            or a record containing non-amino-acid characters).
    """
    records: List[FastaRecord] = []
    header: Optional[str] = None
    chunks: List[str] = []

    def flush() -> None:
        if header is None:
            return
        sequence = "".join(chunks).upper()
        if not is_valid_sequence(sequence):
            raise ValueError(f"invalid sequence for record '{header}'")
        records.append(FastaRecord(header=header, sequence=sequence))

    for line in io.StringIO(text):
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError("sequence data before any FASTA header")
            chunks.append(line)
    flush()
    return records


def read_fasta(path: Union[str, Path]) -> List[FastaRecord]:
    """Read a FASTA file from disk."""
    return parse_fasta(Path(path).read_text())


def format_fasta(records: Iterable[FastaRecord], width: int = 60) -> str:
    """Render records as FASTA text with wrapped sequence lines."""
    lines: List[str] = []
    for record in records:
        lines.append(f">{record.header}")
        seq = record.sequence
        for start in range(0, len(seq), width):
            lines.append(seq[start:start + width])
    return "\n".join(lines) + "\n"


def write_fasta(records: Iterable[FastaRecord], path: Union[str, Path],
                width: int = 60) -> None:
    """Write records to a FASTA file."""
    Path(path).write_text(format_fasta(records, width=width))


def length_histogram(records: Sequence[FastaRecord],
                     bins: Sequence[int]) -> Dict[Tuple[int, int], int]:
    """Histogram of sequence lengths over half-open ``[lo, hi)`` bins."""
    histogram: Dict[Tuple[int, int], int] = {}
    edges = list(bins)
    for lo, hi in zip(edges[:-1], edges[1:]):
        histogram[(lo, hi)] = sum(1 for r in records if lo <= len(r) < hi)
    return histogram


def iter_windows(sequence: str, window: int, stride: int) -> Iterator[str]:
    """Yield overlapping windows of ``sequence`` (long-protein chunking)."""
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    if len(sequence) <= window:
        yield sequence
        return
    for start in range(0, len(sequence) - window + 1, stride):
        yield sequence[start:start + window]
