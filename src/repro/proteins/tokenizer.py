"""Character-level protein tokenizer.

Mirrors the paper's description: "the model takes in a protein sequence,
represented as an amino acid alphabet, tokenizes sequence into individual
characters per token" (Section 2.1).  The tokenizer adds the BERT-style
``<cls>`` / ``<sep>`` framing and supports padding and truncation so inputs
can be batched for the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .alphabet import DEFAULT_VOCABULARY, Vocabulary


@dataclass(frozen=True)
class Encoding:
    """The result of tokenizing one protein sequence.

    Attributes:
        ids: integer token ids, shape ``(length,)``.
        attention_mask: 1 for real tokens, 0 for padding, same shape.
    """

    ids: np.ndarray
    attention_mask: np.ndarray

    @property
    def length(self) -> int:
        return int(self.ids.shape[0])

    @property
    def num_real_tokens(self) -> int:
        return int(self.attention_mask.sum())


class ProteinTokenizer:
    """Tokenizes amino-acid strings into id arrays for Protein BERT.

    Args:
        vocabulary: token vocabulary; defaults to the TAPE-style 30-token one.
        add_special_tokens: wrap sequences in ``<cls>`` ... ``<sep>``.
    """

    def __init__(self, vocabulary: Optional[Vocabulary] = None,
                 add_special_tokens: bool = True) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.add_special_tokens = add_special_tokens

    def encode(self, sequence: str, max_length: Optional[int] = None,
               pad_to_max_length: bool = False) -> Encoding:
        """Encode one protein string.

        Args:
            sequence: amino-acid string such as ``"MEYQ"``.
            max_length: truncate so the full encoding (including special
                tokens) does not exceed this length.
            pad_to_max_length: right-pad with ``<pad>`` up to ``max_length``.

        Returns:
            An :class:`Encoding` of ids and attention mask.
        """
        vocab = self.vocabulary
        ids: List[int] = [vocab.index(ch) for ch in sequence.upper()]
        if self.add_special_tokens:
            budget = None if max_length is None else max_length - 2
            if budget is not None and len(ids) > budget:
                ids = ids[:budget]
            ids = [vocab.cls_id] + ids + [vocab.sep_id]
        elif max_length is not None and len(ids) > max_length:
            ids = ids[:max_length]

        mask = [1] * len(ids)
        if pad_to_max_length:
            if max_length is None:
                raise ValueError("pad_to_max_length requires max_length")
            pad_count = max_length - len(ids)
            ids.extend([vocab.pad_id] * pad_count)
            mask.extend([0] * pad_count)
        return Encoding(ids=np.asarray(ids, dtype=np.int64),
                        attention_mask=np.asarray(mask, dtype=np.int64))

    def encode_batch(self, sequences: Sequence[str],
                     max_length: Optional[int] = None) -> Encoding:
        """Encode a batch, padding every sequence to a common length.

        Args:
            sequences: protein strings.
            max_length: if given, the common length; otherwise the longest
                encoded sequence in the batch sets it.

        Returns:
            An :class:`Encoding` whose arrays have shape ``(batch, length)``.
        """
        if not sequences:
            raise ValueError("encode_batch requires at least one sequence")
        if max_length is None:
            extra = 2 if self.add_special_tokens else 0
            max_length = max(len(s) for s in sequences) + extra
        encodings = [self.encode(s, max_length=max_length,
                                 pad_to_max_length=True) for s in sequences]
        return Encoding(
            ids=np.stack([e.ids for e in encodings]),
            attention_mask=np.stack([e.attention_mask for e in encodings]))

    def decode(self, ids: Sequence[int], skip_special_tokens: bool = True
               ) -> str:
        """Map token ids back to an amino-acid string."""
        vocab = self.vocabulary
        special = {vocab.pad_id, vocab.mask_id, vocab.cls_id,
                   vocab.sep_id, vocab.unk_id}
        chars = []
        for token_id in ids:
            token_id = int(token_id)
            if skip_special_tokens and token_id in special:
                continue
            chars.append(vocab.id_to_token(token_id))
        return "".join(chars)
