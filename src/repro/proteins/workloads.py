"""Realistic protein workload generators.

The paper's motivation (Sections 1-2): protein inputs are "obligately
long" — 300 to 2000+ tokens — with multi-domain proteins reaching past
2000, and drug-discovery screening runs inference over large variant
libraries.  This module generates workloads with realistic length
statistics (a UniProt-like log-normal length distribution) and screening
campaigns (antibody libraries around a therapeutic scaffold), for
end-to-end throughput studies on mixed-length traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .datasets import FAB_LENGTH
from .sequences import SequenceGenerator

#: Log-normal parameters approximating the UniProt length distribution
#: (median ~300 residues, heavy right tail into the thousands).
UNIPROT_LOG_MEAN = 5.71     # exp(5.71) ≈ 302
UNIPROT_LOG_SIGMA = 0.60


@dataclass(frozen=True)
class WorkloadItem:
    """One inference request: a sequence and its token length."""

    sequence: str
    length: int


@dataclass(frozen=True)
class Workload:
    """A batch of inference requests with length statistics."""

    name: str
    items: Tuple[WorkloadItem, ...]

    def __len__(self) -> int:
        return len(self.items)

    @property
    def lengths(self) -> np.ndarray:
        return np.array([item.length for item in self.items])

    @property
    def mean_length(self) -> float:
        return float(self.lengths.mean())

    @property
    def max_length(self) -> int:
        return int(self.lengths.max())

    def length_histogram(self, edges: Sequence[int]
                         ) -> Dict[Tuple[int, int], int]:
        histogram: Dict[Tuple[int, int], int] = {}
        lengths = self.lengths
        for low, high in zip(edges[:-1], edges[1:]):
            histogram[(low, high)] = int(
                ((lengths >= low) & (lengths < high)).sum())
        return histogram

    def sorted_by_length(self) -> "Workload":
        """Length-sorted copy (the batching policy that minimizes padding)."""
        ordered = tuple(sorted(self.items, key=lambda item: item.length))
        return Workload(name=f"{self.name} (sorted)", items=ordered)


def uniprot_like_workload(count: int = 256, seed: int = 0,
                          min_length: int = 30,
                          max_length: int = 2048) -> Workload:
    """Sequences with a UniProt-like log-normal length distribution."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    generator = SequenceGenerator(seed=seed + 1)
    items: List[WorkloadItem] = []
    while len(items) < count:
        length = int(rng.lognormal(UNIPROT_LOG_MEAN, UNIPROT_LOG_SIGMA))
        if not min_length <= length <= max_length:
            continue
        items.append(WorkloadItem(sequence=generator.sequence(length),
                                  length=length))
    return Workload(name="uniprot-like", items=tuple(items))


def screening_campaign(library_size: int = 256, seed: int = 3,
                       mutations: int = 6) -> Workload:
    """An antibody screening campaign: Fab variants of one scaffold.

    All sequences share the Fab length (~450 residues), matching the
    Section 2.2 drug-development scenario where a variant library is
    scored against a disease target.
    """
    if library_size <= 0:
        raise ValueError("library_size must be positive")
    generator = SequenceGenerator(seed=seed)
    scaffold = generator.sequence(FAB_LENGTH)
    items = tuple(
        WorkloadItem(sequence=generator.mutate(scaffold, mutations),
                     length=FAB_LENGTH)
        for _ in range(library_size))
    return Workload(name="fab-screening", items=items)


def multi_domain_workload(count: int = 64, seed: int = 5,
                          domain_length: int = 250,
                          max_domains: int = 8) -> Workload:
    """Multi-domain proteins: 1-8 domains of ~250 residues each.

    The long-range inter-domain effects these proteins exhibit are the
    paper's argument for why protein inputs cannot be truncated.
    """
    rng = np.random.default_rng(seed)
    generator = SequenceGenerator(seed=seed + 1)
    items = []
    for _ in range(count):
        domains = int(rng.integers(1, max_domains + 1))
        length = domains * domain_length + int(rng.integers(-20, 21))
        length = max(length, 30)
        items.append(WorkloadItem(sequence=generator.sequence(length),
                                  length=length))
    return Workload(name="multi-domain", items=tuple(items))


def bucket_batches(workload: Workload, bucket_edges: Sequence[int],
                   max_batch: int = 64) -> List[Tuple[int, int]]:
    """Group a workload into padded (padded_length, batch_size) batches.

    Items are bucketed by the smallest edge that covers them (each batch
    pads to its bucket edge), then split into chunks of ``max_batch``.

    Returns:
        (padded token length, batch size) pairs covering the workload.
    """
    if max_batch <= 0:
        raise ValueError("max_batch must be positive")
    if not workload.items:
        return []
    edges = sorted(bucket_edges)
    if workload.max_length > edges[-1]:
        raise ValueError("largest bucket edge must cover the workload")
    counts: Dict[int, int] = {edge: 0 for edge in edges}
    for item in workload.items:
        edge = next(e for e in edges if item.length <= e)
        counts[edge] += 1
    batches: List[Tuple[int, int]] = []
    for edge in edges:
        remaining = counts[edge]
        while remaining > 0:
            size = min(remaining, max_batch)
            batches.append((edge, size))
            remaining -= size
    return batches
