"""Fault injection, detection, and degradation-aware recovery.

The reliability subsystem threads one seeded :class:`FaultModel` through
every layer of the simulated stack:

* **arch** — bfloat16 bit flips in systolic GEMM tiles (ABFT
  column-checksum detection + recompute) and LUT evaluations (silent);
* **system** — transient link errors and whole-instance failures, with
  resharding recovery across survivors
  (:meth:`repro.system.ProSESystem.simulate_with_faults`);
* **serving** — batch retries with capped exponential backoff and
  straggler-deadline reruns
  (:class:`repro.system.CampaignSimulator`).

Every fault-aware path is bit-identical to the fault-free one when the
model is inert (all rates zero), and bit-reproducible for a given seed.
"""

from .abft import (
    BF16_EPSILON,
    checksum_row,
    detect_corrupted_columns,
    detection_threshold,
)
from .faults import FaultModel, FaultRates, FaultStats, derive_task_seed
from .policy import DegradationPolicy, RetryPolicy, validate_policy_interplay
from .report import ReliabilityReport

__all__ = [
    "BF16_EPSILON",
    "DegradationPolicy",
    "FaultModel",
    "FaultRates",
    "FaultStats",
    "ReliabilityReport",
    "RetryPolicy",
    "checksum_row",
    "derive_task_seed",
    "detect_corrupted_columns",
    "detection_threshold",
    "validate_policy_interplay",
]
