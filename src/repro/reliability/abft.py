"""ABFT-style column-checksum detection for systolic-array GEMMs.

Algorithm-based fault tolerance (Huang & Abraham) protects a matrix
multiply C = A @ B by carrying one extra checksum row: the column sums of
A are streamed through the array like any other row, so the array itself
produces sum_i C[i, j] alongside the data.  Comparing that hardware
checksum against the column sums of the delivered C exposes corrupted
columns at the cost of one extra row per tile — the "lightweight" scheme
ProSE would realistically deploy, since it reuses the existing MAC path.

The functional model reproduces the scheme's real detection limits: the
checksum row is itself carried in bfloat16, so its rounding noise sets a
detection threshold.  Bit flips that move a value by less than that
threshold (low mantissa bits of small elements) stay *silent* — exactly
the silent-data-corruption residue hardware ABFT leaves behind.
"""

from __future__ import annotations

import numpy as np

from ..model.tensors import BF16_MANTISSA_BITS, to_bfloat16

#: Unit roundoff of bfloat16 (one ulp at magnitude 1 is 2**-7; rounding
#: error is at most half of that, but the checksum row both rounds its
#: sum and re-rounds products, so we budget a full ulp).
BF16_EPSILON = 2.0 ** (-(BF16_MANTISSA_BITS + 1))

#: Multiplier on the analytic rounding bound before flagging a column.
DEFAULT_SAFETY = 4.0

#: fp32 accumulation-order noise factor: the checksum dot product and the
#: column sums of C reduce in different orders, so they differ by a few
#: ulps of float32 relative to the magnitude sum (headroom included).
FP32_ACCUMULATION_EPSILON = 2.0 ** -20


def checksum_row(a_bf16: np.ndarray) -> np.ndarray:
    """The bfloat16 checksum row the array would stream: column sums of A."""
    return to_bfloat16(a_bf16.sum(axis=0, dtype=np.float32))


def detection_threshold(a_bf16: np.ndarray, b_bf16: np.ndarray,
                        safety: float = DEFAULT_SAFETY) -> np.ndarray:
    """Per-column detection threshold from bf16 rounding of the checksum.

    Rounding the checksum row perturbs entry k by at most
    ``BF16_EPSILON * |sum_i A[i, k]|``; propagating through B bounds the
    checksum error per column j by ``eps * (|csum| @ |B|)[j]``.  A column
    whose observed discrepancy exceeds ``safety`` times this bound cannot
    be rounding noise and is flagged as corrupted.
    """
    magnitude = np.abs(checksum_row(a_bf16)) @ np.abs(b_bf16)
    # bf16 rounding error is relative to the rounded checksum entries
    # themselves (cancellation shrinks the absolute error too); the
    # element-magnitude floor only needs to absorb fp32 reduction-order
    # noise, which is six binades finer.
    floor = FP32_ACCUMULATION_EPSILON * (
        np.abs(a_bf16).sum(axis=0, dtype=np.float32) @ np.abs(b_bf16))
    return safety * (BF16_EPSILON * magnitude + floor) + 1e-30


def detect_corrupted_columns(a_bf16: np.ndarray, b_bf16: np.ndarray,
                             result: np.ndarray,
                             safety: float = DEFAULT_SAFETY) -> np.ndarray:
    """Boolean mask of result columns whose checksum test fails.

    Args:
        a_bf16: left operand, already rounded to bfloat16.
        b_bf16: right operand, already rounded to bfloat16.
        result: the (possibly corrupted) fp32-accumulated product.
        safety: multiplier on the rounding bound.

    Returns:
        mask of shape (result.shape[1],); True marks a detected column.
    """
    expected = checksum_row(a_bf16) @ b_bf16
    observed = result.sum(axis=0, dtype=np.float32)
    discrepancy = np.abs(expected - observed)
    # Non-finite corruption (a flip landing on an exponent pattern the
    # guard missed) always trips the checksum.
    non_finite = ~np.isfinite(result).all(axis=0)
    return (discrepancy > detection_threshold(a_bf16, b_bf16, safety)) \
        | non_finite
