"""Seeded, deterministic fault injection for the simulated ProSE stack.

One :class:`FaultModel` instance threads through every layer of the
simulator — systolic-array tiles, LUT evaluations, link transfers,
whole-instance failures, and serving-layer batch attempts — drawing from
*independent* seeded substreams per layer, so the fault sequence one
layer sees does not depend on how many draws another layer made.  The
same seed therefore reproduces the same fault scenario exactly, which is
what makes fault-injection campaigns (and their regression tests)
deterministic.

Compute faults are single bfloat16 bit flips, the canonical SDC model:
a flip lands in one element of one output tile, in a uniformly chosen
bit of the 16-bit bfloat16 pattern (sign, 8 exponent, 7 mantissa).
GEMM outputs are protected by the ABFT column checksums of
:mod:`repro.reliability.abft` — detected columns are recomputed
(restored), undetected flips persist into downstream math as silent
data corruption.  LUT outputs have no checksum (sums do not commute
with nonlinear functions), so LUT flips are always silent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .abft import detect_corrupted_columns

#: Substream labels — each gets an independent RNG child stream.
_STREAMS = ("compute", "link", "instance", "serving")


def derive_task_seed(root_seed: int, *key_parts: object) -> int:
    """A per-task seed derived from the task's identity, not RNG state.

    Campaign sweeps fan tasks out over worker processes; any task seed
    that depends on *draw order* (e.g. successive calls on a shared
    generator) silently changes with the worker count.  Hashing the
    root seed together with the task key instead makes each task's
    fault sequence a pure function of *what* the task is — bit-identical
    at ``workers=1`` and ``workers=N``, stable under reordering, and
    decorrelated between tasks that share a root seed.

    Uses SHA-256 of the ``repr`` of the parts (never Python's ``hash``,
    which is salted per process for strings), truncated to 63 bits so
    the result is a valid ``numpy`` seed everywhere.
    """
    text = repr((int(root_seed),) + tuple(key_parts))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2 ** 63 - 1)


@dataclass(frozen=True)
class FaultRates:
    """Per-event fault probabilities for every layer of the stack.

    All rates default to zero: a default-constructed model is inert and
    every wrapped code path is bit-identical to the fault-free one.

    Attributes:
        tile_bitflip: probability that one output tile of a systolic
            GEMM suffers a single bfloat16 bit flip.
        lut_bitflip: probability per SIMD tile that a LUT evaluation
            (GELU/Exp) output suffers a single bit flip.
        link_transient: probability that one host-accelerator dispatch
            experiences a transient link error and must retransmit.
        instance_failure: probability that a ProSE instance hard-fails
            during one multi-instance batch.
        batch_failure: probability that one serving-layer batch attempt
            fails and must be retried.
        straggler: probability that one serving-layer batch straggles.
        straggler_slowdown: execution-time multiplier of a straggling
            batch (stragglers beyond the policy deadline are rerun).
    """

    tile_bitflip: float = 0.0
    lut_bitflip: float = 0.0
    link_transient: float = 0.0
    instance_failure: float = 0.0
    batch_failure: float = 0.0
    straggler: float = 0.0
    straggler_slowdown: float = 4.0

    def __post_init__(self) -> None:
        for name in ("tile_bitflip", "lut_bitflip", "link_transient",
                     "instance_failure", "batch_failure", "straggler"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], "
                                 f"got {value}")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1.0")

    @property
    def any_nonzero(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in (
            "tile_bitflip", "lut_bitflip", "link_transient",
            "instance_failure", "batch_failure", "straggler"))


@dataclass
class FaultStats:
    """Mutable counters accumulated by one fault model across a run."""

    injected: int = 0            # total bit flips (GEMM + LUT)
    gemm_flips: int = 0
    lut_flips: int = 0
    detected: int = 0            # flips caught (and corrected) by ABFT
    silent: int = 0              # flips that escaped detection
    corrected_columns: int = 0   # result columns restored by recompute

    @property
    def silent_error_rate(self) -> float:
        """Fraction of injected flips that escaped detection."""
        return self.silent / self.injected if self.injected else 0.0


class FaultModel:
    """Deterministic fault injector shared by every simulator layer.

    Args:
        rates: per-event fault probabilities (default: all zero, inert).
        seed: root seed; every substream derives from (seed, stream id).
        targeted_instance_failures: instance indices that *always* fail
            in the next multi-instance simulation — the deterministic
            "kill instance k" primitive real fault-injection campaigns
            use to exercise a specific recovery path.
    """

    def __init__(self, rates: Optional[FaultRates] = None, seed: int = 0,
                 targeted_instance_failures: Tuple[int, ...] = ()) -> None:
        self.rates = rates or FaultRates()
        self.seed = seed
        self.targeted_instance_failures = tuple(targeted_instance_failures)
        self.stats = FaultStats()
        self._rngs = {}
        self.reset()

    def reset(self) -> None:
        """Rewind every substream and zero the counters.

        After ``reset()`` the model replays the exact same fault sequence,
        so two identical simulations bracket by ``reset()`` produce
        bit-identical outcomes.
        """
        self._rngs = {name: np.random.default_rng([self.seed, index])
                      for index, name in enumerate(_STREAMS)}
        self.stats = FaultStats()

    @property
    def active(self) -> bool:
        """True when any fault can actually occur."""
        return self.rates.any_nonzero or bool(self.targeted_instance_failures)

    # -- compute faults: bfloat16 bit flips into GEMM / LUT tiles --------

    @staticmethod
    def _flip_bf16_bit(value: np.float32, bit: int) -> np.float32:
        """Flip one bit of the bfloat16 pattern (bit 0..15, LSB-first).

        bfloat16 occupies the top 16 bits of the float32 encoding, so
        pattern bit ``b`` is float32 bit ``16 + b``.  Flips that would
        produce a non-finite value (exponent landing on all-ones) fall
        back to the lowest mantissa bit — the hardware analogue is an
        upset in the mantissa SRAM rather than a synthetic Inf.
        """
        bits = np.float32(value).view(np.uint32)
        flipped = np.uint32(bits ^ np.uint32(1 << (16 + bit)))
        result = flipped.view(np.float32)
        if not np.isfinite(result):
            flipped = np.uint32(bits ^ np.uint32(1 << 16))
            result = flipped.view(np.float32)
        return result

    def _inject_tile_flips(self, values: np.ndarray, tiles_rows: int,
                           tiles_cols: int, rate: float
                           ) -> Tuple[np.ndarray, Tuple[Tuple[int, int], ...]]:
        """Flip one bit in up to Binomial(tiles, rate) output tiles.

        Returns the (possibly copied) array and the flipped positions.
        """
        rng = self._rngs["compute"]
        tiles = tiles_rows * tiles_cols
        count = int(rng.binomial(tiles, rate)) if rate > 0.0 else 0
        if count == 0:
            return values, ()
        rows, cols = values.shape
        tile_height = -(-rows // tiles_rows)  # ceil division
        tile_width = -(-cols // tiles_cols)
        corrupted = values.copy()
        positions = []
        for _ in range(count):
            tile = int(rng.integers(tiles))
            tile_row, tile_col = divmod(tile, tiles_cols)
            row = min(tile_row * tile_height
                      + int(rng.integers(tile_height)), rows - 1)
            col = min(tile_col * tile_width
                      + int(rng.integers(tile_width)), cols - 1)
            bit = int(rng.integers(16))
            corrupted[row, col] = self._flip_bf16_bit(corrupted[row, col],
                                                      bit)
            positions.append((row, col))
        return corrupted, tuple(positions)

    def corrupt_gemm(self, result: np.ndarray, a_bf16: np.ndarray,
                     b_bf16: np.ndarray, array_size: int) -> np.ndarray:
        """Inject tile bit flips into a GEMM result, then run ABFT.

        Detected columns are restored (the recompute a real controller
        would trigger); silent flips remain in the returned matrix.
        """
        if self.rates.tile_bitflip <= 0.0 or result.size == 0:
            return result
        tiles_rows = -(-result.shape[0] // array_size)
        tiles_cols = -(-result.shape[1] // array_size)
        corrupted, positions = self._inject_tile_flips(
            result, tiles_rows, tiles_cols, self.rates.tile_bitflip)
        if not positions:
            return result
        self.stats.injected += len(positions)
        self.stats.gemm_flips += len(positions)
        flagged = detect_corrupted_columns(a_bf16, b_bf16, corrupted)
        for _, col in positions:
            if flagged[col]:
                self.stats.detected += 1
            else:
                self.stats.silent += 1
        repaired_columns = np.flatnonzero(flagged)
        if repaired_columns.size:
            corrupted[:, repaired_columns] = result[:, repaired_columns]
            self.stats.corrected_columns += int(repaired_columns.size)
        return corrupted

    def corrupt_lut(self, result: np.ndarray,
                    array_size: int) -> np.ndarray:
        """Inject tile bit flips into a LUT (GELU/Exp) evaluation.

        There is no checksum that survives a nonlinear function, so every
        LUT flip is silent data corruption.
        """
        if self.rates.lut_bitflip <= 0.0 or result.size == 0:
            return result
        if result.ndim != 2:
            flat = result.reshape(result.shape[0], -1) if result.ndim > 1 \
                else result.reshape(1, -1)
        else:
            flat = result
        tiles_rows = -(-flat.shape[0] // array_size)
        tiles_cols = -(-flat.shape[1] // array_size)
        corrupted, positions = self._inject_tile_flips(
            flat, tiles_rows, tiles_cols, self.rates.lut_bitflip)
        if not positions:
            return result
        self.stats.injected += len(positions)
        self.stats.lut_flips += len(positions)
        self.stats.silent += len(positions)
        return corrupted.reshape(result.shape)

    # -- link faults ------------------------------------------------------

    def link_transients(self, transfers: int) -> int:
        """Transient link errors among ``transfers`` dispatches."""
        if self.rates.link_transient <= 0.0 or transfers <= 0:
            return 0
        return int(self._rngs["link"].binomial(transfers,
                                               self.rates.link_transient))

    # -- instance faults --------------------------------------------------

    def failed_instances(self, count: int) -> Tuple[int, ...]:
        """Indices of instances that hard-fail this batch (sorted)."""
        failed = {i for i in self.targeted_instance_failures if i < count}
        if self.rates.instance_failure > 0.0:
            draws = self._rngs["instance"].random(count)
            failed.update(
                i for i in range(count)
                if draws[i] < self.rates.instance_failure)
        return tuple(sorted(failed))

    def failure_fraction(self) -> float:
        """Fraction of a failed unit's work completed before the fault."""
        return float(self._rngs["instance"].random())

    # -- serving faults ---------------------------------------------------

    def batch_event(self) -> str:
        """Outcome of one serving-layer batch attempt.

        Returns:
            "fail", "straggle", or "ok" — drawn from the serving stream.
        """
        rates = self.rates
        if rates.batch_failure <= 0.0 and rates.straggler <= 0.0:
            return "ok"
        draw = float(self._rngs["serving"].random())
        if draw < rates.batch_failure:
            return "fail"
        if draw < rates.batch_failure + rates.straggler:
            return "straggle"
        return "ok"

    def attempt_fraction(self) -> float:
        """Fraction of a batch attempt elapsed before its failure."""
        return float(self._rngs["serving"].random())
