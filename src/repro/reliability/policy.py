"""Degradation and retry policies for the fault-aware system layers.

Two knobs-objects, both frozen dataclasses so a policy can be shared
between runs without aliasing surprises:

* :class:`RetryPolicy` governs the serving layer — capped exponential
  backoff between batch retries and the straggler deadline multiple
  beyond which a batch is killed and rerun instead of awaited.
* :class:`DegradationPolicy` governs the multi-instance system — how
  long failure detection takes (heartbeat timeout, as a fraction of the
  failed shard's expected completion) and how many survivors resharding
  requires.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Serving-layer retry semantics (capped exponential backoff).

    Attributes:
        max_retries: attempts beyond the first before a batch is dropped.
        backoff_base_seconds: backoff before the first retry.
        backoff_multiplier: growth factor per further retry.
        backoff_cap_seconds: upper bound on any single backoff.
        straggler_deadline_multiple: a batch exceeding this multiple of
            its nominal makespan is killed at the deadline and rerun.
    """

    max_retries: int = 3
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 1.0
    straggler_deadline_multiple: float = 2.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.straggler_deadline_multiple < 1.0:
            raise ValueError("straggler_deadline_multiple must be >= 1.0")

    def backoff_seconds(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), capped."""
        return min(self.backoff_base_seconds
                   * self.backoff_multiplier ** retry_index,
                   self.backoff_cap_seconds)


@dataclass(frozen=True)
class DegradationPolicy:
    """Multi-instance failure handling: detect, reshard, re-account.

    Attributes:
        detection_fraction: heartbeat-timeout cost of noticing a dead
            instance, as a fraction of the failed shard's expected
            makespan (detection cannot be instant — the host only
            learns of the failure after a missed heartbeat window).
        min_survivors: below this many healthy instances the system
            declares an outage and restarts everything from scratch.
        min_capacity_fraction: the brownout floor — when the fleet's
            schedulable capacity drops below this fraction of nominal,
            the scheduler load-sheds rather than queueing re-sharded
            work onto the remnant (0.0 disables shedding).
        shed_fraction: fraction of re-sharded work dropped per brownout
            trigger.
        circuit_breaker_failures: hard failures after which a flapping
            instance is quarantined from scheduling even once it
            reports healthy again (0 disables the breaker).
    """

    detection_fraction: float = 0.1
    min_survivors: int = 1
    min_capacity_fraction: float = 0.0
    shed_fraction: float = 0.5
    circuit_breaker_failures: int = 0

    def __post_init__(self) -> None:
        if self.detection_fraction < 0:
            raise ValueError("detection_fraction must be non-negative")
        if self.min_survivors < 1:
            raise ValueError("min_survivors must be at least 1")
        if not 0.0 <= self.min_capacity_fraction <= 1.0:
            raise ValueError("min_capacity_fraction must be in [0, 1]")
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in [0, 1]")
        if self.circuit_breaker_failures < 0:
            raise ValueError("circuit_breaker_failures must be "
                             "non-negative")

    def detection_seconds(self, shard_makespan: float) -> float:
        """Time between an instance dying and the host noticing."""
        return self.detection_fraction * shard_makespan


def validate_policy_interplay(retry: RetryPolicy,
                              degradation: DegradationPolicy,
                              nominal_seconds: float) -> None:
    """Reject retry/degradation combinations that cannot make progress.

    Both policies quote times against the *nominal* makespan of the
    work they govern, so contradictions only become visible once that
    scale is known.  Two are rejected:

    * a straggler deadline shorter than the first backoff step — the
      serving layer would kill every straggler, back off for longer
      than the deadline it just enforced, and loop without the retry
      ever being cheaper than the wait it replaced;
    * a failure-detection window longer than the straggler deadline —
      dead instances would be "detected" only after the straggler
      logic has already killed and rerun their batches, so every hard
      failure is double-charged.

    Raises:
        ValueError: naming the offending knobs and the nominal scale.
    """
    if nominal_seconds <= 0:
        raise ValueError(f"nominal_seconds must be positive, "
                         f"got {nominal_seconds}")
    deadline = retry.straggler_deadline_multiple * nominal_seconds
    first_backoff = retry.backoff_seconds(0)
    if deadline < first_backoff:
        raise ValueError(
            f"straggler deadline ({deadline:.6g}s = "
            f"{retry.straggler_deadline_multiple}x nominal "
            f"{nominal_seconds:.6g}s) is shorter than the first backoff "
            f"step ({first_backoff:.6g}s): every straggler kill would be "
            f"followed by a backoff longer than the deadline it "
            f"enforced, retrying forever without progress; lower "
            f"backoff_base_seconds or raise "
            f"straggler_deadline_multiple")
    detection = degradation.detection_seconds(nominal_seconds)
    if detection > deadline:
        raise ValueError(
            f"failure detection window ({detection:.6g}s = "
            f"{degradation.detection_fraction}x nominal "
            f"{nominal_seconds:.6g}s) exceeds the straggler deadline "
            f"({deadline:.6g}s): hard failures would be handled twice "
            f"(straggler kill, then detection); lower "
            f"detection_fraction or raise straggler_deadline_multiple")
