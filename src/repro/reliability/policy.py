"""Degradation and retry policies for the fault-aware system layers.

Two knobs-objects, both frozen dataclasses so a policy can be shared
between runs without aliasing surprises:

* :class:`RetryPolicy` governs the serving layer — capped exponential
  backoff between batch retries and the straggler deadline multiple
  beyond which a batch is killed and rerun instead of awaited.
* :class:`DegradationPolicy` governs the multi-instance system — how
  long failure detection takes (heartbeat timeout, as a fraction of the
  failed shard's expected completion) and how many survivors resharding
  requires.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Serving-layer retry semantics (capped exponential backoff).

    Attributes:
        max_retries: attempts beyond the first before a batch is dropped.
        backoff_base_seconds: backoff before the first retry.
        backoff_multiplier: growth factor per further retry.
        backoff_cap_seconds: upper bound on any single backoff.
        straggler_deadline_multiple: a batch exceeding this multiple of
            its nominal makespan is killed at the deadline and rerun.
    """

    max_retries: int = 3
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 1.0
    straggler_deadline_multiple: float = 2.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.straggler_deadline_multiple < 1.0:
            raise ValueError("straggler_deadline_multiple must be >= 1.0")

    def backoff_seconds(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), capped."""
        return min(self.backoff_base_seconds
                   * self.backoff_multiplier ** retry_index,
                   self.backoff_cap_seconds)


@dataclass(frozen=True)
class DegradationPolicy:
    """Multi-instance failure handling: detect, reshard, re-account.

    Attributes:
        detection_fraction: heartbeat-timeout cost of noticing a dead
            instance, as a fraction of the failed shard's expected
            makespan (detection cannot be instant — the host only
            learns of the failure after a missed heartbeat window).
        min_survivors: below this many healthy instances the system
            declares an outage and restarts everything from scratch.
    """

    detection_fraction: float = 0.1
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if self.detection_fraction < 0:
            raise ValueError("detection_fraction must be non-negative")
        if self.min_survivors < 1:
            raise ValueError("min_survivors must be at least 1")

    def detection_seconds(self, shard_makespan: float) -> float:
        """Time between an instance dying and the host noticing."""
        return self.detection_fraction * shard_makespan
