"""The ReliabilityReport: what operating a faulty system actually cost.

One report type serves both fault-aware layers (the multi-instance
system and the campaign serving loop), so availability/goodput curves
from either can be tabulated side by side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReliabilityReport:
    """Reliability accounting for one fault-injected run.

    Attributes:
        availability: useful time over total wall-clock — 1.0 means no
            time was lost to faults, recovery, or backoff.
        goodput: successfully completed inferences per second of total
            wall-clock (throughput net of all fault overhead).
        retries: re-executions performed (failed batches, killed
            stragglers, link retransmissions, resharded shards).
        failures: hard failures observed (instances or exhausted
            batches).
        stragglers: batches killed at the straggler deadline and rerun.
        dropped: inferences abandoned after exhausting retries.
        wasted_seconds: wall-clock spent on work that was thrown away
            (partial attempts, detection windows, backoff waits).
        wasted_joules: energy spent beyond the fault-free cost.
        faults_injected: bit flips injected into the compute datapath.
        faults_detected: flips caught (and corrected) by the ABFT
            checksums.
        faults_silent: flips that escaped detection — silent data
            corruption reaching the output.
    """

    availability: float = 1.0
    goodput: float = 0.0
    retries: int = 0
    failures: int = 0
    stragglers: int = 0
    dropped: int = 0
    wasted_seconds: float = 0.0
    wasted_joules: float = 0.0
    faults_injected: int = 0
    faults_detected: int = 0
    faults_silent: int = 0

    @property
    def silent_error_rate(self) -> float:
        """Fraction of injected faults that escaped detection."""
        return (self.faults_silent / self.faults_injected
                if self.faults_injected else 0.0)

    def summary(self) -> str:
        return (f"availability={self.availability:.4f} "
                f"goodput={self.goodput:.1f} inf/s "
                f"retries={self.retries} failures={self.failures} "
                f"stragglers={self.stragglers} dropped={self.dropped} "
                f"wasted={self.wasted_seconds * 1e3:.2f} ms / "
                f"{self.wasted_joules:.2f} J "
                f"faults={self.faults_injected} "
                f"(detected {self.faults_detected}, "
                f"silent {self.faults_silent})")
