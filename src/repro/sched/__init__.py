"""Multithreaded orchestration/scheduling simulator (Figure 8)."""

from .events import Pool, Timeline
from .host import (
    CPU_ACTIVE_POWER_WATTS,
    CPU_DUTY_CYCLE,
    DRAM_POWER_WATTS,
    HOST_POWER_WATTS,
    HostModel,
)
from .orchestrator import CONTENTION_COEFFICIENT, Orchestrator, ScheduleResult, TaskRecord
from .visualize import render_gantt, thread_timeline, utilization_summary

__all__ = [
    "CONTENTION_COEFFICIENT",
    "CPU_ACTIVE_POWER_WATTS",
    "CPU_DUTY_CYCLE",
    "DRAM_POWER_WATTS",
    "HOST_POWER_WATTS",
    "HostModel",
    "Orchestrator",
    "Pool",
    "ScheduleResult",
    "TaskRecord",
    "render_gantt",
    "thread_timeline",
    "utilization_summary",
    "Timeline",
]
