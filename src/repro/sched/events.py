"""Resource primitives for the discrete-event schedule simulator.

The orchestrator needs two resource shapes: single-server timelines (one
systolic array, one link channel) and multi-server pools (host CPU slots).
Timelines are *gap-aware*: reservations made out of time order backfill
into idle gaps, so a thread that becomes ready early is not blocked behind
a reservation another thread placed further in the future.

Two structural facts make the common case O(1): most requests arrive at or
after the end of the last reservation (threads advance forward in time),
and most timelines never develop an interior gap at all.  ``next_fit``
answers the first case with a single comparison against the last interval
end, and tracks a "no interior gaps" flag so the second case skips the
bisect+scan entirely; the general gap-scan only runs for timelines that
actually fragmented.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class Timeline:
    """A single-server resource holding sorted, disjoint busy intervals."""

    name: str
    _starts: List[float] = field(default_factory=list, repr=False)
    _ends: List[float] = field(default_factory=list, repr=False)
    busy_seconds: float = 0.0
    reservations: int = 0
    #: True while the busy intervals form one contiguous block (no interior
    #: idle gaps), which lets :meth:`next_fit` answer without scanning.
    #: Conservative: cleared whenever an insertion *may* create or sit next
    #: to a gap, never re-set.
    _gapless: bool = field(default=True, repr=False)
    #: Cached ``_ends[-1]`` (-inf while empty): the append fast path tests
    #: one float attribute instead of touching the interval lists.
    _last_end: float = field(default=float("-inf"), repr=False)

    @property
    def free_at(self) -> float:
        """Time after the last reservation (no gaps considered)."""
        return self._ends[-1] if self._ends else 0.0

    def next_fit(self, earliest: float, duration: float) -> float:
        """Earliest start ≥ ``earliest`` with an idle gap of ``duration``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        last = self._last_end
        if earliest >= last:
            # Empty timeline or past the last reservation: always free.
            return earliest
        ends = self._ends
        if self._gapless and duration > 0:
            # One contiguous busy block: the request either fits entirely
            # before it or starts when it drains.  (duration == 0 keeps the
            # general path: its legacy answer inside the block is the end
            # of the *containing* interval, not the block end.)
            if self._starts[0] - earliest >= duration:
                return earliest
            return last
        # Candidate gaps begin at `earliest` and after each busy interval.
        index = bisect_right(ends, earliest)
        candidate = earliest
        starts = self._starts
        count = len(starts)
        while index < count:
            if starts[index] - candidate >= duration:
                return candidate
            end = ends[index]
            if end > candidate:
                candidate = end
            index += 1
        return candidate

    def _insert(self, start: float, duration: float) -> Tuple[float, float]:
        """Record a reservation at an already-validated fit position.

        Callers must have obtained ``start`` from :meth:`next_fit` (or an
        equivalent joint fit) with the same ``duration``; no overlap check
        is repeated here.
        """
        end = start + duration
        self.reservations += 1
        if end <= start:
            # Zero-width reservations (including durations that underflow
            # against the start time) occupy nothing and would break the
            # sortedness of the interval lists on ties.
            return start, end
        last = self._last_end
        if start >= last:
            if start > last and self._ends:
                self._gapless = False   # idle gap before this interval
            self._starts.append(start)
            self._ends.append(end)
            self._last_end = end
        else:
            # Backfill into an interior gap; whether the gap is exactly
            # filled is not tracked, so conservatively drop the flag.  A
            # validated fit below ``_last_end`` always lands before the
            # final interval, so the cached last end is unchanged.
            self._gapless = False
            starts = self._starts
            index = bisect_left(starts, start)
            starts.insert(index, start)
            self._ends.insert(index, end)
        self.busy_seconds += duration
        return start, end

    def reserve(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Reserve the earliest feasible interval at or after ``earliest``."""
        return self._insert(self.next_fit(earliest, duration), duration)

    def reserve_at(self, start: float, duration: float) -> Tuple[float, float]:
        """Reserve exactly at ``start``; caller must have used next_fit."""
        if self.next_fit(start, duration) != start:
            raise ValueError(f"{self.name}: interval at {start} not free")
        return self._insert(start, duration)

    def utilization(self, makespan: float) -> float:
        """Busy fraction of the timeline over ``makespan``."""
        return self.busy_seconds / makespan if makespan > 0 else 0.0


def common_start(earliest: float, requests: List[Tuple["Timeline", float]]
                 ) -> float:
    """Earliest time at which every (timeline, duration) request fits.

    Used when a dataflow must hold its link channel and its systolic array
    from the same instant.
    """
    candidate = earliest
    for _ in range(10000):
        moved = False
        for timeline, duration in requests:
            fit = timeline.next_fit(candidate, duration)
            if fit > candidate:
                candidate = fit
                moved = True
        if not moved:
            return candidate
    raise RuntimeError("common_start failed to converge")


def reserve_pair2(earliest: float, first: "Timeline", first_duration: float,
                  second: "Timeline", second_duration: float) -> float:
    """:func:`reserve_pair` for exactly two requests, without the list.

    The orchestrator's (channel, array) case: unrolls the convergence
    loop over the pair, visiting the requests in the same order as
    ``common_start`` so every intermediate candidate is identical.  The
    O(1) append/gapless fits of :meth:`Timeline.next_fit` are inlined
    (same branches, same float expressions); only a fragmented timeline
    falls back to the general scan.
    """
    if first_duration < 0 or second_duration < 0:
        raise ValueError("duration must be non-negative")
    candidate = earliest
    for _ in range(10000):
        last = first._last_end
        if candidate >= last:
            fit = candidate
        elif first._gapless and first_duration > 0:
            fit = (candidate
                   if first._starts[0] - candidate >= first_duration
                   else last)
        else:
            fit = first.next_fit(candidate, first_duration)
        moved = fit > candidate
        if moved:
            candidate = fit
        last = second._last_end
        if candidate >= last:
            fit = candidate
        elif second._gapless and second_duration > 0:
            fit = (candidate
                   if second._starts[0] - candidate >= second_duration
                   else last)
        else:
            fit = second.next_fit(candidate, second_duration)
        if fit > candidate:
            candidate = fit
            moved = True
        if not moved:
            first._insert(candidate, first_duration)
            second._insert(candidate, second_duration)
            return candidate
    raise RuntimeError("common_start failed to converge")


def reserve_pair(earliest: float, requests: List[Tuple["Timeline", float]]
                 ) -> float:
    """Find the joint fit and reserve every request at it, in one pass.

    Fuses :func:`common_start` with the per-timeline ``reserve_at`` calls:
    the convergence loop's final iteration already proved the candidate
    fits every timeline, so the reservations are recorded directly instead
    of re-running ``next_fit`` once to validate and once more to place
    (three fits per timeline reduced to one).  Placements are identical to
    ``common_start`` + ``reserve_at`` per timeline.

    Returns:
        The common start time; request ``i`` occupies
        ``[start, start + duration_i)`` on its timeline.
    """
    if len(requests) == 2:
        (first, first_duration), (second, second_duration) = requests
        return reserve_pair2(earliest, first, first_duration,
                             second, second_duration)
    start = common_start(earliest, requests)
    for timeline, duration in requests:
        timeline._insert(start, duration)
    return start


@dataclass
class Pool:
    """A multi-server resource (e.g. host CPU slots)."""

    name: str
    servers: List[Timeline] = field(default_factory=list)

    @classmethod
    def with_servers(cls, name: str, count: int) -> "Pool":
        if count <= 0:
            raise ValueError("pool needs at least one server")
        return cls(name=name, servers=[
            Timeline(name=f"{name}[{i}]") for i in range(count)])

    def reserve(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Reserve on the server that can start the earliest."""
        start, end, _name = self.reserve_named(earliest, duration)
        return start, end

    def reserve_named(self, earliest: float,
                      duration: float) -> Tuple[float, float, str]:
        """Like :meth:`reserve`, also naming the server that was picked.

        The fit found during the min-scan is reserved directly; ties keep
        the first (lowest-index) server, matching ``min`` semantics.  A
        server that can start right at ``earliest`` ends the scan early:
        no fit can be smaller, and every earlier server fit strictly
        later, so it is exactly the first minimum.
        """
        best: Timeline = None  # type: ignore[assignment]
        best_fit = 0.0
        for server in self.servers:
            fit = server.next_fit(earliest, duration)
            if fit == earliest:
                best, best_fit = server, fit
                break
            if best is None or fit < best_fit:
                best, best_fit = server, fit
        start, end = best._insert(best_fit, duration)
        return start, end, best.name

    @property
    def busy_seconds(self) -> float:
        return sum(server.busy_seconds for server in self.servers)

    def utilization(self, makespan: float) -> float:
        if makespan <= 0:
            return 0.0
        return self.busy_seconds / (makespan * len(self.servers))
