"""Resource primitives for the discrete-event schedule simulator.

The orchestrator needs two resource shapes: single-server timelines (one
systolic array, one link channel) and multi-server pools (host CPU slots).
Timelines are *gap-aware*: reservations made out of time order backfill
into idle gaps, so a thread that becomes ready early is not blocked behind
a reservation another thread placed further in the future.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class Timeline:
    """A single-server resource holding sorted, disjoint busy intervals."""

    name: str
    _starts: List[float] = field(default_factory=list, repr=False)
    _ends: List[float] = field(default_factory=list, repr=False)
    busy_seconds: float = 0.0
    reservations: int = 0

    @property
    def free_at(self) -> float:
        """Time after the last reservation (no gaps considered)."""
        return self._ends[-1] if self._ends else 0.0

    def next_fit(self, earliest: float, duration: float) -> float:
        """Earliest start ≥ ``earliest`` with an idle gap of ``duration``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if not self._starts:
            return earliest
        # Candidate gaps begin at `earliest` and after each busy interval.
        index = bisect.bisect_right(self._ends, earliest)
        candidate = earliest
        while index < len(self._starts):
            if self._starts[index] - candidate >= duration:
                return candidate
            candidate = max(candidate, self._ends[index])
            index += 1
        return candidate

    def reserve(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Reserve the earliest feasible interval at or after ``earliest``."""
        start = self.next_fit(earliest, duration)
        end = start + duration
        self.reservations += 1
        if end <= start:
            # Zero-width reservations (including durations that underflow
            # against the start time) occupy nothing and would break the
            # sortedness of the interval lists on ties.
            return start, end
        index = bisect.bisect_left(self._starts, start)
        self._starts.insert(index, start)
        self._ends.insert(index, end)
        self.busy_seconds += duration
        return start, end

    def reserve_at(self, start: float, duration: float) -> Tuple[float, float]:
        """Reserve exactly at ``start``; caller must have used next_fit."""
        if self.next_fit(start, duration) != start:
            raise ValueError(f"{self.name}: interval at {start} not free")
        return self.reserve(start, duration)

    def utilization(self, makespan: float) -> float:
        """Busy fraction of the timeline over ``makespan``."""
        return self.busy_seconds / makespan if makespan > 0 else 0.0


def common_start(earliest: float, requests: List[Tuple["Timeline", float]]
                 ) -> float:
    """Earliest time at which every (timeline, duration) request fits.

    Used when a dataflow must hold its link channel and its systolic array
    from the same instant.
    """
    candidate = earliest
    for _ in range(10000):
        moved = False
        for timeline, duration in requests:
            fit = timeline.next_fit(candidate, duration)
            if fit > candidate:
                candidate = fit
                moved = True
        if not moved:
            return candidate
    raise RuntimeError("common_start failed to converge")


@dataclass
class Pool:
    """A multi-server resource (e.g. host CPU slots)."""

    name: str
    servers: List[Timeline] = field(default_factory=list)

    @classmethod
    def with_servers(cls, name: str, count: int) -> "Pool":
        if count <= 0:
            raise ValueError("pool needs at least one server")
        return cls(name=name, servers=[
            Timeline(name=f"{name}[{i}]") for i in range(count)])

    def reserve(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Reserve on the server that can start the earliest."""
        start, end, _name = self.reserve_named(earliest, duration)
        return start, end

    def reserve_named(self, earliest: float,
                      duration: float) -> Tuple[float, float, str]:
        """Like :meth:`reserve`, also naming the server that was picked."""
        best = min(self.servers,
                   key=lambda server: server.next_fit(earliest, duration))
        start, end = best.reserve(earliest, duration)
        return start, end, best.name

    @property
    def busy_seconds(self) -> float:
        return sum(server.busy_seconds for server in self.servers)

    def utilization(self, makespan: float) -> float:
        if makespan <= 0:
            return 0.0
        return self.busy_seconds / (makespan * len(self.servers))
