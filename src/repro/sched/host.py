"""Host CPU model (the Xeon of Section 4.1, footnote 3).

ProSE delegates the softmax summation/division, layer norms, embeddings and
other "Other"-category work to the host.  The paper's host is a dual-socket
Intel Xeon Gold 6140M (36C/72T @ 2.3 GHz, 24.75 MB L3); under ProSE load it
measured 50.21 W of CPU power at a 21.4% duty cycle plus 6.23 W of DRAM
power — constants we reuse for the system power account.

The performance model treats the host as a pool of parallel slots, each
with a sustained elementwise throughput; intermediate softmax tensors
mostly live in L3 ("DRAM is mostly accessed during cold misses"), so the
throughput is compute-limited rather than DRAM-limited.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.ops import Op, OpKind

#: Measured CPU power under ProSE load (paper Section 4.1).
CPU_ACTIVE_POWER_WATTS = 50.21

#: Measured CPU duty cycle under ProSE load.
CPU_DUTY_CYCLE = 0.214

#: Measured DRAM power.
DRAM_POWER_WATTS = 6.23

#: Effective host power charged to ProSE inference.
HOST_POWER_WATTS = CPU_ACTIVE_POWER_WATTS * CPU_DUTY_CYCLE + DRAM_POWER_WATTS


@dataclass(frozen=True)
class HostModel:
    """Host CPU performance/power parameters.

    Attributes:
        slots: concurrently schedulable host execution slots (bounded by
            cores and by the orchestration design's host-side parallelism).
        elementwise_throughput: sustained elements/second per slot for
            streaming elementwise kernels (sum, divide, normalize).
        flops_throughput: sustained FLOPs/second per slot for generic math.
    """

    slots: int = 8
    elementwise_throughput: float = 2.5e10
    flops_throughput: float = 5.0e10

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError("host slots must be positive")
        if min(self.elementwise_throughput, self.flops_throughput) <= 0:
            raise ValueError("host throughputs must be positive")

    @property
    def aggregate_elementwise_throughput(self) -> float:
        return self.slots * self.elementwise_throughput

    def op_seconds(self, op: Op) -> float:
        """Time for one host op on one slot."""
        input_elements = 1
        for dim in op.shape:
            input_elements *= dim
        if op.kind in (OpKind.SUM, OpKind.DIV, OpKind.ADD, OpKind.MUL,
                       OpKind.EXP):
            return input_elements / self.elementwise_throughput
        if op.kind in (OpKind.EMBEDDING, OpKind.TRANSPOSE):
            # Gathers / view changes: bandwidth-ish, modeled as one pass.
            return input_elements / self.elementwise_throughput
        return op.flops / self.flops_throughput

    def softmax_finish_seconds(self, elements: int) -> float:
        """Sum + divide over ``elements`` softmax entries (two passes)."""
        return 2.0 * elements / self.elementwise_throughput

    def task_seconds(self, ops) -> float:
        """Total single-slot time for a host task's op tuple."""
        return sum(self.op_seconds(op) for op in ops)
