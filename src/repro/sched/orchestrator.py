"""Multithreaded orchestration and scheduling of dataflows onto ProSE.

Implements the paper's Figure 8 execution model: the inference batch is
split across software threads; each thread walks its own copy of the
per-inference dataflow DAG *serially* (a thread dispatches one dataflow at
a time), and parallelism comes from many threads running on the collection
of heterogeneous systolic arrays concurrently.

Every dataflow dispatch performs a host-accelerator transfer through one of
three per-type I/O buffers guarded by mutex locks; transfers therefore
serialize per array type, and the per-dispatch lock overhead grows with the
thread count — the contention/bubble trade-off that makes 32 threads the
sweet spot.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.config import HardwareConfig
from ..arch.interconnect import DISPATCH_OVERHEAD_SECONDS
from ..arch.timing import DataflowTiming, dataflow_signature, time_dataflow
from ..dataflow.graph import DataflowGraph, HostTask
from ..dataflow.patterns import ArrayType, Dataflow
from ..model.config import BertConfig
from ..telemetry import MetricsRegistry, Tracer
from .events import Pool, Timeline, reserve_pair, reserve_pair2
from .host import HostModel

#: Default growth of per-dispatch mutex overhead per extra thread.
CONTENTION_COEFFICIENT = 0.06


@dataclass(frozen=True)
class TaskRecord:
    """One scheduled task, for timeline inspection (Figure 8 rendering)."""

    thread: int
    name: str
    kind: str
    ready: float
    start: float
    end: float
    resource: str


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one batched inference on ProSE.

    Attributes:
        makespan_seconds: time from first dispatch to last completion.
        batch: inferences completed.
        seq_len: tokens per inference.
        threads: software threads used.
        array_utilization: busy fraction per array type over the makespan.
        channel_utilization: link-channel busy fraction per array type.
        host_utilization: host pool busy fraction.
        total_stream_bytes: host-link traffic for the whole batch.
        total_dispatches: host-accelerator transfers performed.
        contention_seconds: total mutex/dispatch overhead incurred.
        kind_compute_seconds: accelerator compute demand per dataflow
            kind (where ProSE itself spends array time).
        task_log: per-task schedule records when requested.
    """

    makespan_seconds: float
    batch: int
    seq_len: int
    threads: int
    array_utilization: Dict[ArrayType, float]
    channel_utilization: Dict[ArrayType, float]
    host_utilization: float
    total_stream_bytes: int
    total_dispatches: int
    contention_seconds: float
    kind_compute_seconds: Dict[str, float] = field(default_factory=dict)
    task_log: Optional[Tuple[TaskRecord, ...]] = None

    @property
    def throughput(self) -> float:
        """Inferences per second."""
        return self.batch / self.makespan_seconds

    @property
    def latency_seconds(self) -> float:
        """Batch latency (the makespan)."""
        return self.makespan_seconds

    #: Tie-break priority of resource classes in :attr:`bottleneck`.
    BOTTLENECK_PRIORITY = ("array", "link", "host")

    @property
    def bottleneck(self) -> str:
        """Which resource class limits this schedule.

        Exact utilization ties are broken deterministically: by resource
        class (array > link > host), then alphabetically within a class.
        """
        rank = {cls: i for i, cls in enumerate(self.BOTTLENECK_PRIORITY)}
        candidates = [("host", self.host_utilization)]
        for array_type, value in self.array_utilization.items():
            candidates.append((f"array:{array_type.value}", value))
        for array_type, value in self.channel_utilization.items():
            candidates.append((f"link:{array_type.value}", value))
        return min(candidates,
                   key=lambda item: (-item[1],
                                     rank[item[0].split(":")[0]],
                                     item[0]))[0]

    @property
    def compute_bound(self) -> bool:
        """True when an array group, not a link channel, is the bottleneck."""
        return self.bottleneck.startswith("array")


class Orchestrator:
    """Cycle-level schedule simulator for a ProSE instance.

    Args:
        hardware: the accelerator configuration to simulate.
        host: host CPU model.
        contention_coefficient: per-extra-thread growth of dispatch cost.
        dispatch_overhead: base per-transfer software overhead in seconds.
    """

    #: Array-selection policies.  "earliest_finish" (default) projects
    #: each candidate array's completion time; "round_robin" rotates
    #: through the group; "first_free" takes the array that frees first
    #: regardless of size.
    POLICIES = ("earliest_finish", "round_robin", "first_free")

    def __init__(self, hardware: HardwareConfig,
                 host: Optional[HostModel] = None,
                 contention_coefficient: float = CONTENTION_COEFFICIENT,
                 dispatch_overhead: float = DISPATCH_OVERHEAD_SECONDS,
                 policy: str = "earliest_finish") -> None:
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy '{policy}'; choose from {self.POLICIES}")
        self.hardware = hardware
        self.host = host or HostModel()
        self.contention_coefficient = contention_coefficient
        self.dispatch_overhead = dispatch_overhead
        self.policy = policy
        self._round_robin_state: Dict[ArrayType, int] = {}

    # ------------------------------------------------------------------

    def run(self, config: BertConfig, batch: int, seq_len: int,
            threads: Optional[int] = None,
            record_tasks: bool = False,
            graph_builder=None,
            tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            trace_pid: str = "instance0",
            trace_offset: float = 0.0) -> ScheduleResult:
        """Simulate one batched inference.

        Args:
            config: the Protein BERT model.
            batch: inference batch size (split across threads).
            seq_len: input sequence length in tokens.
            threads: override the hardware's thread count (Figure 8 sweep).
            record_tasks: keep a per-task log (Gantt rendering).
            graph_builder: callable ``sub_batch -> DataflowGraph``
                overriding the default encoder graph — e.g. the
                encoder-decoder graph of
                :func:`repro.dataflow.seq2seq.build_seq2seq_graph`.
            tracer: optional span tracer.  When given, every task gets a
                span on its thread track and every Timeline reservation
                (array segment, link-channel hold, host slot) gets a
                span on its resource track; ``None`` keeps the schedule
                bit-identical with near-zero overhead.
            metrics: optional registry accumulating dispatch counters,
                byte counters, per-task latency histograms, and final
                occupancy gauges.
            trace_pid: Perfetto process label for emitted spans (the
                multi-instance system passes ``instanceN``).
            trace_offset: seconds added to every emitted timestamp, so
                a run can be placed on an enclosing clock (recovery
                shards, campaign batches).

        Returns:
            A :class:`ScheduleResult` with makespan and utilizations.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        if threads is not None and threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        thread_count = threads if threads is not None else self.hardware.threads
        thread_count = max(1, min(thread_count, batch))

        # Split the batch across threads as evenly as possible.
        base, extra = divmod(batch, thread_count)
        sub_batches = [base + (1 if t < extra else 0)
                       for t in range(thread_count)]
        if graph_builder is None:
            # Lazy import: parallel.memo reaches back into this module.
            from ..parallel.memo import cached_build_graph

            def graph_builder(sub: int) -> DataflowGraph:
                return cached_build_graph(config, batch=sub,
                                          seq_len=seq_len)
        graphs: Dict[int, DataflowGraph] = {}
        for sub in set(sub_batches):
            graphs[sub] = graph_builder(sub)

        arrays: Dict[ArrayType, List[Tuple[Timeline, int]]] = {
            t: [] for t in ArrayType}
        for group in self.hardware.groups:
            for index in range(group.count):
                arrays[group.array_type].append(
                    (Timeline(name=f"{group.label}[{index}]"), group.size))
        channels: Dict[ArrayType, Timeline] = {
            t: Timeline(name=f"channel:{t.value}") for t in ArrayType}
        host_pool = Pool.with_servers("host", self.host.slots)

        per_dispatch = self.dispatch_overhead * (
            1.0 + self.contention_coefficient * (thread_count - 1))
        # Timings are memoized by *content* signature (shape/op tuple), not
        # node identity, so the identical encoder layers share one entry.
        # Each distinct node object additionally interns a placement *plan*
        # (signature, candidate members, channel, bandwidth, kind label,
        # uniform-size timing) so none of it is recomputed per dispatch.
        timing_cache: Dict[Tuple[int, int], DataflowTiming] = {}
        interned_signatures: Dict[Tuple, int] = {}
        # Keyed by node identity; a float is an interned HostTask duration,
        # a tuple is a dataflow placement plan.
        node_plans: Dict[int, object] = {}
        pooled_members: Optional[List[Tuple[Timeline, int]]] = None
        if self.hardware.pooled:
            # Homogeneous baseline: every array carries both LUT kinds and
            # can execute any dataflow (Table 2's 64×64 GELU+Exp row).
            pooled_members = [m for group in arrays.values() for m in group]
        total_bytes = 0
        total_dispatches = 0
        contention_seconds = 0.0
        kind_compute: Dict[str, float] = {}
        makespan = 0.0

        # Earliest-ready-first list scheduling across threads.  Each thread
        # walks its own graph serially (Figure 8); at every step the thread
        # whose next dataflow becomes ready soonest dispatches next, which
        # is how the mutex-guarded I/O buffers hand out work in practice.
        finishes: List[List[float]] = [[0.0] * len(graphs[sub])
                                       for sub in sub_batches]
        # Per-thread node tuples and lengths, hoisted out of the loop so
        # the per-dispatch accesses are plain tuple/list indexing.
        thread_nodes = [graphs[sub].nodes for sub in sub_batches]
        thread_node_counts = [len(nodes) for nodes in thread_nodes]
        pointers = [0] * thread_count
        clocks = [0.0] * thread_count
        task_log: List[TaskRecord] = []
        heap = [(0.0, t) for t in range(thread_count)]
        heapq.heapify(heap)
        while heap:
            ready, thread_index = heapq.heappop(heap)
            sub = sub_batches[thread_index]
            nodes = thread_nodes[thread_index]
            node_index = pointers[thread_index]
            node = nodes[node_index]
            finish = finishes[thread_index]
            # The popped key *is* the ready time: deps live in the same
            # thread's graph and the thread walks it serially in index
            # order, so every dep had its final finish time (and the
            # thread its final clock) when the key was pushed.
            actual_ready = ready
            plan = node_plans.get(id(node))
            if plan is None:
                if isinstance(node, HostTask):
                    # float() normalizes sum()'s int 0 for op-less tasks:
                    # a float plan *is* the type tag for the host branch.
                    plan = float(self.host.task_seconds(node.ops))
                else:
                    plan = self._build_plan(node, arrays, pooled_members,
                                            channels, timing_cache,
                                            interned_signatures,
                                            per_dispatch)
                node_plans[id(node)] = plan
            if type(plan) is float:
                start, end, server = host_pool.reserve_named(
                    actual_ready, plan)
                resource_label = "host"
                kind_label = "host"
                if tracer is not None:
                    tracer.add_span(
                        node.name, trace_offset + start, trace_offset + end,
                        pid=trace_pid, tid=server, category="host",
                        ops=len(node.ops), flops=node.flops)
            else:
                if tracer is None:
                    start, end, resource_label, timing = \
                        self._schedule_dataflow_fast(
                            node, actual_ready, plan, host_pool,
                            timing_cache, per_dispatch)
                else:
                    start, end, resource_label, timing = \
                        self._schedule_dataflow(
                            node, actual_ready, sub, node_index, plan,
                            host_pool, timing_cache, per_dispatch,
                            tracer=tracer, trace_pid=trace_pid,
                            trace_offset=trace_offset)
                kind_label = plan[4]
                total_bytes += timing.total_stream_bytes
                accel_segments = timing.accel_segments
                total_dispatches += accel_segments
                contention_seconds += per_dispatch * accel_segments
                kind_compute[kind_label] = (
                    kind_compute.get(kind_label, 0.0)
                    + timing.accel_compute_seconds)
            if record_tasks:
                task_log.append(TaskRecord(
                    thread=thread_index, name=node.name, kind=kind_label,
                    ready=actual_ready, start=start, end=end,
                    resource=resource_label))
            if tracer is not None:
                tracer.add_span(
                    node.name, trace_offset + start, trace_offset + end,
                    pid=trace_pid, tid=f"thread{thread_index:02d}",
                    category="task", kind=kind_label,
                    resource=resource_label, sub_batch=sub,
                    ready=actual_ready, node=node_index)
            if metrics is not None:
                metrics.histogram("sched/task_seconds").observe(end - start)
            finish[node_index] = end
            clocks[thread_index] = end
            if end > makespan:
                makespan = end
            next_index = node_index + 1
            pointers[thread_index] = next_index
            if next_index < thread_node_counts[thread_index]:
                next_node = nodes[next_index]
                # max(dep finishes, thread clock); `end` is the clock, and
                # it never loses a tie, matching the old max(...) exactly.
                next_ready = end
                for dep in next_node.deps:
                    dep_finish = finish[dep]
                    if dep_finish > next_ready:
                        next_ready = dep_finish
                heapq.heappush(heap, (next_ready, thread_index))

        array_util = {}
        for array_type, members in arrays.items():
            busy = sum(timeline.busy_seconds for timeline, _ in members)
            array_util[array_type] = (busy / (makespan * len(members))
                                      if members and makespan > 0 else 0.0)
        channel_util = {t: channels[t].utilization(makespan)
                        for t in ArrayType}
        result = ScheduleResult(
            makespan_seconds=makespan,
            batch=batch,
            seq_len=seq_len,
            threads=thread_count,
            array_utilization=array_util,
            channel_utilization=channel_util,
            host_utilization=host_pool.utilization(makespan),
            total_stream_bytes=total_bytes,
            total_dispatches=total_dispatches,
            contention_seconds=contention_seconds,
            kind_compute_seconds=kind_compute,
            task_log=tuple(task_log) if record_tasks else None)
        if tracer is not None:
            # The run span carries the resource inventory (idle arrays
            # emit no spans, so the trace alone cannot recover the
            # utilization denominators) and the schedule's own verdict,
            # so trace analytics can both recompute and cross-check the
            # bottleneck attribution (repro.telemetry.analyze).
            inventory = {f"arrays_{t.value.lower()}": len(arrays[t])
                         for t in ArrayType}
            tracer.add_span(
                "orchestrator.run", trace_offset, trace_offset + makespan,
                pid=trace_pid, tid="schedule", category="run",
                batch=batch, seq_len=seq_len, threads=thread_count,
                policy=self.policy, dispatches=total_dispatches,
                stream_bytes=total_bytes,
                host_slots=self.host.slots,
                bottleneck=result.bottleneck, **inventory)
        if metrics is not None:
            reservations = (
                sum(t.reservations for ms in arrays.values() for t, _ in ms)
                + sum(t.reservations for t in channels.values())
                + sum(s.reservations for s in host_pool.servers))
            metrics.counter("sched/reservations").inc(reservations)
            metrics.counter("sched/dispatches").inc(total_dispatches)
            metrics.counter("sched/stream_bytes").inc(total_bytes)
            metrics.counter("sched/contention_seconds").inc(
                contention_seconds)
            metrics.counter("sched/inferences").inc(batch)
            metrics.gauge("sched/makespan_seconds").set(makespan)
            metrics.gauge("sched/host_utilization").set(
                host_pool.utilization(makespan))
            for array_type in ArrayType:
                metrics.gauge(
                    f"sched/array_occupancy/{array_type.value}").set(
                        array_util[array_type])
                metrics.gauge(
                    f"sched/link_utilization/{array_type.value}").set(
                        channel_util[array_type])
        return result

    # ------------------------------------------------------------------

    def _build_plan(self, dataflow: Dataflow,
                    arrays: Dict[ArrayType, List[Tuple[Timeline, int]]],
                    pooled_members: Optional[List[Tuple[Timeline, int]]],
                    channels: Dict[ArrayType, Timeline],
                    cache: Dict[Tuple[int, int], DataflowTiming],
                    interned_signatures: Dict[Tuple, int],
                    per_dispatch: float) -> Tuple:
        """Intern everything about placing ``dataflow`` that is invariant
        across dispatches: its content signature, the candidate arrays,
        the link channel, the channel bandwidth, the kind label, and —
        when every candidate has the same size under the earliest-finish
        policy — the one shared :class:`DataflowTiming` plus the fully
        folded per-segment reservation constants (channel hold and joint
        duration depend only on the timing, the bandwidth, and the run's
        per-dispatch overhead, so they are computed once here with the
        exact float expressions the dispatch loop used)."""
        content = dataflow_signature(dataflow)
        signature = interned_signatures.get(content)
        if signature is None:
            signature = len(interned_signatures)
            interned_signatures[content] = signature
        array_type = dataflow.array_type
        members = (pooled_members if pooled_members is not None
                   else arrays[array_type])
        if not members:
            raise ValueError(
                f"no {array_type.value}-Type arrays provisioned")
        bandwidth = self.hardware.type_bandwidth(array_type)
        uniform_timing: Optional[DataflowTiming] = None
        seg_plan: Optional[Tuple[Tuple[bool, float, float], ...]] = None
        sizes = {size for _, size in members}
        if len(sizes) == 1 and self.policy == "earliest_finish":
            uniform_timing = self._timing(dataflow, next(iter(sizes)),
                                          signature, cache)
            folded = []
            for segment in uniform_timing.segments:
                if segment.resource == "host":
                    folded.append((True, segment.compute_seconds, 0.0))
                    continue
                stream_seconds = (segment.stream_bytes / bandwidth
                                  if bandwidth > 0 else 0.0)
                folded.append((
                    False, per_dispatch + stream_seconds,
                    max(segment.compute_seconds, stream_seconds)
                    + per_dispatch))
            seg_plan = tuple(folded)
        return (signature, members, channels[array_type], bandwidth,
                dataflow.kind.value, uniform_timing, seg_plan)

    def _pick(self, dataflow: Dataflow, ready: float, plan: Tuple,
              cache: Dict[Tuple[int, int], DataflowTiming]
              ) -> Tuple[Timeline, int, DataflowTiming]:
        """Resolve (timeline, size, timing) for one dispatch of ``plan``."""
        signature = plan[0]
        members = plan[1]
        uniform_timing = plan[5]
        if uniform_timing is None:
            timeline, size = self._select_array(dataflow, ready, signature,
                                                members, cache)
            return timeline, size, self._timing(dataflow, size, signature,
                                                cache)
        # Earliest-finish over same-size candidates: every projection
        # shares one duration, so minimizing the finish time means
        # minimizing the fit — and the first member that can start
        # right at `ready` is exactly the first minimum (any earlier
        # member fit strictly later), ending the scan immediately.
        # The gapless/append fit checks mirror Timeline.next_fit.
        timing = uniform_timing
        duration = timing.accel_compute_seconds
        best = None
        best_finish = 0.0
        for member in members:
            timeline = member[0]
            last = timeline._last_end
            if ready >= last:
                best = member
                break
            if timeline._gapless and duration > 0:
                if timeline._starts[0] - ready >= duration:
                    fit = ready
                else:
                    fit = last
            else:
                fit = timeline.next_fit(ready, duration)
            if fit == ready:
                best = member
                break
            finish = fit + duration
            if best is None or finish < best_finish:
                best = member
                best_finish = finish
        timeline, size = best
        return timeline, size, timing

    def _schedule_dataflow_fast(self, dataflow: Dataflow, ready: float,
                                plan: Tuple, host_pool: Pool,
                                cache: Dict[Tuple[int, int], DataflowTiming],
                                per_dispatch: float
                                ) -> Tuple[float, float, str, DataflowTiming]:
        """Untraced :meth:`_schedule_dataflow`: identical placement
        arithmetic with no span bookkeeping and no per-segment tuples."""
        timeline, _size, timing = self._pick(dataflow, ready, plan, cache)
        channel = plan[2]
        clock = ready
        first_start: Optional[float] = None
        seg_plan = plan[6]
        if seg_plan is not None:
            # Stream/hold/duration were folded into the plan (identical
            # expressions); only the joint reservation remains per segment.
            for is_host, hold, duration in seg_plan:
                if is_host:
                    _seg_start, clock, _server = host_pool.reserve_named(
                        clock, hold)
                    continue
                start = reserve_pair2(clock, channel, hold,
                                      timeline, duration)
                clock = start + duration
                if first_start is None:
                    first_start = start
            return (first_start if first_start is not None else ready,
                    clock, timeline.name, timing)
        bandwidth = plan[3]
        for segment in timing.segments:
            if segment.resource == "host":
                _seg_start, clock, _server = host_pool.reserve_named(
                    clock, segment.compute_seconds)
                continue
            stream_seconds = (segment.stream_bytes / bandwidth
                              if bandwidth > 0 else 0.0)
            channel_hold = per_dispatch + stream_seconds
            duration = (max(segment.compute_seconds, stream_seconds)
                        + per_dispatch)
            start = reserve_pair2(clock, channel, channel_hold,
                                  timeline, duration)
            clock = start + duration
            if first_start is None:
                first_start = start
        return (first_start if first_start is not None else ready,
                clock, timeline.name, timing)

    def _schedule_dataflow(self, dataflow: Dataflow, ready: float, sub: int,
                           node_index: int, plan: Tuple,
                           host_pool: Pool,
                           cache: Dict[Tuple[int, int], DataflowTiming],
                           per_dispatch: float,
                           tracer: Optional[Tracer] = None,
                           trace_pid: str = "instance0",
                           trace_offset: float = 0.0
                           ) -> Tuple[float, float, str, DataflowTiming]:
        """Place one dataflow's segments.

        When tracing, every reservation this placement makes becomes one
        span: array holds on the array's track (category ``exec``),
        channel holds on the link track (``stream``), host-side segments
        on the chosen host slot's track (``host``).

        Returns:
            (start, end, resource label, timing) of the placed dataflow.
        """
        channel = plan[2]
        bandwidth = plan[3]
        timeline, size, timing = self._pick(dataflow, ready, plan, cache)
        clock = ready
        first_start: Optional[float] = None
        for segment_index, segment in enumerate(timing.segments):
            if segment.resource == "host":
                seg_start, clock, server = host_pool.reserve_named(
                    clock, segment.compute_seconds)
                if tracer is not None:
                    tracer.add_span(
                        f"{dataflow.name}:host{segment_index}",
                        trace_offset + seg_start, trace_offset + clock,
                        pid=trace_pid, tid=server, category="host",
                        sub_batch=sub, node=node_index)
                continue
            stream_seconds = (segment.stream_bytes / bandwidth
                              if bandwidth > 0 else 0.0)
            # The mutex-guarded per-type I/O buffer serializes each
            # dispatch on the channel: lock acquisition + transfer setup
            # (per_dispatch, growing with thread contention) then the
            # stream itself.  The array is held from the same instant —
            # the stream feeds it directly (no local scratchpad).
            channel_hold = per_dispatch + stream_seconds
            duration = (max(segment.compute_seconds, stream_seconds)
                        + per_dispatch)
            start = reserve_pair(clock, [(channel, channel_hold),
                                         (timeline, duration)])
            clock = start + duration
            if tracer is not None:
                tracer.add_span(
                    f"{dataflow.name}:xfer{segment_index}",
                    trace_offset + start,
                    trace_offset + start + channel_hold,
                    pid=trace_pid, tid=channel.name, category="stream",
                    bytes=segment.stream_bytes, sub_batch=sub,
                    node=node_index,
                    array_type=dataflow.array_type.value)
                tracer.add_span(
                    f"{dataflow.name}:seg{segment_index}",
                    trace_offset + start, trace_offset + clock,
                    pid=trace_pid, tid=timeline.name, category="exec",
                    compute_seconds=segment.compute_seconds,
                    array_size=size, sub_batch=sub, node=node_index,
                    array_type=dataflow.array_type.value)
            if first_start is None:
                first_start = start
        return (first_start if first_start is not None else ready, clock,
                timeline.name, timing)

    def _select_array(self, dataflow: Dataflow, ready: float,
                      signature: int,
                      members: List[Tuple[Timeline, int]],
                      cache: Dict[Tuple[int, int], DataflowTiming]
                      ) -> Tuple[Timeline, int]:
        """Pick an array for ``dataflow`` according to the policy."""
        if self.policy == "round_robin":
            index = self._round_robin_state.get(dataflow.array_type, 0)
            self._round_robin_state[dataflow.array_type] = \
                (index + 1) % len(members)
            return members[index % len(members)]
        if self.policy == "first_free":
            return min(members,
                       key=lambda member: member[0].next_fit(ready, 0.0))

        # earliest_finish: project each candidate's completion time from
        # its precomputed compute duration (one timing per distinct array
        # size — members of the same size share it).  Strict `<` keeps the
        # first of tied projections, matching `min` over the member order.
        durations: Dict[int, float] = {}
        best_member: Optional[Tuple[Timeline, int]] = None
        best_finish = 0.0
        for member in members:
            timeline, size = member
            duration = durations.get(size)
            if duration is None:
                duration = self._timing(dataflow, size, signature,
                                        cache).accel_compute_seconds
                durations[size] = duration
            finish = timeline.next_fit(ready, duration) + duration
            if best_member is None or finish < best_finish:
                best_member, best_finish = member, finish
        return best_member

    def _timing(self, dataflow: Dataflow, size: int, signature: int,
                cache: Dict[Tuple[int, int], DataflowTiming]
                ) -> DataflowTiming:
        key = (signature, size)
        timing = cache.get(key)
        if timing is None:
            timing = time_dataflow(
                dataflow, size, self.hardware,
                host_elementwise_throughput=self.host.elementwise_throughput)
            cache[key] = timing
        return timing
