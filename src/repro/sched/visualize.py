"""ASCII rendering of orchestration schedules (Figure 8 style).

Turns a :class:`~repro.sched.orchestrator.TaskRecord` log into a per-
resource Gantt chart, so the thread-interleaving behaviour the paper
illustrates in Figure 8 can be inspected directly from a simulation.

The interval drawing itself lives in :mod:`repro.telemetry.render`
(shared with the ``trace`` CLI); this module only maps task records to
glyph intervals and keeps the legend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..telemetry.render import Interval, render_tracks
from .orchestrator import ScheduleResult

#: Glyph per task kind in the Gantt rows.
KIND_GLYPHS: Dict[str, str] = {
    "dataflow1": "1",
    "dataflow2": "2",
    "dataflow3": "3",
    "host": "h",
}


def render_gantt(result: ScheduleResult, width: int = 100,
                 max_rows: Optional[int] = 20) -> str:
    """Render the schedule as one text row per resource.

    Args:
        result: a schedule produced with ``record_tasks=True``.
        width: characters across the full makespan.
        max_rows: cap on rendered resource rows (None for all).

    Returns:
        The Gantt chart; busy spans show the task-kind glyph, idle time
        shows '.', and a legend follows.
    """
    if result.task_log is None:
        raise ValueError("schedule was run without record_tasks=True")
    tracks: Dict[str, List[Interval]] = {}
    for record in result.task_log:
        tracks.setdefault(record.resource, []).append(
            (record.start, record.end,
             KIND_GLYPHS.get(record.kind, "?")))
    ordered = {name: tracks[name] for name in sorted(tracks)}
    chart = render_tracks(ordered, makespan=result.makespan_seconds,
                          width=width, max_rows=max_rows)
    return (chart
            + "\nlegend: 1/2/3 = Dataflow 1/2/3, h = host task, . = idle")


def thread_timeline(result: ScheduleResult, thread: int
                    ) -> List[Tuple[str, float, float]]:
    """(name, start ms, end ms) rows for one thread's serial task chain."""
    if result.task_log is None:
        raise ValueError("schedule was run without record_tasks=True")
    return [(record.name, record.start * 1e3, record.end * 1e3)
            for record in result.task_log if record.thread == thread]


def utilization_summary(result: ScheduleResult) -> str:
    """One-line-per-resource-class utilization table."""
    lines = [f"{'resource':>12s} {'utilization':>12s}"]
    for array_type, value in sorted(result.array_utilization.items(),
                                    key=lambda item: item[0].value):
        lines.append(f"{'array:' + array_type.value:>12s} {value:11.1%}")
    for array_type, value in sorted(result.channel_utilization.items(),
                                    key=lambda item: item[0].value):
        lines.append(f"{'link:' + array_type.value:>12s} {value:11.1%}")
    lines.append(f"{'host':>12s} {result.host_utilization:11.1%}")
    return "\n".join(lines)
