"""ASCII rendering of orchestration schedules (Figure 8 style).

Turns a :class:`~repro.sched.orchestrator.TaskRecord` log into a per-
resource Gantt chart, so the thread-interleaving behaviour the paper
illustrates in Figure 8 can be inspected directly from a simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .orchestrator import ScheduleResult, TaskRecord

#: Glyph per task kind in the Gantt rows.
KIND_GLYPHS: Dict[str, str] = {
    "dataflow1": "1",
    "dataflow2": "2",
    "dataflow3": "3",
    "host": "h",
}


def _bucket(records: Iterable[TaskRecord]) -> Dict[str, List[TaskRecord]]:
    rows: Dict[str, List[TaskRecord]] = {}
    for record in records:
        rows.setdefault(record.resource, []).append(record)
    return rows


def render_gantt(result: ScheduleResult, width: int = 100,
                 max_rows: Optional[int] = 20) -> str:
    """Render the schedule as one text row per resource.

    Args:
        result: a schedule produced with ``record_tasks=True``.
        width: characters across the full makespan.
        max_rows: cap on rendered resource rows (None for all).

    Returns:
        The Gantt chart; busy spans show the task-kind glyph, idle time
        shows '.', and a legend follows.
    """
    if result.task_log is None:
        raise ValueError("schedule was run without record_tasks=True")
    makespan = result.makespan_seconds
    rows = _bucket(result.task_log)
    names = sorted(rows)
    if max_rows is not None:
        names = names[:max_rows]

    lines: List[str] = []
    label_width = max((len(name) for name in names), default=8)
    for name in names:
        cells = ["."] * width
        for record in rows[name]:
            start = int(record.start / makespan * (width - 1))
            end = max(start, int(record.end / makespan * (width - 1)))
            glyph = KIND_GLYPHS.get(record.kind, "?")
            for position in range(start, end + 1):
                cells[position] = glyph
        lines.append(f"{name:>{label_width}s} |{''.join(cells)}|")
    lines.append(f"{'':>{label_width}s}  0{'':{width - 10}s}"
                 f"{makespan * 1e3:8.2f}ms")
    lines.append("legend: 1/2/3 = Dataflow 1/2/3, h = host task, . = idle")
    return "\n".join(lines)


def thread_timeline(result: ScheduleResult, thread: int
                    ) -> List[Tuple[str, float, float]]:
    """(name, start ms, end ms) rows for one thread's serial task chain."""
    if result.task_log is None:
        raise ValueError("schedule was run without record_tasks=True")
    return [(record.name, record.start * 1e3, record.end * 1e3)
            for record in result.task_log if record.thread == thread]


def utilization_summary(result: ScheduleResult) -> str:
    """One-line-per-resource-class utilization table."""
    lines = [f"{'resource':>12s} {'utilization':>12s}"]
    for array_type, value in sorted(result.array_utilization.items(),
                                    key=lambda item: item[0].value):
        lines.append(f"{'array:' + array_type.value:>12s} {value:11.1%}")
    for array_type, value in sorted(result.channel_utilization.items(),
                                    key=lambda item: item[0].value):
        lines.append(f"{'link:' + array_type.value:>12s} {value:11.1%}")
    lines.append(f"{'host':>12s} {result.host_utilization:11.1%}")
    return "\n".join(lines)
