"""Multi-instance ProSE system model (four NVLinks, one Grace-class host)."""

from .serving import (
    CampaignReport,
    CampaignSimulator,
    DEFAULT_BUCKETS,
    format_campaign,
)
from .multi import (
    DEFAULT_INSTANCES,
    ProSESystem,
    ReliableSystemReport,
    SystemReport,
    format_scaling,
    scaling_study,
)

__all__ = [
    "CampaignReport",
    "CampaignSimulator",
    "DEFAULT_BUCKETS",
    "DEFAULT_INSTANCES",
    "format_campaign",
    "ProSESystem",
    "ReliableSystemReport",
    "SystemReport",
    "format_scaling",
    "scaling_study",
]
