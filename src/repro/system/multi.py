"""Multi-instance ProSE system (Section 3.2, System Overview).

"We envision a host CPU that is capable of supporting four NVLinks
similar to what the latest NVIDIA Grace CPU is capable of, with each
NVLink connecting to one ProSE instance, totaling four ProSE instances
per system."

The system model shards an inference batch across instances (each with
its own dedicated link), shares one host CPU for the softmax finishes and
layer norms, and accounts power once for the host and per-instance for
the accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..arch.config import HardwareConfig, best_perf
from ..arch.interconnect import DISPATCH_OVERHEAD_SECONDS
from ..model.config import BertConfig, protein_bert_base
from ..physical.power import power_report
from ..reliability.faults import FaultModel
from ..reliability.policy import DegradationPolicy
from ..reliability.report import ReliabilityReport
from ..sched.host import HOST_POWER_WATTS, HostModel
from ..sched.orchestrator import Orchestrator, ScheduleResult
from ..telemetry import MetricsRegistry, Tracer

#: Instances per system in the paper's envisioned deployment.
DEFAULT_INSTANCES = 4


@dataclass(frozen=True)
class SystemReport:
    """Performance and power of a multi-instance ProSE system.

    Attributes:
        instances: ProSE accelerator cards in the system.
        per_instance: per-shard schedule results, in shard order.
        batch: total inferences completed.
    """

    instances: int
    per_instance: Tuple[ScheduleResult, ...]
    batch: int

    @property
    def makespan_seconds(self) -> float:
        """System latency: the slowest shard finishes last."""
        return max(result.makespan_seconds for result in self.per_instance)

    @property
    def throughput(self) -> float:
        return self.batch / self.makespan_seconds

    @property
    def accelerator_power_watts(self) -> float:
        return self._accelerator_power

    @property
    def system_power_watts(self) -> float:
        """All instances plus one shared host."""
        return self._accelerator_power + HOST_POWER_WATTS

    @property
    def efficiency(self) -> float:
        return self.throughput / self.system_power_watts

    # power injected at construction (frozen dataclass workaround)
    _accelerator_power: float = 0.0


@dataclass(frozen=True)
class ReliableSystemReport:
    """A fault-injected multi-instance run, with recovery re-accounted.

    When the fault model is inert every field reproduces the fault-free
    :class:`SystemReport` numbers bit-identically; under faults the
    makespan stretches by detection windows, link retransmissions, and
    resharded recovery work, and the energy account charges survivors
    for the full degraded wall-clock.

    Attributes:
        base: the initial (pre-fault) per-shard simulation.
        recovery: recovery shard results run on survivors (empty when
            no instance failed).
        makespan_seconds: degraded end-to-end wall-clock.
        energy_joules: energy including all recovery work.
        fault_free_energy_joules: what the same batch costs with no
            faults — the reference for the waste account.
        survivors: instances still healthy at completion.
        reliability: availability/goodput/retry accounting.
    """

    base: SystemReport
    recovery: Tuple[ScheduleResult, ...]
    makespan_seconds: float
    energy_joules: float
    fault_free_energy_joules: float
    survivors: int
    reliability: ReliabilityReport

    @property
    def batch(self) -> int:
        return self.base.batch

    @property
    def instances(self) -> int:
        return self.base.instances

    @property
    def throughput(self) -> float:
        """Completed inferences per second of degraded wall-clock."""
        return self.batch / self.makespan_seconds


class ProSESystem:
    """A host CPU driving several ProSE instances over dedicated links.

    Args:
        hardware: the per-instance configuration (each instance gets the
            full link the configuration names — one NVLink per instance).
        instances: number of accelerator cards (paper: 4).
        host: the shared host CPU.  Host slots are divided across
            instances, modeling contention for the shared softmax/norm
            capacity.
    """

    def __init__(self, hardware: Optional[HardwareConfig] = None,
                 instances: int = DEFAULT_INSTANCES,
                 host: Optional[HostModel] = None) -> None:
        if instances <= 0:
            raise ValueError("instances must be positive")
        self.hardware = hardware or best_perf()
        self.instances = instances
        base_host = host or HostModel()
        slots = max(base_host.slots // instances, 1)
        self._shard_host = HostModel(
            slots=slots,
            elementwise_throughput=base_host.elementwise_throughput,
            flops_throughput=base_host.flops_throughput)

    def simulate(self, config: Optional[BertConfig] = None,
                 batch: int = 512, seq_len: int = 512,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> SystemReport:
        """Shard ``batch`` across instances and simulate each shard.

        Args:
            config: the Protein BERT model (default: BERT-base).
            batch: total inferences, sharded across instances.
            seq_len: tokens per inference.
            tracer: optional span tracer; each instance's schedule is
                emitted under its own ``instanceN`` process, with one
                ``shard`` overview span per instance.
            metrics: optional registry; per-instance scheduler metrics
                merge in twice — under an ``instanceN/`` prefix and
                unprefixed (aggregated) — plus a per-shard makespan
                histogram.  ``None`` keeps the report bit-identical.
        """
        config = config or protein_bert_base()
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        if batch < self.instances:
            raise ValueError("batch must cover every instance")
        base, extra = divmod(batch, self.instances)
        shards = [base + (1 if i < extra else 0)
                  for i in range(self.instances)]
        orchestrator = Orchestrator(self.hardware, host=self._shard_host)
        results: List[ScheduleResult] = []
        for index, shard in enumerate(shards):
            pid = f"instance{index}"
            shard_metrics = (MetricsRegistry(name=pid)
                             if metrics is not None else None)
            result = orchestrator.run(config, batch=shard, seq_len=seq_len,
                                      tracer=tracer, metrics=shard_metrics,
                                      trace_pid=pid)
            results.append(result)
            if tracer is not None:
                tracer.add_span(
                    "shard", 0.0, result.makespan_seconds, pid=pid,
                    tid="system", category="shard", instance=index,
                    batch=shard, seq_len=seq_len,
                    bottleneck=result.bottleneck)
            if metrics is not None and shard_metrics is not None:
                metrics.merge(shard_metrics, prefix=pid)
                metrics.merge(shard_metrics)
                metrics.histogram("system/shard_makespan_seconds").observe(
                    result.makespan_seconds)
        accel_power = (power_report(self.hardware).accelerator_power_w
                       * self.instances)
        return SystemReport(instances=self.instances,
                            per_instance=tuple(results), batch=batch,
                            _accelerator_power=accel_power)

    def simulate_with_faults(self, config: Optional[BertConfig] = None,
                             batch: int = 512, seq_len: int = 512,
                             fault_model: Optional[FaultModel] = None,
                             policy: Optional[DegradationPolicy] = None,
                             tracer: Optional[Tracer] = None,
                             metrics: Optional[MetricsRegistry] = None
                             ) -> ReliableSystemReport:
        """Simulate under injected faults with degradation-aware recovery.

        Three fault classes apply, all drawn from the seeded model:

        * **transient link errors** — each affected dispatch retransmits
          its payload (average bytes/dispatch over the link) plus the
          dispatch overhead, delaying that shard;
        * **instance failures** — a failed instance dies partway through
          its shard; after the heartbeat window the host reshards the
          lost inferences across survivors, which run them as an extra
          appended shard (the full batch still completes);
        * **outage** — with fewer than ``policy.min_survivors`` healthy
          instances the host restarts everything and reruns the batch.

        Energy is re-accounted over the degraded timeline: failed
        instances draw accelerator power until their failure instant,
        survivors and the host for the whole stretched makespan.  With
        an inert fault model every returned number is bit-identical to
        :meth:`simulate`.
        """
        config = config or protein_bert_base()
        policy = policy or DegradationPolicy()
        fault_model = fault_model or FaultModel()
        base = self.simulate(config, batch=batch, seq_len=seq_len,
                             tracer=tracer, metrics=metrics)
        accel_each = power_report(self.hardware).accelerator_power_w
        base_makespan = base.makespan_seconds
        fault_free_energy = base_makespan * (
            accel_each * self.instances + HOST_POWER_WATTS)

        # Per-instance completion including link retransmissions.
        completions: List[float] = []
        retries = 0
        wasted = 0.0
        for index, result in enumerate(base.per_instance):
            errors = fault_model.link_transients(result.total_dispatches)
            completion = result.makespan_seconds
            if errors:
                bytes_per_dispatch = (
                    result.total_stream_bytes / result.total_dispatches
                    if result.total_dispatches else 0.0)
                per_retry = (bytes_per_dispatch
                             / self.hardware.link.total_bandwidth
                             + DISPATCH_OVERHEAD_SECONDS)
                retries += errors
                wasted += errors * per_retry
                completion += errors * per_retry
                if tracer is not None:
                    tracer.instant(
                        "link_retransmissions", result.makespan_seconds,
                        pid=f"instance{index}", tid="system",
                        category="fault", errors=errors,
                        added_seconds=errors * per_retry)
            completions.append(completion)

        failed = fault_model.failed_instances(self.instances)
        failures = len(failed)
        survivors = self.instances - failures
        active_seconds = list(completions)
        recovery: List[ScheduleResult] = []

        if failed and survivors >= policy.min_survivors:
            # Each failed instance dies partway through its shard; the
            # host notices after a heartbeat window, then reshards the
            # lost inferences across the survivors.
            fail_times = []
            lost = 0
            for index in failed:
                fail_at = (fault_model.failure_fraction()
                           * completions[index])
                fail_times.append(fail_at)
                wasted += fail_at
                active_seconds[index] = fail_at
                lost += base.per_instance[index].batch
                if tracer is not None:
                    tracer.instant(
                        "instance_failure", fail_at,
                        pid=f"instance{index}", tid="system",
                        category="fault",
                        lost_batch=base.per_instance[index].batch)
            detect_at = max(fail_times) + policy.detection_seconds(
                max(completions[index] for index in failed))
            if tracer is not None:
                tracer.instant("failure_detected", detect_at,
                               pid="system", tid="events",
                               category="fault", failed=len(failed))
            surviving = [i for i in range(self.instances)
                         if i not in failed]
            share, extra = divmod(lost, len(surviving))
            orchestrator = Orchestrator(self.hardware,
                                        host=self._shard_host)
            makespan = 0.0
            for position, index in enumerate(surviving):
                extra_batch = share + (1 if position < extra else 0)
                finish = completions[index]
                if extra_batch > 0:
                    resume_at = max(completions[index], detect_at)
                    wasted += max(detect_at - completions[index], 0.0)
                    pid = f"instance{index}"
                    recovery_metrics = (
                        MetricsRegistry(name=f"{pid}/recovery")
                        if metrics is not None else None)
                    extra_result = orchestrator.run(
                        config, batch=extra_batch, seq_len=seq_len,
                        tracer=tracer, metrics=recovery_metrics,
                        trace_pid=pid, trace_offset=resume_at)
                    recovery.append(extra_result)
                    finish = resume_at + extra_result.makespan_seconds
                    if tracer is not None:
                        tracer.add_span(
                            "recovery_shard", resume_at, finish, pid=pid,
                            tid="recovery", category="recovery",
                            extra_batch=extra_batch)
                    if metrics is not None and recovery_metrics is not None:
                        metrics.merge(recovery_metrics,
                                      prefix=f"{pid}/recovery")
                        metrics.merge(recovery_metrics)
                active_seconds[index] = finish
                makespan = max(makespan, finish)
            total_makespan = makespan
            retries += failures
        elif failed:
            # Outage: everything died.  The host restarts the system
            # after the last heartbeat window and reruns the batch.
            fail_times = []
            for index in failed:
                fail_at = (fault_model.failure_fraction()
                           * completions[index])
                fail_times.append(fail_at)
                wasted += fail_at
                if tracer is not None:
                    tracer.instant(
                        "instance_failure", fail_at,
                        pid=f"instance{index}", tid="system",
                        category="fault",
                        lost_batch=base.per_instance[index].batch)
            detect_at = max(fail_times) + policy.detection_seconds(
                max(completions))
            total_makespan = detect_at + max(completions)
            active_seconds = [fail_times[i] + completions[i]
                              for i in range(self.instances)]
            recovery = list(base.per_instance)
            retries += self.instances
            survivors = self.instances  # restarted
            if tracer is not None:
                tracer.instant("outage_restart", detect_at, pid="system",
                               tid="events", category="fault",
                               failed=self.instances)
                for index in range(self.instances):
                    tracer.add_span(
                        "outage_rerun", detect_at,
                        detect_at + completions[index],
                        pid=f"instance{index}", tid="recovery",
                        category="recovery",
                        batch=base.per_instance[index].batch)
        else:
            total_makespan = max(completions)

        if failed:
            energy = (HOST_POWER_WATTS * total_makespan
                      + accel_each * sum(active_seconds))
        else:
            # All instances powered for the common wall-clock, exactly
            # the fault-free account (bit-identical at rate zero).
            energy = total_makespan * (accel_each * self.instances
                                       + HOST_POWER_WATTS)

        stats = fault_model.stats
        if metrics is not None:
            metrics.counter("reliability/retries").inc(retries)
            metrics.counter("reliability/instance_failures").inc(failures)
            metrics.counter("reliability/wasted_seconds").inc(wasted)
            metrics.counter("reliability/abft_detections").inc(
                stats.detected)
            metrics.counter("reliability/faults_injected").inc(
                stats.injected)
            metrics.counter("reliability/faults_silent").inc(stats.silent)
            metrics.gauge("reliability/availability").set(
                base_makespan / total_makespan)
            metrics.gauge("reliability/goodput").set(batch / total_makespan)
        reliability = ReliabilityReport(
            availability=base_makespan / total_makespan,
            goodput=batch / total_makespan,
            retries=retries,
            failures=failures,
            wasted_seconds=wasted,
            wasted_joules=max(energy - fault_free_energy, 0.0),
            faults_injected=stats.injected,
            faults_detected=stats.detected,
            faults_silent=stats.silent)
        return ReliableSystemReport(
            base=base,
            recovery=tuple(recovery),
            makespan_seconds=total_makespan,
            energy_joules=energy,
            fault_free_energy_joules=fault_free_energy,
            survivors=survivors,
            reliability=reliability)


def scaling_study(config: Optional[BertConfig] = None,
                  instance_counts: Tuple[int, ...] = (1, 2, 4),
                  batch_per_instance: int = 64,
                  seq_len: int = 512) -> List[SystemReport]:
    """Throughput/efficiency scaling from 1 to N instances."""
    config = config or protein_bert_base()
    reports = []
    for count in instance_counts:
        system = ProSESystem(instances=count)
        reports.append(system.simulate(
            config, batch=batch_per_instance * count, seq_len=seq_len))
    return reports


def format_scaling(reports: List[SystemReport]) -> str:
    lines = [f"{'instances':>10s} {'batch':>6s} {'inf/s':>9s} "
             f"{'system W':>9s} {'inf/s/W':>8s} {'scaling':>8s}"]
    base = reports[0].throughput if reports else 1.0
    for report in reports:
        lines.append(
            f"{report.instances:10d} {report.batch:6d} "
            f"{report.throughput:9.1f} {report.system_power_watts:9.1f} "
            f"{report.efficiency:8.2f} "
            f"{report.throughput / base:7.2f}x")
    return "\n".join(lines)
