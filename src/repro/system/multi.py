"""Multi-instance ProSE system (Section 3.2, System Overview).

"We envision a host CPU that is capable of supporting four NVLinks
similar to what the latest NVIDIA Grace CPU is capable of, with each
NVLink connecting to one ProSE instance, totaling four ProSE instances
per system."

The system model shards an inference batch across instances (each with
its own dedicated link), shares one host CPU for the softmax finishes and
layer norms, and accounts power once for the host and per-instance for
the accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..arch.config import HardwareConfig, best_perf
from ..model.config import BertConfig, protein_bert_base
from ..physical.power import power_report
from ..sched.host import HOST_POWER_WATTS, HostModel
from ..sched.orchestrator import Orchestrator, ScheduleResult

#: Instances per system in the paper's envisioned deployment.
DEFAULT_INSTANCES = 4


@dataclass(frozen=True)
class SystemReport:
    """Performance and power of a multi-instance ProSE system.

    Attributes:
        instances: ProSE accelerator cards in the system.
        per_instance: per-shard schedule results, in shard order.
        batch: total inferences completed.
    """

    instances: int
    per_instance: Tuple[ScheduleResult, ...]
    batch: int

    @property
    def makespan_seconds(self) -> float:
        """System latency: the slowest shard finishes last."""
        return max(result.makespan_seconds for result in self.per_instance)

    @property
    def throughput(self) -> float:
        return self.batch / self.makespan_seconds

    @property
    def accelerator_power_watts(self) -> float:
        return self._accelerator_power

    @property
    def system_power_watts(self) -> float:
        """All instances plus one shared host."""
        return self._accelerator_power + HOST_POWER_WATTS

    @property
    def efficiency(self) -> float:
        return self.throughput / self.system_power_watts

    # power injected at construction (frozen dataclass workaround)
    _accelerator_power: float = 0.0


class ProSESystem:
    """A host CPU driving several ProSE instances over dedicated links.

    Args:
        hardware: the per-instance configuration (each instance gets the
            full link the configuration names — one NVLink per instance).
        instances: number of accelerator cards (paper: 4).
        host: the shared host CPU.  Host slots are divided across
            instances, modeling contention for the shared softmax/norm
            capacity.
    """

    def __init__(self, hardware: Optional[HardwareConfig] = None,
                 instances: int = DEFAULT_INSTANCES,
                 host: Optional[HostModel] = None) -> None:
        if instances <= 0:
            raise ValueError("instances must be positive")
        self.hardware = hardware or best_perf()
        self.instances = instances
        base_host = host or HostModel()
        slots = max(base_host.slots // instances, 1)
        self._shard_host = HostModel(
            slots=slots,
            elementwise_throughput=base_host.elementwise_throughput,
            flops_throughput=base_host.flops_throughput)

    def simulate(self, config: Optional[BertConfig] = None,
                 batch: int = 512, seq_len: int = 512) -> SystemReport:
        """Shard ``batch`` across instances and simulate each shard."""
        config = config or protein_bert_base()
        if batch < self.instances:
            raise ValueError("batch must cover every instance")
        base, extra = divmod(batch, self.instances)
        shards = [base + (1 if i < extra else 0)
                  for i in range(self.instances)]
        orchestrator = Orchestrator(self.hardware, host=self._shard_host)
        results: List[ScheduleResult] = []
        for shard in shards:
            results.append(orchestrator.run(config, batch=shard,
                                            seq_len=seq_len))
        accel_power = (power_report(self.hardware).accelerator_power_w
                       * self.instances)
        return SystemReport(instances=self.instances,
                            per_instance=tuple(results), batch=batch,
                            _accelerator_power=accel_power)


def scaling_study(config: Optional[BertConfig] = None,
                  instance_counts: Tuple[int, ...] = (1, 2, 4),
                  batch_per_instance: int = 64,
                  seq_len: int = 512) -> List[SystemReport]:
    """Throughput/efficiency scaling from 1 to N instances."""
    config = config or protein_bert_base()
    reports = []
    for count in instance_counts:
        system = ProSESystem(instances=count)
        reports.append(system.simulate(
            config, batch=batch_per_instance * count, seq_len=seq_len))
    return reports


def format_scaling(reports: List[SystemReport]) -> str:
    lines = [f"{'instances':>10s} {'batch':>6s} {'inf/s':>9s} "
             f"{'system W':>9s} {'inf/s/W':>8s} {'scaling':>8s}"]
    base = reports[0].throughput if reports else 1.0
    for report in reports:
        lines.append(
            f"{report.instances:10d} {report.batch:6d} "
            f"{report.throughput:9.1f} {report.system_power_watts:9.1f} "
            f"{report.efficiency:8.2f} "
            f"{report.throughput / base:7.2f}x")
    return "\n".join(lines)
