"""Campaign/serving simulator: mixed-length workloads on ProSE vs GPU.

Drives a :class:`~repro.proteins.workloads.Workload` through bucketed
padded batches on both a simulated ProSE instance and a commodity
baseline, producing end-to-end campaign time, energy, and the padding
waste of the chosen batching policy — the deployment-level view of the
paper's drug-discovery motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.config import HardwareConfig, best_perf
from ..baselines.gpu import a100
from ..baselines.roofline import RooflineDevice
from ..model.config import BertConfig, protein_bert_base
from ..monitor.engine import Monitor, SloOutcome
from ..parallel.memo import cached_schedule
from ..physical.power import power_report
from ..proteins.workloads import Workload, bucket_batches
from ..reliability.faults import FaultModel
from ..reliability.policy import (
    DegradationPolicy,
    RetryPolicy,
    validate_policy_interplay,
)
from ..reliability.report import ReliabilityReport
from ..sched.orchestrator import ScheduleResult
from ..telemetry import MetricsRegistry, Tracer

#: Default padding buckets (token lengths after the 2 special tokens).
DEFAULT_BUCKETS: Tuple[int, ...] = (64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class CampaignReport:
    """End-to-end cost of one workload campaign on one platform.

    Attributes:
        platform: "ProSE <config>" or the baseline name.
        total_seconds: campaign wall-clock (batches run back-to-back).
        total_energy_joules: time × platform power.
        sequences: inferences completed.
        padded_tokens: tokens processed including padding.
        useful_tokens: tokens the workload actually contains.
        reliability: fault/retry accounting when the campaign ran under
            an active fault model; None on fault-free runs.
        slo: service-impact summary (alerts fired, worst burn rate,
            budget remaining) when the campaign carried a live monitor;
            None otherwise.
    """

    platform: str
    total_seconds: float
    total_energy_joules: float
    sequences: int
    padded_tokens: int
    useful_tokens: int
    reliability: Optional[ReliabilityReport] = None
    slo: Optional[SloOutcome] = None

    @property
    def throughput(self) -> float:
        """Inferences per second; 0.0 for an empty campaign."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.sequences / self.total_seconds

    @property
    def padding_waste(self) -> float:
        """Fraction of processed tokens that were padding (0.0 if none)."""
        if self.padded_tokens <= 0:
            return 0.0
        return 1.0 - self.useful_tokens / self.padded_tokens


class CampaignSimulator:
    """Runs bucketed workloads through ProSE and baseline models.

    Args:
        model_config: the encoder the campaign scores sequences with.
        hardware: ProSE instance configuration.
        buckets: padded-length buckets for batching.
        max_batch: sequences per padded batch.
        fault_model: optional seeded fault injector; batch attempts may
            then fail (retried with capped exponential backoff) or
            straggle (killed and rerun past the deadline multiple), and
            the resulting :class:`~repro.reliability.ReliabilityReport`
            is attached to the campaign report.
        retry_policy: backoff/deadline knobs; defaults apply when a
            fault model is given without a policy.
        degradation_policy: detection-window knobs checked against the
            retry policy (see
            :func:`~repro.reliability.validate_policy_interplay`) before
            any faulty batch runs; defaults when omitted.
    """

    def __init__(self, model_config: Optional[BertConfig] = None,
                 hardware: Optional[HardwareConfig] = None,
                 buckets: Sequence[int] = DEFAULT_BUCKETS,
                 max_batch: int = 64,
                 fault_model: Optional[FaultModel] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 degradation_policy: Optional[DegradationPolicy] = None
                 ) -> None:
        self.model_config = model_config or protein_bert_base()
        self.hardware = hardware or best_perf()
        self.buckets = tuple(buckets)
        self.max_batch = max_batch
        self.fault_model = fault_model
        self.retry_policy = retry_policy or RetryPolicy()
        self.degradation_policy = degradation_policy or DegradationPolicy()
        self._prose_power = power_report(self.hardware).system_power_w

    def _batches(self, workload: Workload) -> List[Tuple[int, int]]:
        return bucket_batches(workload, self.buckets,
                              max_batch=self.max_batch)

    def _schedule(self, seq_len: int, batch: int) -> ScheduleResult:
        """The nominal batch schedule, memoized on its shape key.

        Campaigns revisit the same (bucket length, batch size) pairs over
        and over; the shape-keyed cache simulates each pair once.
        """
        return cached_schedule(self.hardware, self.model_config,
                               batch=batch, seq_len=seq_len)

    def run_on_prose(self, workload: Workload,
                     tracer: Optional[Tracer] = None,
                     metrics: Optional[MetricsRegistry] = None,
                     monitor: Optional[Monitor] = None
                     ) -> CampaignReport:
        """Simulate the campaign on the configured ProSE instance.

        Without an active fault model batches run back-to-back exactly
        as before (bit-identical accounting).  Under faults each batch
        is attempted until it succeeds, is dropped after
        ``retry_policy.max_retries`` re-attempts, or — when it straggles
        past the deadline multiple — is killed and rerun; all partial
        attempts, backoff waits, and straggler overruns are charged to
        the campaign clock and reported in the attached
        :class:`~repro.reliability.ReliabilityReport`.

        Args:
            workload: the sequence library to score.
            tracer: optional span tracer.  Each padded batch becomes a
                span on its bucket's track (pid ``serving``), with one
                child span per attempt/backoff and instant events for
                retries, straggler kills, and drops.
            metrics: optional registry accumulating the serving-latency
                histogram (p50/p95/p99 in the dump), sequence/token
                counters, and retry/straggler/drop counters.
            monitor: optional live monitor (see
                :func:`repro.monitor.serving_monitor`).  Each completed
                batch is one sample tick: queue depth, batch latency,
                and retry/drop counters land in the monitor's series,
                every batch feeds the latency and availability SLOs
                (served within ``latency_multiple x nominal`` = good),
                and alert rules run on the campaign clock.  The monitor
                only observes, so the campaign accounting stays
                bit-identical with and without one.
        """
        total_seconds = 0.0
        useful_seconds = 0.0
        wasted_seconds = 0.0
        padded_tokens = 0
        completed = 0
        retries = stragglers = failures = dropped = 0
        faulty = self.fault_model is not None and self.fault_model.active
        policy = self.retry_policy
        batches = self._batches(workload)
        if monitor is not None and batches:
            # The horizon is the fault-free campaign: every schedule here
            # is shape-memoized, so this pre-pass costs nothing extra.
            monitor.begin(sum(
                self._schedule(length, batch).makespan_seconds
                for length, batch in batches))
        for index, (length, batch) in enumerate(batches):
            schedule = self._schedule(length, batch)
            nominal = schedule.makespan_seconds
            if faulty:
                # Fail fast on knob combinations that could never make
                # progress at this batch's time scale (e.g. a straggler
                # deadline shorter than the first backoff step), instead
                # of silently retrying forever below.
                validate_policy_interplay(policy, self.degradation_policy,
                                          nominal)
            padded_tokens += length * batch
            batch_start = total_seconds
            batch_name = f"batch{index}[len={length} n={batch}]"
            tid = f"bucket{length:05d}"

            def _attempt_span(start: float, end: float, category: str,
                              **args: object) -> None:
                if tracer is not None:
                    tracer.add_span(batch_name, start, end, pid="serving",
                                    tid=tid, category=category,
                                    seq_len=length, batch=batch, **args)

            def _monitor_tick(outcome: str) -> None:
                # Read-only observation at the batch's end; free
                # variables (total_seconds, completed, ...) are read at
                # call time, after the batch's accounting settled.
                if monitor is None:
                    return
                t = total_seconds
                latency = t - batch_start
                monitor.record(t, "serving/queue_depth",
                               float(len(batches) - index - 1))
                monitor.record(t, "serving/completed", float(completed))
                monitor.record(t, "serving/retries", float(retries))
                monitor.record(t, "serving/dropped", float(dropped))
                if outcome != "dropped":
                    monitor.record(t, "serving/batch_latency", latency)
                    threshold = monitor.latency_threshold(nominal)
                    if threshold is not None:
                        on_time = latency <= threshold
                        monitor.slo_event(
                            t, "latency",
                            good=float(batch) if on_time else 0.0,
                            bad=0.0 if on_time else float(batch))
                monitor.slo_event(
                    t, "availability",
                    good=0.0 if outcome == "dropped" else float(batch),
                    bad=float(batch) if outcome == "dropped" else 0.0)
                monitor.evaluate(t)

            if not faulty:
                total_seconds += nominal
                useful_seconds += nominal
                completed += batch
                _attempt_span(batch_start, total_seconds, "attempt")
                _attempt_span(batch_start, total_seconds, "batch",
                              outcome="ok", attempts=1,
                              nominal_seconds=nominal)
                if metrics is not None:
                    metrics.histogram(
                        "serving/batch_latency_seconds").observe(nominal)
                _monitor_tick("ok")
                continue
            attempt = 0
            outcome = "ok"
            while True:
                event = self.fault_model.batch_event()
                if event == "fail":
                    failures += 1
                    if monitor is not None:
                        monitor.mark(total_seconds, "fault", batch_name)
                    partial = (self.fault_model.attempt_fraction()
                               * nominal)
                    _attempt_span(total_seconds, total_seconds + partial,
                                  "failed", attempt=attempt)
                    total_seconds += partial
                    wasted_seconds += partial
                    if attempt >= policy.max_retries:
                        dropped += batch
                        outcome = "dropped"
                        if tracer is not None:
                            tracer.instant(
                                "batch_dropped", total_seconds,
                                pid="serving", tid=tid, category="fault",
                                batch=batch, attempts=attempt + 1)
                        break
                    backoff = policy.backoff_seconds(attempt)
                    _attempt_span(total_seconds, total_seconds + backoff,
                                  "backoff", attempt=attempt)
                    if tracer is not None:
                        tracer.instant("retry", total_seconds,
                                       pid="serving", tid=tid,
                                       category="fault", attempt=attempt)
                    total_seconds += backoff
                    wasted_seconds += backoff
                    retries += 1
                    attempt += 1
                    continue
                if event == "straggle":
                    if monitor is not None:
                        monitor.mark(total_seconds, "fault", batch_name)
                    slowdown = self.fault_model.rates.straggler_slowdown
                    deadline = (policy.straggler_deadline_multiple
                                * nominal)
                    if (slowdown * nominal > deadline
                            and attempt < policy.max_retries):
                        # Kill the straggler at the deadline and rerun.
                        _attempt_span(total_seconds,
                                      total_seconds + deadline,
                                      "straggle", attempt=attempt,
                                      killed=True)
                        if tracer is not None:
                            tracer.instant(
                                "straggler_killed",
                                total_seconds + deadline, pid="serving",
                                tid=tid, category="fault",
                                attempt=attempt)
                        total_seconds += deadline
                        wasted_seconds += deadline
                        stragglers += 1
                        retries += 1
                        attempt += 1
                        continue
                    # Tolerable straggle (or retries exhausted): wait it
                    # out; the overrun beyond nominal is waste.
                    _attempt_span(total_seconds,
                                  total_seconds + slowdown * nominal,
                                  "straggle", attempt=attempt,
                                  killed=False)
                    total_seconds += slowdown * nominal
                    useful_seconds += nominal
                    wasted_seconds += (slowdown - 1.0) * nominal
                    completed += batch
                    outcome = "straggled"
                    break
                _attempt_span(total_seconds, total_seconds + nominal,
                              "attempt", attempt=attempt)
                total_seconds += nominal
                useful_seconds += nominal
                completed += batch
                break
            _attempt_span(batch_start, total_seconds, "batch",
                          outcome=outcome, attempts=attempt + 1,
                          nominal_seconds=nominal)
            if metrics is not None and outcome != "dropped":
                metrics.histogram("serving/batch_latency_seconds").observe(
                    total_seconds - batch_start)
            _monitor_tick(outcome)
        if metrics is not None:
            metrics.counter("serving/sequences").inc(completed)
            metrics.counter("serving/padded_tokens").inc(padded_tokens)
            metrics.counter("serving/retries").inc(retries)
            metrics.counter("serving/stragglers").inc(stragglers)
            metrics.counter("serving/failures").inc(failures)
            metrics.counter("serving/dropped").inc(dropped)
            metrics.gauge("serving/campaign_seconds").set(total_seconds)
            metrics.gauge("serving/padding_waste").set(
                1.0 - (int(workload.lengths.sum()) / padded_tokens)
                if padded_tokens else 0.0)
        if tracer is not None:
            # End-to-end root span: the anchor trace analytics chains
            # critical paths from (batches run back-to-back on the
            # campaign clock, so the batch spans tile it exactly).
            tracer.add_span(
                "campaign.run", 0.0, total_seconds, pid="serving",
                tid="campaign", category="run",
                platform=f"ProSE {self.hardware.name}",
                batches=len(batches), sequences=completed,
                retries=retries, dropped=dropped)
        slo = None
        if monitor is not None and monitor.horizon_seconds is not None:
            slo = monitor.finalize(total_seconds).outcome()
        reliability = None
        if faulty:
            stats = self.fault_model.stats
            reliability = ReliabilityReport(
                availability=(useful_seconds / total_seconds
                              if total_seconds > 0 else 1.0),
                goodput=(completed / total_seconds
                         if total_seconds > 0 else 0.0),
                retries=retries,
                failures=failures,
                stragglers=stragglers,
                dropped=dropped,
                wasted_seconds=wasted_seconds,
                wasted_joules=wasted_seconds * self._prose_power,
                faults_injected=stats.injected,
                faults_detected=stats.detected,
                faults_silent=stats.silent)
        return CampaignReport(
            platform=f"ProSE {self.hardware.name}",
            total_seconds=total_seconds,
            total_energy_joules=total_seconds * self._prose_power,
            sequences=completed,
            padded_tokens=padded_tokens,
            useful_tokens=int(workload.lengths.sum()) if len(workload)
            else 0,
            reliability=reliability, slo=slo)

    def run_on_baseline(self, workload: Workload,
                        device: Optional[RooflineDevice] = None
                        ) -> CampaignReport:
        """Simulate the campaign on a commodity baseline (default A100)."""
        device = device or a100()
        total_seconds = 0.0
        padded_tokens = 0
        for length, batch in self._batches(workload):
            throughput = device.throughput(self.model_config, batch=batch,
                                           seq_len=length,
                                           accelerated_only=True)
            total_seconds += batch / throughput
            padded_tokens += length * batch
        return CampaignReport(
            platform=device.spec.name,
            total_seconds=total_seconds,
            total_energy_joules=total_seconds * device.spec.tdp_watts,
            sequences=len(workload),
            padded_tokens=padded_tokens,
            useful_tokens=int(workload.lengths.sum()))


def format_campaign(reports: Sequence[CampaignReport]) -> str:
    lines = [f"{'platform':>18s} {'seconds':>9s} {'inf/s':>8s} "
             f"{'energy J':>9s} {'padding':>8s}"]
    for report in reports:
        lines.append(f"{report.platform:>18s} {report.total_seconds:9.2f} "
                     f"{report.throughput:8.1f} "
                     f"{report.total_energy_joules:9.1f} "
                     f"{report.padding_waste:7.1%}")
    return "\n".join(lines)
