"""Zero-dependency tracing and metrics for the simulated ProSE stack.

Three pieces:

* :class:`Tracer` — nestable spans (simulated time and wall-clock) plus
  instant events, attached to instrumented code through an optional
  ``tracer=`` parameter (``None`` keeps every report bit-identical);
* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms that merge hierarchically across instances and campaigns;
* exporters — Chrome-trace/Perfetto JSON (open at ``ui.perfetto.dev``),
  flat CSV/JSONL metric dumps, and an ASCII timeline renderer;
* :func:`profile` — cProfile-backed hotspot capture that attributes
  per-function self time onto the active span stack and exports next to
  the spans (see :mod:`repro.telemetry.profiling`).
"""

from .analyze import (
    AttributionRow,
    CriticalHop,
    CriticalPath,
    PhaseVerdict,
    TraceAnalysis,
    TraceDiff,
    TrackUsage,
    UtilizationReport,
    analyze_trace,
    build_rollup,
    critical_path_spans,
    diff_rollups,
    diff_traces,
    extract_critical_path,
    format_analysis,
    format_critical_path,
    format_diff,
    format_utilization,
    load_trace,
    phase_verdicts,
    tracer_from_chrome_trace,
    utilization_report,
    validate_rollup,
)
from .export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_jsonl,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import (
    HotspotEntry,
    ProfileReport,
    format_hotspots,
    profile,
)
from .render import default_glyph, render_tracer, render_tracks
from .spans import SIM_CLOCK, WALL_CLOCK, Instant, Span, Tracer
from .timeseries import TimeSeries, TimeSeriesStore, WindowStats

__all__ = [
    "AttributionRow",
    "Counter",
    "CriticalHop",
    "CriticalPath",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HotspotEntry",
    "Instant",
    "MetricsRegistry",
    "PhaseVerdict",
    "ProfileReport",
    "SIM_CLOCK",
    "Span",
    "TimeSeries",
    "TimeSeriesStore",
    "TraceAnalysis",
    "TraceDiff",
    "TrackUsage",
    "Tracer",
    "UtilizationReport",
    "WALL_CLOCK",
    "WindowStats",
    "analyze_trace",
    "build_rollup",
    "critical_path_spans",
    "default_glyph",
    "diff_rollups",
    "diff_traces",
    "extract_critical_path",
    "format_analysis",
    "format_critical_path",
    "format_diff",
    "format_hotspots",
    "format_utilization",
    "load_trace",
    "phase_verdicts",
    "profile",
    "render_tracer",
    "render_tracks",
    "to_chrome_trace",
    "tracer_from_chrome_trace",
    "utilization_report",
    "validate_chrome_trace",
    "validate_rollup",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_jsonl",
]
