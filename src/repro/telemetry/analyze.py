"""Trace analytics: critical paths, utilization attribution, trace diffs.

The recording layers (:class:`~repro.telemetry.spans.Tracer`, the bench
observatory, the SLO monitor) can say *what* happened; this module says
*why a number is what it is*.  Three analyses over a finished trace —
a live :class:`Tracer` or an exported Chrome-trace JSON:

* **critical path** — starting from the end of the root span, repeatedly
  hop to the span whose completion unblocked the current instant (the
  latest-finishing span at the cursor).  Every placement decision in the
  simulated stack starts either when its dependency finished or when a
  resource freed, and both leave a span ending at exactly that time, so
  the backward chain tiles the root span gap-free: the ordered hops with
  per-hop self-time *are* the end-to-end latency, attributed.
* **utilization attribution** — per-track busy/idle/blocked fractions, a
  concurrency histogram over the root window, and a per-phase "bound by"
  verdict recomputed from the spans alone, cross-checked against the
  ``bottleneck`` the scheduler recorded on its run span.
* **trace diff** — two traces of the same scenario aligned by span
  ``(name, category)`` structure; the end-to-end delta is attributed to
  the top-k span groups that moved.  Rollups (the compact aggregation
  the diff runs on) are JSON documents, so BENCH records can embed them
  and future regressions diff against committed baselines without
  re-running old code (:mod:`repro.bench.attribution`).

Everything here is read-only over recorded spans: analyzing a run can
never change its results.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .spans import SIM_CLOCK, Span, Tracer

#: Slack (seconds) for "ends at the cursor" checks; sim spans share the
#: exact floats of the schedule, so this only absorbs last-ulp noise.
DEFAULT_EPSILON = 1e-9

#: Rollup document identifier and version; bump on incompatible changes.
ROLLUP_SCHEMA = "repro.trace-rollup"
ROLLUP_SCHEMA_VERSION = 1

#: Span categories that occupy a schedulable resource, and the resource
#: class each belongs to.  ``task`` spans live on software-thread tracks
#: (they mirror work already counted on a resource track), so they form
#: their own class and are excluded from resource concurrency.
CATEGORY_CLASSES = {
    "exec": "array",
    "stream": "link",
    "host": "host",
    "task": "thread",
    "shard": "compute",
    "recovery": "compute",
    "fabric": "link",
}

#: Root-candidate categories, most preferred first.
_ROOT_CATEGORIES = ("run", "fleet")

#: Synthetic hop name for uncovered path segments.
IDLE_HOP = "(idle)"


# -- trace loading -------------------------------------------------------

def tracer_from_chrome_trace(data: Dict[str, object]) -> Tracer:
    """Rebuild a :class:`Tracer` from an exported Chrome-trace dict.

    Inverse of :func:`repro.telemetry.export.to_chrome_trace` for the
    span/instant content: ``M`` metadata events restore the pid/tid
    labels, ``X`` events become spans (the ``clock`` attribute survives
    the round trip through ``args``), ``i`` events become instants.
    Counter tracks and the profile process carry no schedule structure
    and are skipped.
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a traceEvents list")
    pid_names: Dict[int, str] = {}
    tid_names: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            pid_names[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            tid_names[(event["pid"], event["tid"])] = event["args"]["name"]
    tracer = Tracer()
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        pid = pid_names.get(event["pid"], str(event["pid"]))
        if pid in ("profile", "analysis"):
            # Derived tracks (hotspot lanes, a previous run's critical-
            # path highlight) would double-count if re-analyzed.
            continue
        tid = tid_names.get((event["pid"], event["tid"]),
                            str(event["tid"]))
        args = dict(event.get("args") or {})
        start = float(event["ts"]) / 1e6
        if phase == "i":
            tracer.instant(event["name"], start, pid=pid, tid=tid,
                           category=str(event.get("cat", "event")), **args)
            continue
        clock = str(args.pop("clock", SIM_CLOCK))
        end = start + float(event.get("dur", 0.0)) / 1e6
        tracer.add_span(event["name"], start, end, pid=pid, tid=tid,
                        category=str(event.get("cat", "span")),
                        clock=clock, **args)
    return tracer


def load_trace(source: Union[Tracer, Dict[str, object], str]) -> Tracer:
    """Coerce a tracer, Chrome-trace dict, or JSON path to a Tracer."""
    if isinstance(source, Tracer):
        return source
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            source = json.load(handle)
    if isinstance(source, dict):
        return tracer_from_chrome_trace(source)
    raise TypeError(f"cannot load a trace from {type(source).__name__}")


def _sim_spans(tracer: Tracer) -> List[Span]:
    return [span for span in tracer.finished_spans()
            if span.clock == SIM_CLOCK]


def find_root(tracer: Tracer, name: Optional[str] = None) -> Span:
    """The end-to-end span the analyses anchor on.

    With ``name``, the longest sim-time span of that name.  Otherwise
    the longest span of a root category (``run``/``fleet``); if none
    exists — e.g. a hand-built trace — a synthetic span covering the
    hull of all sim-time spans.
    """
    spans = _sim_spans(tracer)
    if not spans:
        raise ValueError("trace has no finished sim-time spans")
    if name is not None:
        named = [span for span in spans if span.name == name]
        if not named:
            raise ValueError(f"no sim-time span named '{name}'")
        return max(named, key=lambda span: span.duration)
    for category in _ROOT_CATEGORIES:
        of_category = [s for s in spans if s.category == category]
        if of_category:
            return max(of_category, key=lambda span: span.duration)
    start = min(span.start for span in spans)
    end = max(span.end for span in spans)
    return Span(name="(trace)", start=start, end=end, pid="analysis",
                tid="hull", category="run", clock=SIM_CLOCK)


# -- critical path -------------------------------------------------------

@dataclass(frozen=True)
class CriticalHop:
    """One chained segment of the critical path (chronological order).

    ``self_seconds`` is the slice of end-to-end time this hop alone
    accounts for — the sum over all hops equals the root duration.
    """

    name: str
    pid: str
    tid: str
    category: str
    start: float
    end: float
    self_seconds: float
    kind: str = ""
    resource: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "pid": self.pid, "tid": self.tid,
                "category": self.category, "start": self.start,
                "end": self.end, "self_seconds": self.self_seconds,
                "kind": self.kind, "resource": self.resource}


@dataclass(frozen=True)
class CriticalPath:
    """The blocking chain behind one end-to-end span."""

    root_name: str
    root_pid: str
    root_seconds: float
    hops: Tuple[CriticalHop, ...]
    gap_seconds: float

    @property
    def total_seconds(self) -> float:
        """Sum of per-hop self time (== root duration, gaps included)."""
        return sum(hop.self_seconds for hop in self.hops)

    @property
    def gaps(self) -> int:
        return sum(1 for hop in self.hops if hop.name == IDLE_HOP)

    def by_category(self) -> Dict[str, float]:
        """Path self-time per span category, largest first."""
        totals: Dict[str, float] = {}
        for hop in self.hops:
            totals[hop.category] = (totals.get(hop.category, 0.0)
                                    + hop.self_seconds)
        return dict(sorted(totals.items(),
                           key=lambda item: (-item[1], item[0])))

    def as_dict(self) -> Dict[str, object]:
        return {"root": self.root_name, "pid": self.root_pid,
                "root_seconds": self.root_seconds,
                "total_seconds": self.total_seconds,
                "gap_seconds": self.gap_seconds,
                "hops": [hop.as_dict() for hop in self.hops],
                "by_category": self.by_category()}


def extract_critical_path(tracer: Tracer, root: Optional[str] = None,
                          epsilon: float = DEFAULT_EPSILON
                          ) -> CriticalPath:
    """Chain the blocking predecessors of the end-to-end span.

    Walks backward from the root's end: at every cursor the blocking
    span is the latest-finishing span at (or before) that instant; ties
    prefer the latest-starting (most specific) span, so leaf segments
    win over the umbrella spans that merely contain them.  A cursor no
    span reaches produces a synthetic :data:`IDLE_HOP` — on nominal
    simulator traces the chain is gap-free by construction.
    """
    root_span = find_root(tracer, root)
    candidates = [
        span for span in _sim_spans(tracer)
        if span is not root_span and span.duration > 0.0
        and span.end > root_span.start + epsilon
        and span.start < root_span.end - epsilon
        and span.category not in _ROOT_CATEGORIES
        and span.category not in ("critical", "idle")]
    # Sorted by end for the bisect walk; the tie-break key picks the
    # most specific blocker among equal ends deterministically.
    candidates.sort(key=lambda span: span.end)
    ends = [span.end for span in candidates]
    hops: List[CriticalHop] = []
    gap_seconds = 0.0
    cursor = root_span.end

    def emit(span: Span, upper: float) -> float:
        lower = max(span.start, root_span.start)
        hops.append(CriticalHop(
            name=span.name, pid=span.pid, tid=span.tid,
            category=span.category, start=span.start, end=span.end,
            self_seconds=upper - lower,
            kind=str(span.args.get("kind", "")),
            resource=str(span.args.get("resource", ""))))
        return lower

    while cursor > root_span.start + epsilon:
        index = bisect_right(ends, cursor + epsilon) - 1
        if index < 0:
            # Nothing ends at or before the cursor: idle back to start.
            gap = cursor - root_span.start
            gap_seconds += gap
            hops.append(CriticalHop(
                name=IDLE_HOP, pid=root_span.pid, tid=root_span.tid,
                category="idle", start=root_span.start, end=cursor,
                self_seconds=gap))
            break
        best = candidates[index]
        scan = index - 1
        while scan >= 0 and ends[scan] >= best.end - epsilon:
            other = candidates[scan]
            if (other.start, other.pid, other.tid, other.name) > (
                    best.start, best.pid, best.tid, best.name):
                best = other
            scan -= 1
        if best.end < cursor - epsilon:
            gap = cursor - best.end
            gap_seconds += gap
            hops.append(CriticalHop(
                name=IDLE_HOP, pid=root_span.pid, tid=root_span.tid,
                category="idle", start=best.end, end=cursor,
                self_seconds=gap))
            cursor = best.end
            continue
        cursor = emit(best, cursor)
    hops.reverse()
    return CriticalPath(root_name=root_span.name, root_pid=root_span.pid,
                        root_seconds=root_span.duration,
                        hops=tuple(hops), gap_seconds=gap_seconds)


# -- utilization & phase verdicts ---------------------------------------

@dataclass(frozen=True)
class TrackUsage:
    """Busy/idle/blocked accounting for one (pid, tid) track."""

    pid: str
    tid: str
    resource_class: str
    busy_seconds: float
    blocked_seconds: float
    horizon_seconds: float
    spans: int

    @property
    def busy_fraction(self) -> float:
        return (self.busy_seconds / self.horizon_seconds
                if self.horizon_seconds > 0 else 0.0)

    @property
    def idle_seconds(self) -> float:
        return max(self.horizon_seconds - self.busy_seconds
                   - self.blocked_seconds, 0.0)

    def as_dict(self) -> Dict[str, object]:
        return {"pid": self.pid, "tid": self.tid,
                "class": self.resource_class,
                "busy_seconds": self.busy_seconds,
                "blocked_seconds": self.blocked_seconds,
                "idle_seconds": self.idle_seconds,
                "busy_fraction": self.busy_fraction,
                "spans": self.spans}


@dataclass(frozen=True)
class PhaseVerdict:
    """One schedule phase's resource verdict, trace-recomputed.

    ``bound_by`` is derived from span busy-time alone, with the same
    tie-break the scheduler uses; ``recorded`` is the ``bottleneck`` the
    run span carried (None on traces that predate that metadata), and
    ``agrees`` whether the two name the same resource.
    """

    name: str
    pid: str
    start: float
    end: float
    bound_by: str
    utilization: Dict[str, float]
    recorded: Optional[str] = None

    @property
    def agrees(self) -> Optional[bool]:
        if self.recorded is None:
            return None
        return self.bound_by == self.recorded

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "pid": self.pid, "start": self.start,
                "end": self.end, "bound_by": self.bound_by,
                "recorded": self.recorded, "agrees": self.agrees,
                "utilization": dict(sorted(self.utilization.items()))}


#: The scheduler's deterministic bottleneck tie-break, mirrored.
_BOTTLENECK_RANK = {"array": 0, "link": 1, "host": 2}


def _verdict_of(utilization: Dict[str, float]) -> str:
    return min(utilization.items(),
               key=lambda item: (-item[1],
                                 _BOTTLENECK_RANK.get(
                                     item[0].split(":")[0], 99),
                                 item[0]))[0]


def _array_type_of_tid(tid: str) -> Optional[str]:
    """Parse the array type out of a resource-track label.

    Array timelines are named ``"<count>x <size>x<size> <T>[<i>]"`` and
    link channels ``"channel:<T>"`` — both end in the type letter.
    """
    if tid.startswith("channel:"):
        return tid.split(":", 1)[1]
    head = tid.split("[", 1)[0].strip()
    return head.rsplit(" ", 1)[-1] if " " in head else None


def phase_verdicts(tracer: Tracer,
                   epsilon: float = DEFAULT_EPSILON) -> List[PhaseVerdict]:
    """Recompute "bound by" per scheduler run span, from spans alone.

    Each ``orchestrator.run`` span is one phase.  Busy time per array
    group and link channel comes from the ``exec``/``stream``/``host``
    spans inside the phase window on the phase's pid; idle resources
    contribute through the inventory counts the run span carries.
    Phases without that inventory metadata are skipped.
    """
    verdicts: List[PhaseVerdict] = []
    spans = _sim_spans(tracer)
    for phase in spans:
        if phase.category != "run" or phase.name != "orchestrator.run":
            continue
        args = phase.args
        host_slots = args.get("host_slots")
        if not isinstance(host_slots, int):
            continue
        counts = {key[len("arrays_"):].upper(): value
                  for key, value in args.items()
                  if key.startswith("arrays_") and isinstance(value, int)}
        duration = phase.duration
        busy_array: Dict[str, float] = {}
        busy_link: Dict[str, float] = {}
        busy_host = 0.0
        for span in spans:
            if (span.pid != phase.pid
                    or span.start < phase.start - epsilon
                    or span.end > phase.end + epsilon):
                continue
            if span.category == "exec":
                array_type = _array_type_of_tid(span.tid)
                if array_type:
                    busy_array[array_type] = (
                        busy_array.get(array_type, 0.0) + span.duration)
            elif span.category == "stream":
                array_type = _array_type_of_tid(span.tid)
                if array_type:
                    busy_link[array_type] = (
                        busy_link.get(array_type, 0.0) + span.duration)
            elif span.category == "host":
                busy_host += span.duration
        utilization: Dict[str, float] = {
            "host": (busy_host / (duration * host_slots)
                     if duration > 0 and host_slots > 0 else 0.0)}
        for array_type, count in counts.items():
            utilization[f"array:{array_type}"] = (
                busy_array.get(array_type, 0.0) / (duration * count)
                if duration > 0 and count > 0 else 0.0)
            utilization[f"link:{array_type}"] = (
                busy_link.get(array_type, 0.0) / duration
                if duration > 0 else 0.0)
        recorded = args.get("bottleneck")
        verdicts.append(PhaseVerdict(
            name=phase.name, pid=phase.pid, start=phase.start,
            end=phase.end, bound_by=_verdict_of(utilization),
            utilization=utilization,
            recorded=recorded if isinstance(recorded, str) else None))
    verdicts.sort(key=lambda v: (v.start, v.pid))
    return verdicts


@dataclass(frozen=True)
class UtilizationReport:
    """Busy/idle/blocked attribution over the root window."""

    horizon_seconds: float
    tracks: Tuple[TrackUsage, ...]
    concurrency: Dict[int, float]
    phases: Tuple[PhaseVerdict, ...] = ()

    def class_busy(self) -> Dict[str, float]:
        """Total busy seconds per resource class."""
        totals: Dict[str, float] = {}
        for track in self.tracks:
            totals[track.resource_class] = (
                totals.get(track.resource_class, 0.0) + track.busy_seconds)
        return dict(sorted(totals.items()))

    @property
    def mean_concurrency(self) -> float:
        return sum(level * share
                   for level, share in self.concurrency.items())

    def as_dict(self) -> Dict[str, object]:
        return {"horizon_seconds": self.horizon_seconds,
                "tracks": [track.as_dict() for track in self.tracks],
                "class_busy_seconds": self.class_busy(),
                "concurrency": {str(k): v
                                for k, v in sorted(self.concurrency.items())},
                "mean_concurrency": self.mean_concurrency,
                "phases": [phase.as_dict() for phase in self.phases]}


def utilization_report(tracer: Tracer, root: Optional[str] = None,
                       epsilon: float = DEFAULT_EPSILON
                       ) -> UtilizationReport:
    """Per-track busy/idle/blocked plus the concurrency histogram.

    Busy time counts the resource-occupying categories only (see
    :data:`CATEGORY_CLASSES`); thread tracks additionally report
    *blocked* time — the gap between a task's recorded ``ready`` time
    and its actual start, i.e. time spent waiting on a contended
    resource rather than on a dependency.
    """
    root_span = find_root(tracer, root)
    horizon = root_span.duration
    by_track: Dict[Tuple[str, str], List[Span]] = {}
    for span in _sim_spans(tracer):
        if span.category not in CATEGORY_CLASSES:
            continue
        if span.end <= root_span.start or span.start >= root_span.end:
            continue
        by_track.setdefault((span.pid, span.tid), []).append(span)
    tracks: List[TrackUsage] = []
    busy_intervals: List[Tuple[float, int]] = []
    for (pid, tid), spans in sorted(by_track.items()):
        classes = {CATEGORY_CLASSES[span.category] for span in spans}
        # A track carries one class in practice; mixed tracks (e.g. a
        # fleet instance running shard + recovery) collapse sensibly.
        resource_class = sorted(classes)[0]
        busy = sum(span.duration for span in spans)
        blocked = 0.0
        for span in spans:
            ready = span.args.get("ready")
            if isinstance(ready, (int, float)) and not isinstance(
                    ready, bool):
                blocked += max(span.start - float(ready), 0.0)
        tracks.append(TrackUsage(
            pid=pid, tid=tid, resource_class=resource_class,
            busy_seconds=busy, blocked_seconds=blocked,
            horizon_seconds=horizon, spans=len(spans)))
        if resource_class != "thread":
            for span in spans:
                start = max(span.start, root_span.start)
                end = min(span.end, root_span.end)
                if end > start:
                    busy_intervals.append((start, +1))
                    busy_intervals.append((end, -1))
    concurrency: Dict[int, float] = {}
    if horizon > 0:
        busy_intervals.sort()
        level = 0
        previous = root_span.start
        for t, delta in busy_intervals:
            if t > previous:
                concurrency[level] = (concurrency.get(level, 0.0)
                                      + (t - previous) / horizon)
            previous = t
            level += delta
        if root_span.end > previous:
            concurrency[level] = (concurrency.get(level, 0.0)
                                  + (root_span.end - previous) / horizon)
    return UtilizationReport(
        horizon_seconds=horizon, tracks=tuple(tracks),
        concurrency=concurrency,
        phases=tuple(phase_verdicts(tracer, epsilon=epsilon)))


# -- rollups & trace diff ------------------------------------------------

def build_rollup(tracer: Tracer, root: Optional[str] = None,
                 epsilon: float = DEFAULT_EPSILON) -> Dict[str, object]:
    """Aggregate a trace into a compact, diffable JSON document.

    Spans group by ``(name, category)``; the rollup carries per-group
    count and total duration, per-class busy seconds, the root
    duration, and the critical path aggregated the same way.  Two runs
    of the same scenario align by these keys even when thread/track
    placement differs.
    """
    root_span = find_root(tracer, root)
    groups: Dict[Tuple[str, str], List[float]] = {}
    for span in _sim_spans(tracer):
        if span is root_span or span.category in _ROOT_CATEGORIES:
            continue
        key = (span.name, span.category)
        groups.setdefault(key, []).append(span.duration)
    path = extract_critical_path(tracer, root=root, epsilon=epsilon)
    critical: Dict[Tuple[str, str], List[float]] = {}
    for hop in path.hops:
        key = (hop.name, hop.category)
        critical.setdefault(key, []).append(hop.self_seconds)
    report = utilization_report(tracer, root=root, epsilon=epsilon)
    return {
        "schema": ROLLUP_SCHEMA,
        "schema_version": ROLLUP_SCHEMA_VERSION,
        "root": root_span.name,
        "root_seconds": root_span.duration,
        "spans": [
            {"name": name, "category": category,
             "count": len(durations), "total_seconds": sum(durations)}
            for (name, category), durations in sorted(groups.items())],
        "classes": report.class_busy(),
        "critical": [
            {"name": name, "category": category,
             "count": len(selfs), "self_seconds": sum(selfs)}
            for (name, category), selfs in sorted(critical.items())],
        "bound_by": (report.phases[0].bound_by
                     if report.phases else None),
    }


def validate_rollup(rollup: Dict[str, object]) -> Dict[str, object]:
    """Schema-check one rollup document; returns it, raises ValueError."""
    if not isinstance(rollup, dict):
        raise ValueError("rollup must be a JSON object")
    if rollup.get("schema") != ROLLUP_SCHEMA:
        raise ValueError(f"not a {ROLLUP_SCHEMA} document: "
                         f"schema={rollup.get('schema')!r}")
    version = rollup.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad rollup schema_version {version!r}")
    if version > ROLLUP_SCHEMA_VERSION:
        raise ValueError(f"rollup schema_version {version} is newer than "
                         f"this reader ({ROLLUP_SCHEMA_VERSION})")
    root_seconds = rollup.get("root_seconds")
    if not isinstance(root_seconds, (int, float)) or root_seconds < 0:
        raise ValueError(f"bad rollup root_seconds {root_seconds!r}")
    spans = rollup.get("spans")
    if not isinstance(spans, list):
        raise ValueError("rollup must carry a spans list")
    for entry in spans:
        if not isinstance(entry, dict) or not isinstance(
                entry.get("name"), str) or not isinstance(
                entry.get("total_seconds"), (int, float)):
            raise ValueError(f"bad rollup span entry {entry!r}")
    return rollup


@dataclass(frozen=True)
class AttributionRow:
    """One span group's contribution to the end-to-end delta."""

    name: str
    category: str
    baseline_seconds: float
    current_seconds: float
    baseline_count: int
    current_count: int

    @property
    def delta_seconds(self) -> float:
        return self.current_seconds - self.baseline_seconds

    @property
    def status(self) -> str:
        if self.baseline_count == 0:
            return "added"
        if self.current_count == 0:
            return "removed"
        return "moved"

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "category": self.category,
                "baseline_seconds": self.baseline_seconds,
                "current_seconds": self.current_seconds,
                "baseline_count": self.baseline_count,
                "current_count": self.current_count,
                "delta_seconds": self.delta_seconds,
                "status": self.status}


@dataclass(frozen=True)
class TraceDiff:
    """Run-to-run latency delta, attributed to the spans that moved."""

    root: str
    baseline_seconds: float
    current_seconds: float
    rows: Tuple[AttributionRow, ...]
    class_deltas: Dict[str, float] = field(default_factory=dict)

    @property
    def delta_seconds(self) -> float:
        return self.current_seconds - self.baseline_seconds

    @property
    def delta_pct(self) -> float:
        return (self.delta_seconds / self.baseline_seconds * 100.0
                if self.baseline_seconds > 0 else 0.0)

    def top(self, k: int) -> Tuple[AttributionRow, ...]:
        return self.rows[:k]

    def as_dict(self, top: Optional[int] = None) -> Dict[str, object]:
        rows = self.rows if top is None else self.top(top)
        return {"root": self.root,
                "baseline_seconds": self.baseline_seconds,
                "current_seconds": self.current_seconds,
                "delta_seconds": self.delta_seconds,
                "delta_pct": self.delta_pct,
                "class_deltas": dict(sorted(self.class_deltas.items())),
                "rows": [row.as_dict() for row in rows]}


def diff_rollups(baseline: Dict[str, object],
                 current: Dict[str, object]) -> TraceDiff:
    """Attribute the end-to-end delta between two aligned rollups.

    Rows are every ``(name, category)`` group either side measured,
    sorted by absolute delta (largest mover first); groups only one
    side has surface as ``added``/``removed`` — structural drift, not
    just a slowdown.
    """
    validate_rollup(baseline)
    validate_rollup(current)

    def entries(rollup: Dict[str, object]
                ) -> Dict[Tuple[str, str], Tuple[float, int]]:
        table: Dict[Tuple[str, str], Tuple[float, int]] = {}
        for entry in rollup["spans"]:
            key = (str(entry["name"]), str(entry.get("category", "span")))
            seconds, count = table.get(key, (0.0, 0))
            table[key] = (seconds + float(entry["total_seconds"]),
                          count + int(entry.get("count", 1)))
        return table

    base_entries = entries(baseline)
    cur_entries = entries(current)
    rows = []
    for key in sorted(set(base_entries) | set(cur_entries)):
        base_seconds, base_count = base_entries.get(key, (0.0, 0))
        cur_seconds, cur_count = cur_entries.get(key, (0.0, 0))
        rows.append(AttributionRow(
            name=key[0], category=key[1],
            baseline_seconds=base_seconds, current_seconds=cur_seconds,
            baseline_count=base_count, current_count=cur_count))
    rows.sort(key=lambda row: (-abs(row.delta_seconds), row.name,
                               row.category))
    base_classes = {str(k): float(v)
                    for k, v in (baseline.get("classes") or {}).items()}
    cur_classes = {str(k): float(v)
                   for k, v in (current.get("classes") or {}).items()}
    class_deltas = {
        name: cur_classes.get(name, 0.0) - base_classes.get(name, 0.0)
        for name in sorted(set(base_classes) | set(cur_classes))}
    return TraceDiff(
        root=str(current.get("root", baseline.get("root", "(trace)"))),
        baseline_seconds=float(baseline["root_seconds"]),
        current_seconds=float(current["root_seconds"]),
        rows=tuple(rows), class_deltas=class_deltas)


def diff_traces(baseline: Union[Tracer, Dict[str, object], str],
                current: Union[Tracer, Dict[str, object], str],
                root: Optional[str] = None) -> TraceDiff:
    """Diff two traces end to end (convenience over rollups)."""
    return diff_rollups(build_rollup(load_trace(baseline), root=root),
                        build_rollup(load_trace(current), root=root))


# -- whole-trace analysis ------------------------------------------------

@dataclass(frozen=True)
class TraceAnalysis:
    """Everything ``cli analyze`` reports for one trace."""

    path: CriticalPath
    utilization: UtilizationReport
    diff: Optional[TraceDiff] = None

    def as_dict(self, top: Optional[int] = None) -> Dict[str, object]:
        data: Dict[str, object] = {
            "critical_path": self.path.as_dict(),
            "utilization": self.utilization.as_dict()}
        if self.diff is not None:
            data["diff"] = self.diff.as_dict(top=top)
        return data

    def to_json(self, top: Optional[int] = None) -> str:
        """Canonical (sorted-keys) JSON; byte-identical per seed."""
        return json.dumps(self.as_dict(top=top), sort_keys=True, indent=1)


def analyze_trace(source: Union[Tracer, Dict[str, object], str],
                  against: Union[Tracer, Dict[str, object], str,
                                 None] = None,
                  root: Optional[str] = None,
                  epsilon: float = DEFAULT_EPSILON) -> TraceAnalysis:
    """Run every analysis over ``source``.

    Args:
        source: tracer, Chrome-trace dict, or path to an exported JSON.
        against: optional baseline trace; adds the run-to-run diff.
        root: anchor span name (default: the run/fleet root).
        epsilon: float-slack for chaining and window checks.
    """
    tracer = load_trace(source)
    analysis_diff = None
    if against is not None:
        analysis_diff = diff_rollups(
            build_rollup(load_trace(against), root=root, epsilon=epsilon),
            build_rollup(tracer, root=root, epsilon=epsilon))
    return TraceAnalysis(
        path=extract_critical_path(tracer, root=root, epsilon=epsilon),
        utilization=utilization_report(tracer, root=root, epsilon=epsilon),
        diff=analysis_diff)


def critical_path_spans(path: CriticalPath,
                        pid: str = "analysis",
                        tid: str = "critical path") -> List[Span]:
    """The path as disjoint highlight spans for Perfetto re-export.

    Pass to :func:`repro.telemetry.export.to_chrome_trace` via
    ``extra_spans``: the hops tile the root window end to end on one
    track, so the export stays schema- and nesting-valid while the
    critical chain renders as its own highlighted row.
    """
    spans = []
    cursor = None
    for index, hop in enumerate(path.hops):
        start = (hop.end - hop.self_seconds if cursor is None else cursor)
        end = start + hop.self_seconds
        spans.append(Span(
            name=hop.name, start=start, end=end, pid=pid, tid=tid,
            category="critical", clock=SIM_CLOCK,
            args={"hop": index, "source_track": f"{hop.pid}/{hop.tid}",
                  "source_category": hop.category,
                  "self_seconds": hop.self_seconds}))
        cursor = end
    return spans


# -- formatting ----------------------------------------------------------

def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def format_critical_path(path: CriticalPath,
                         top: Optional[int] = None) -> str:
    """Ordered hop table with per-hop self time and share."""
    lines = [f"critical path of '{path.root_name}' "
             f"({_ms(path.root_seconds).strip()} ms end-to-end, "
             f"{len(path.hops)} hop(s), "
             f"{_ms(path.gap_seconds).strip()} ms idle gaps)"]
    hops = list(path.hops)
    shown = hops if top is None else sorted(
        hops, key=lambda hop: -hop.self_seconds)[:top]
    order = {id(hop): i for i, hop in enumerate(hops)}
    shown.sort(key=lambda hop: order[id(hop)])
    width = max([len(hop.name) for hop in shown] or [8])
    total = path.total_seconds or 1.0
    for hop in shown:
        where = f"{hop.pid}/{hop.tid}"
        lines.append(
            f"  {_ms(hop.self_seconds)} ms {hop.self_seconds / total:6.1%}"
            f"  {hop.name:<{width}s}  [{hop.category}] {where}")
    if top is not None and len(hops) > len(shown):
        rest = sum(hop.self_seconds for hop in hops) - sum(
            hop.self_seconds for hop in shown)
        lines.append(f"  {_ms(rest)} ms {rest / total:6.1%}  "
                     f"({len(hops) - len(shown)} more hop(s))")
    by_category = path.by_category()
    summary = ", ".join(f"{category} {seconds / total:.1%}"
                        for category, seconds in by_category.items())
    lines.append(f"  path composition: {summary}")
    return "\n".join(lines)


def format_utilization(report: UtilizationReport,
                       top: Optional[int] = None) -> str:
    """Per-track busy/blocked/idle table plus phase verdicts."""
    lines = [f"utilization over {_ms(report.horizon_seconds).strip()} ms "
             f"(mean resource concurrency "
             f"{report.mean_concurrency:.2f})"]
    tracks = sorted(report.tracks, key=lambda t: -t.busy_seconds)
    if top is not None:
        tracks = tracks[:top]
    width = max([len(f"{t.pid}/{t.tid}") for t in tracks] or [8])
    lines.append(f"  {'track':<{width}s} {'class':>7s} {'busy':>7s} "
                 f"{'blocked':>9s} {'idle':>9s} {'spans':>6s}")
    for track in tracks:
        label = f"{track.pid}/{track.tid}"
        lines.append(
            f"  {label:<{width}s} {track.resource_class:>7s} "
            f"{track.busy_fraction:6.1%} "
            f"{_ms(track.blocked_seconds)} {_ms(track.idle_seconds)} "
            f"{track.spans:6d}")
    for phase in report.phases:
        check = ("" if phase.agrees is None
                 else ("  [matches scheduler]" if phase.agrees
                       else f"  [scheduler said {phase.recorded}]"))
        busiest = sorted(phase.utilization.items(),
                         key=lambda item: -item[1])[:3]
        detail = ", ".join(f"{name} {value:.1%}"
                           for name, value in busiest)
        lines.append(f"  phase {phase.pid}/{phase.name} "
                     f"[{_ms(phase.start).strip()}, "
                     f"{_ms(phase.end).strip()}] ms: "
                     f"bound by {phase.bound_by} ({detail}){check}")
    return "\n".join(lines)


def format_diff(diff: TraceDiff, top: int = 10) -> str:
    """Attribution table: which spans moved the end-to-end number."""
    lines = [f"trace diff of '{diff.root}': "
             f"{_ms(diff.baseline_seconds).strip()} ms -> "
             f"{_ms(diff.current_seconds).strip()} ms "
             f"({diff.delta_pct:+.1f}%)"]
    rows = [row for row in diff.top(top)
            if row.delta_seconds != 0.0 or row.status != "moved"]
    if not rows:
        lines.append("  no span group moved (zero-delta attribution)")
        return "\n".join(lines)
    width = max(len(row.name) for row in rows)
    denominator = diff.delta_seconds
    for row in rows:
        share = (f" {row.delta_seconds / denominator:6.1%} of delta"
                 if denominator != 0.0 else "")
        lines.append(
            f"  {row.delta_seconds * 1e3:+9.3f} ms  "
            f"{row.name:<{width}s}  [{row.category}] "
            f"x{row.baseline_count}->x{row.current_count} "
            f"{row.status}{share}")
    movers = ", ".join(
        f"{name} {delta * 1e3:+.3f} ms"
        for name, delta in sorted(diff.class_deltas.items(),
                                  key=lambda item: -abs(item[1]))[:4]
        if delta != 0.0)
    if movers:
        lines.append(f"  resource classes moved: {movers}")
    return "\n".join(lines)


def format_analysis(analysis: TraceAnalysis, top: int = 10) -> str:
    """The full ASCII report ``cli analyze`` prints."""
    parts = [format_critical_path(analysis.path, top=top),
             "",
             format_utilization(analysis.utilization, top=top)]
    if analysis.diff is not None:
        parts += ["", format_diff(analysis.diff, top=top)]
    return "\n".join(parts)
