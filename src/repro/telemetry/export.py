"""Exporters: Chrome-trace/Perfetto JSON, CSV/JSONL metric dumps.

The trace export follows the Trace Event Format's JSON-object flavour
(the one ``ui.perfetto.dev`` and ``chrome://tracing`` both load): a
``traceEvents`` list of complete ``"X"`` events with microsecond
timestamps, plus ``"M"`` metadata events naming each process (pid) and
thread (tid), plus ``"i"`` instant events.  Process labels map to
stable integer pids in first-appearance order, track labels likewise to
tids within their process.

Profile reports (:mod:`repro.telemetry.profiling`) export as an extra
``profile`` process: each report gets one track whose spans are the top
self-time functions laid end-to-end, so hotspots render next to the
sim-time spans they explain while staying schema-valid (disjoint spans
trivially satisfy the nesting check).

Metrics and monitor time-series export as Perfetto *counter tracks*
(``"C"`` events): registry counters and gauges become single-point
counters under a ``metrics`` process, and each
:class:`~repro.telemetry.timeseries.TimeSeries` becomes a stepped
counter under a ``monitor`` process — so capacity dips and queue depths
render as graphs directly above the spans that caused them.
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry
from .spans import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .profiling import ProfileReport
    from .timeseries import TimeSeriesStore

#: Microseconds per (simulated or wall) second in exported timestamps.
_MICROS = 1e6


def _json_safe(args: Dict[str, object]) -> Dict[str, object]:
    """Coerce span attributes to JSON-serializable primitives."""
    return {key: (value if isinstance(value, (str, int, float, bool))
                  or value is None else repr(value))
            for key, value in args.items()}


#: Hotspot functions exported per profile-report track.
_PROFILE_TRACK_TOP = 40


def to_chrome_trace(tracer: Tracer,
                    metadata: Optional[Dict[str, object]] = None,
                    profiles: Optional[Sequence["ProfileReport"]] = None,
                    metrics: Optional[MetricsRegistry] = None,
                    series: Optional["TimeSeriesStore"] = None,
                    extra_spans: Optional[Sequence[Span]] = None
                    ) -> Dict[str, object]:
    """Convert a tracer's spans and instants to a Chrome-trace dict.

    Args:
        tracer: the tracer to export (open spans are skipped).
        metadata: optional run description stored under ``otherData``.
        profiles: optional profile reports; each becomes a track of
            self-time hotspot spans under a ``profile`` process.
        metrics: optional registry; each counter and gauge becomes a
            single-point Perfetto counter track (``"C"`` event) under a
            ``metrics`` process.
        series: optional monitor time-series store; every sample of
            every series becomes a ``"C"`` event under a ``monitor``
            process, rendering as stepped graphs in Perfetto.
        extra_spans: additional synthesized spans exported after the
            tracer's own — used by :mod:`repro.telemetry.analyze` to
            highlight the critical path on its own track.  They follow
            the same pid/tid labelling and must respect the nesting
            rule on their tracks.

    Returns:
        A JSON-serializable dict with ``traceEvents`` ready for
        Perfetto / chrome://tracing.
    """
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[Dict[str, object]] = []

    def pid_of(label: str) -> int:
        if label not in pids:
            pids[label] = len(pids) + 1
            events.append({"ph": "M", "name": "process_name",
                           "pid": pids[label], "tid": 0,
                           "args": {"name": label}})
        return pids[label]

    def tid_of(pid_label: str, tid_label: str) -> int:
        key = (pid_label, tid_label)
        if key not in tids:
            pid = pid_of(pid_label)
            tid = sum(1 for (p, _t) in tids if p == pid_label) + 1
            tids[key] = tid
            events.append({"ph": "M", "name": "thread_name",
                           "pid": pid, "tid": tid,
                           "args": {"name": tid_label}})
        return tids[key]

    def span_event(span: Span) -> Dict[str, object]:
        return {
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": span.start * _MICROS,
            "dur": span.duration * _MICROS,
            "pid": pid_of(span.pid),
            "tid": tid_of(span.pid, span.tid),
            "args": _json_safe(dict(span.args, clock=span.clock)),
        }

    for span in tracer.finished_spans():
        events.append(span_event(span))
    for instant in tracer.instants:
        events.append({
            "ph": "i",
            "name": instant.name,
            "cat": instant.category,
            "ts": instant.ts * _MICROS,
            "pid": pid_of(instant.pid),
            "tid": tid_of(instant.pid, instant.tid),
            "s": "t",
            "args": _json_safe(dict(instant.args)),
        })
    for report in profiles or ():
        cursor = 0.0
        for entry in report.entries[:_PROFILE_TRACK_TOP]:
            duration = max(entry.self_seconds, 0.0)
            events.append({
                "ph": "X",
                "name": entry.function,
                "cat": "profile",
                "ts": cursor * _MICROS,
                "dur": duration * _MICROS,
                "pid": pid_of("profile"),
                "tid": tid_of("profile", report.label),
                "args": {"calls": entry.calls,
                         "self_seconds": entry.self_seconds,
                         "cumulative_seconds": entry.cumulative_seconds,
                         "clock": "self-time"},
            })
            cursor += duration
    if metrics is not None:
        for row in metrics.rows():
            if row.get("type") not in ("counter", "gauge"):
                continue
            events.append({
                "ph": "C",
                "name": str(row["name"]),
                "cat": "metrics",
                "ts": 0.0,
                "pid": pid_of("metrics"),
                "tid": 0,
                "args": {"value": float(row["value"])},
            })
    if series is not None:
        for one_series in series:
            for t, value in one_series.samples():
                events.append({
                    "ph": "C",
                    "name": one_series.name,
                    "cat": "monitor",
                    "ts": t * _MICROS,
                    "pid": pid_of("monitor"),
                    "tid": 0,
                    "args": {"value": value},
                })
    for span in extra_spans or ():
        if span.end is not None:
            events.append(span_event(span))
    return {"traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(metadata or {})}


def write_chrome_trace(tracer: Tracer, path: str,
                       metadata: Optional[Dict[str, object]] = None,
                       profiles: Optional[Sequence["ProfileReport"]] = None,
                       metrics: Optional[MetricsRegistry] = None,
                       series: Optional["TimeSeriesStore"] = None,
                       extra_spans: Optional[Sequence[Span]] = None
                       ) -> Dict[str, object]:
    """Write the Chrome-trace JSON to ``path``; returns the dict."""
    data = to_chrome_trace(tracer, metadata=metadata, profiles=profiles,
                           metrics=metrics, series=series,
                           extra_spans=extra_spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1)
    return data


#: Tolerance (µs) for containment checks on exported timestamps.
_NEST_EPSILON_US = 5e-4


def validate_chrome_trace(data: Dict[str, object]) -> Dict[str, int]:
    """Validate an exported trace against the Trace Event Format.

    Checks the JSON-object schema (required keys and types per event
    phase) and, per (pid, tid) track, that complete events are properly
    nested: any two spans on one track either nest or are disjoint.
    Counter events (``"C"``) must carry a non-empty ``args`` object of
    numeric values.

    Returns:
        Summary counts: spans, instants, counters, processes, tracks.

    Raises:
        ValueError: on any schema or nesting violation.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("trace must be a dict with a traceEvents list")
    trace_events = data["traceEvents"]
    if not isinstance(trace_events, list):
        raise ValueError("traceEvents must be a list")

    spans: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    counts = {"spans": 0, "instants": 0, "counters": 0, "processes": 0,
              "tracks": 0}
    for index, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "M", "C"):
            raise ValueError(f"event #{index}: unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"event #{index}: missing string 'name'")
        if phase == "M":
            if event["name"] == "process_name":
                counts["processes"] += 1
            elif event["name"] == "thread_name":
                counts["tracks"] += 1
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"event #{index}: '{key}' must be an int")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{index}: bad ts {ts!r}")
        if phase == "i":
            counts["instants"] += 1
            continue
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(
                    f"event #{index}: counter needs a non-empty args "
                    f"object")
            for key, value in args.items():
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise ValueError(
                        f"event #{index}: counter value '{key}' must be "
                        f"numeric, got {value!r}")
            counts["counters"] += 1
            continue
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            raise ValueError(f"event #{index}: bad dur {dur!r}")
        counts["spans"] += 1
        spans.setdefault((event["pid"], event["tid"]), []).append(
            (float(ts), float(ts) + float(dur), event["name"]))

    for (pid, tid), track in spans.items():
        # Sort outermost-first so a stack check finds any partial overlap.
        track.sort(key=lambda item: (item[0], -item[1]))
        stack: List[Tuple[float, float, str]] = []
        for start, end, name in track:
            while stack and stack[-1][1] <= start + _NEST_EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][1] + _NEST_EPSILON_US:
                raise ValueError(
                    f"track pid={pid} tid={tid}: span '{name}' "
                    f"[{start}, {end}] partially overlaps "
                    f"'{stack[-1][2]}' [{stack[-1][0]}, {stack[-1][1]}]")
            stack.append((start, end, name))
    return counts


# -- metrics dumps ------------------------------------------------------

#: Column order for the flat CSV metric dump.
_METRIC_FIELDS = ("name", "type", "value", "count", "sum", "min", "max",
                  "p50", "p95", "p99")


def write_metrics_csv(registry: MetricsRegistry, path: str) -> None:
    """Flat CSV dump: one row per metric, histogram percentiles inline."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_METRIC_FIELDS,
                                restval="")
        writer.writeheader()
        for row in registry.rows():
            writer.writerow(row)


def write_metrics_jsonl(registry: MetricsRegistry, path: str) -> None:
    """JSONL dump: one JSON object per metric per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for row in registry.rows():
            handle.write(json.dumps(row) + "\n")
