"""Counters, gauges, and fixed-bucket histograms with hierarchical merge.

The registry is deliberately Prometheus-shaped but dependency-free:
counters accumulate, gauges hold the latest value, histograms count
observations into fixed upper-bound buckets and answer percentile
queries by linear interpolation within a bucket.  Registries *merge*:
a per-instance registry folds into a system-level one both under an
``instanceN/`` prefix (preserving the breakdown) and unprefixed
(aggregating), which is how multi-instance and campaign reports roll up.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Default latency buckets (seconds): 100 µs to 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically accumulating value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    Args:
        name: metric name.
        bounds: strictly increasing inclusive upper bucket edges; an
            implicit overflow bucket catches everything above the last
            edge.  An observation exactly equal to an edge lands in
            that edge's bucket.
    """

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0 <= q <= 100).

        Interpolates linearly inside the containing bucket; the first
        bucket's lower edge is the observed minimum and the overflow
        bucket's upper edge is the observed maximum, so the estimate is
        always inside [min, max] and is *exact* when every observation
        in the containing bucket sits on its upper edge.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        assert self.min is not None and self.max is not None
        rank = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = (self.min if index == 0
                         else max(self.bounds[index - 1], self.min))
                upper = (self.max if index == len(self.bounds)
                         else min(self.bounds[index], self.max))
                upper = max(upper, lower)
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max  # pragma: no cover - rank <= count always hits

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name}: bucket mismatch "
                f"{self.bounds} vs {other.bounds}")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = (other.min if self.min is None
                        else min(self.min, other.min))
        if other.max is not None:
            self.max = (other.max if self.max is None
                        else max(self.max, other.max))


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named, ordered collection of metrics with get-or-create access.

    Merging is the hierarchy mechanism: fold a child registry in twice,
    once under a prefix (``instance2/sched/dispatches``) to preserve the
    per-shard view and once unprefixed to aggregate.  Counters and
    histograms add; gauges take the child's value (last write wins).
    """

    def __init__(self, name: str = "root") -> None:
        self.name = name
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric '{name}' already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return list(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # -- hierarchy -------------------------------------------------------

    def merge(self, child: "MetricsRegistry",
              prefix: Optional[str] = None) -> None:
        """Fold every metric of ``child`` into this registry.

        Args:
            child: the registry to absorb (left untouched).
            prefix: when given, metrics land under ``prefix/name``;
                when None they merge into the same names (aggregate).
        """
        for name, metric in child._metrics.items():
            target = f"{prefix}/{name}" if prefix else name
            if isinstance(metric, Counter):
                self.counter(target).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(target).set(metric.value)
            else:
                mine = self.histogram(target, metric.bounds)
                mine.merge(metric)

    # -- reporting -------------------------------------------------------

    def rows(self) -> List[Dict[str, object]]:
        """One flat dict per metric, histograms with p50/p95/p99."""
        out: List[Dict[str, object]] = []
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out.append({"name": name, "type": "counter",
                            "value": metric.value})
            elif isinstance(metric, Gauge):
                out.append({"name": name, "type": "gauge",
                            "value": metric.value})
            else:
                row: Dict[str, object] = {
                    "name": name, "type": "histogram",
                    "count": metric.count, "sum": metric.total,
                    "min": metric.min if metric.min is not None else "",
                    "max": metric.max if metric.max is not None else ""}
                for q, label in ((50, "p50"), (95, "p95"), (99, "p99")):
                    row[label] = (metric.percentile(q)
                                  if metric.count else "")
                out.append(row)
        return out

    def summary(self) -> str:
        """Human-readable one-metric-per-line report."""
        lines = []
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                if metric.count:
                    lines.append(
                        f"{name}: count={metric.count} "
                        f"mean={metric.mean:.3g} "
                        f"p50={metric.percentile(50):.3g} "
                        f"p95={metric.percentile(95):.3g} "
                        f"p99={metric.percentile(99):.3g}")
                else:
                    lines.append(f"{name}: count=0")
            else:
                lines.append(f"{name}: {metric.value:g}")
        return "\n".join(lines)
