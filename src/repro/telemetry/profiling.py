"""Profiler-to-span hotspot attribution.

:func:`profile` wraps a block of real work in ``cProfile`` and reduces
the raw stats to a :class:`ProfileReport`: per-function *self* and
*cumulative* time, sorted hottest-first, plus attribution onto the
active :class:`~repro.telemetry.spans.Tracer` span stack.  Attribution
works by hooking the tracer's wall-clock ``span()`` context manager for
the duration of the profile: at every directly-profiled span boundary
the profiler's counters are snapshotted, so each span gets the delta of
function self-time that elapsed while it was open — the "which functions
made this span slow" table the flame view cannot answer on its own.

Profiling is measurement only: the wrapped code's results are
bit-identical with profiling enabled or disabled (the same guarantee
``tracer=None`` gives for spans).  Export into the Chrome-trace /
Perfetto JSON lives in :mod:`repro.telemetry.export` (``profiles=``).
"""

from __future__ import annotations

import cProfile
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .spans import Tracer

#: Functions with less self+cumulative time than this are dropped.
_MIN_SECONDS = 0.0

#: Raw-stat triple: (call count, self seconds, cumulative seconds).
_Stat = Tuple[int, float, float]
_Key = Tuple[str, int, str]


@dataclass(frozen=True)
class HotspotEntry:
    """One profiled function's aggregated cost inside the window."""

    function: str
    filename: str
    lineno: int
    calls: int
    self_seconds: float
    cumulative_seconds: float


@dataclass
class ProfileReport:
    """Reduced cProfile output for one profiled window.

    Attributes:
        label: caller-chosen name (scenario name, phase, ...).
        wall_seconds: wall-clock length of the window.
        total_self_seconds: sum of self time over every entry; the
            denominator for :meth:`coverage`.
        entries: all profiled functions, hottest self-time first.
        span_stack: names of tracer spans already open when the window
            started (outermost first).
        span_hotspots: per-span top functions for every wall-clock span
            opened (and closed) inside the window.
    """

    label: str = "profile"
    wall_seconds: float = 0.0
    total_self_seconds: float = 0.0
    entries: List[HotspotEntry] = field(default_factory=list)
    span_stack: Tuple[str, ...] = ()
    span_hotspots: Dict[str, List[HotspotEntry]] = field(
        default_factory=dict)

    def top(self, n: int) -> List[HotspotEntry]:
        """The ``n`` hottest functions by self time."""
        if n <= 0:
            raise ValueError(f"top-N must be positive, got {n}")
        return self.entries[:n]

    def coverage(self, n: int) -> float:
        """Fraction of total self time the top ``n`` functions explain."""
        if self.total_self_seconds <= 0.0:
            return 1.0
        return (sum(entry.self_seconds for entry in self.top(n))
                / self.total_self_seconds)


# -- raw-stat plumbing ----------------------------------------------------

def _code_key(code) -> _Key:
    """Stable (filename, lineno, name) key for a profiled code object."""
    if isinstance(code, str):  # builtins: "<built-in method ...>"
        return ("~", 0, code)
    return (code.co_filename, code.co_firstlineno, code.co_name)


def _function_label(filename: str, lineno: int, name: str) -> str:
    if filename == "~":
        return name if name.startswith("<") else f"<{name}>"
    parts = filename.replace(os.sep, "/").split("/")
    short = "/".join(parts[-2:])
    return f"{short}:{lineno}:{name}"


def _snapshot_raw(profiler: cProfile.Profile) -> Dict[_Key, _Stat]:
    """Current per-function counters; profiler must be *disabled*."""
    stats: Dict[_Key, _Stat] = {}
    for entry in profiler.getstats():
        key = _code_key(entry.code)
        count, self_s, cum_s = stats.get(key, (0, 0.0, 0.0))
        stats[key] = (count + entry.callcount,
                      self_s + entry.inlinetime,
                      cum_s + entry.totaltime)
    return stats


def _snapshot_live(profiler: cProfile.Profile) -> Dict[_Key, _Stat]:
    """Snapshot counters mid-run (briefly pausing the profiler)."""
    profiler.disable()
    try:
        return _snapshot_raw(profiler)
    finally:
        profiler.enable()


def _delta(before: Dict[_Key, _Stat],
           after: Dict[_Key, _Stat]) -> Dict[_Key, _Stat]:
    out: Dict[_Key, _Stat] = {}
    for key, (count, self_s, cum_s) in after.items():
        base = before.get(key, (0, 0.0, 0.0))
        diff = (count - base[0], self_s - base[1], cum_s - base[2])
        if diff[0] > 0 or diff[1] > 0 or diff[2] > 0:
            out[key] = diff
    return out


_OWN_FILE = os.path.abspath(__file__)


def _is_internal(key: _Key) -> bool:
    """Profiling-harness frames excluded from reports."""
    filename, _lineno, name = key
    if filename != "~":
        return os.path.abspath(filename) == _OWN_FILE
    return "_lsprof.Profiler" in name


def _entries_from(stats: Dict[_Key, _Stat]) -> List[HotspotEntry]:
    entries = [
        HotspotEntry(function=_function_label(*key), filename=key[0],
                     lineno=key[1], calls=count, self_seconds=self_s,
                     cumulative_seconds=cum_s)
        for key, (count, self_s, cum_s) in stats.items()
        if not _is_internal(key)
        and (self_s > _MIN_SECONDS or cum_s > _MIN_SECONDS)]
    entries.sort(key=lambda e: (-e.self_seconds, -e.cumulative_seconds,
                                e.function))
    return entries


# -- the context manager --------------------------------------------------

@contextmanager
def profile(tracer: Optional[Tracer] = None, *, label: str = "profile",
            span_top: int = 10) -> Iterator[ProfileReport]:
    """Profile a block of real work; attribute hotspots to tracer spans.

    Args:
        tracer: when given, every wall-clock ``tracer.span(...)`` opened
            inside the window gets a per-span hotspot list in
            ``report.span_hotspots`` (keyed by span name), and the span
            stack active at entry is recorded for context.  ``None``
            profiles without attribution.
        label: report name (used as the Perfetto track label).
        span_top: hotspot entries kept per attributed span.

    Yields:
        A :class:`ProfileReport`, fully populated once the ``with``
        block exits.
    """
    profiler = cProfile.Profile()
    report = ProfileReport(label=label)
    hooked = tracer is not None
    if hooked:
        report.span_stack = tuple(s.name for s in tracer._open)
        original_span = tracer.span

        @contextmanager
        def attributing_span(name: str, **kwargs):
            before = _snapshot_live(profiler)
            with original_span(name, **kwargs) as span:
                try:
                    yield span
                finally:
                    after = _snapshot_live(profiler)
                    report.span_hotspots[span.name] = _entries_from(
                        _delta(before, after))[:span_top]

        tracer.span = attributing_span  # instance attr shadows the method
    start = time.perf_counter()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        if hooked:
            del tracer.span  # un-shadow the class method
        report.wall_seconds = time.perf_counter() - start
        report.entries = _entries_from(_snapshot_raw(profiler))
        report.total_self_seconds = sum(entry.self_seconds
                                        for entry in report.entries)


# -- reporting ------------------------------------------------------------

def format_hotspots(report: ProfileReport, top: int = 15) -> str:
    """Fixed-width hotspot table: overall top-N, then per-span top-3."""
    lines = [f"hotspots[{report.label}]: wall {report.wall_seconds:.4f}s, "
             f"profiled self {report.total_self_seconds:.4f}s"]
    if report.span_stack:
        lines.append("  under spans: " + " > ".join(report.span_stack))
    if not report.entries:
        lines.append("  (no samples)")
        return "\n".join(lines)
    lines.append(f"  {'self(s)':>9s} {'cum(s)':>9s} {'calls':>8s}  function")
    shown = report.top(top)
    for entry in shown:
        lines.append(f"  {entry.self_seconds:9.4f} "
                     f"{entry.cumulative_seconds:9.4f} "
                     f"{entry.calls:8d}  {entry.function}")
    lines.append(f"  top {len(shown)} of {len(report.entries)} functions "
                 f"cover {report.coverage(top) * 100:.1f}% of self time")
    for span_name, entries in report.span_hotspots.items():
        head = ", ".join(f"{e.function} ({e.self_seconds:.4f}s)"
                         for e in entries[:3]) or "(no samples)"
        lines.append(f"  span '{span_name}': {head}")
    return "\n".join(lines)
