"""ASCII timeline rendering of span data.

One text row per track, a glyph per span, '.' for idle — the terminal
cousin of the Perfetto view, shared by ``repro.sched.visualize`` and
the ``trace`` CLI subcommand.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .spans import Span, Tracer

#: An interval to draw: (start seconds, end seconds, glyph character).
Interval = Tuple[float, float, str]


def render_tracks(tracks: Dict[str, Sequence[Interval]],
                  makespan: Optional[float] = None,
                  width: int = 100,
                  max_rows: Optional[int] = 20) -> str:
    """Render labelled interval tracks as a fixed-width Gantt chart.

    Args:
        tracks: mapping of track label to its busy intervals; rows are
            drawn in the mapping's iteration order.
        makespan: total horizontal extent in seconds (defaults to the
            latest interval end).
        width: characters across the full makespan.
        max_rows: cap on rendered rows (None for all).

    Returns:
        The chart: one ``label |cells|`` row per track and a time axis.
    """
    names = list(tracks)
    if max_rows is not None:
        names = names[:max_rows]
    if makespan is None:
        makespan = max((end for name in names
                        for _start, end, _g in tracks[name]), default=0.0)
    lines: List[str] = []
    label_width = max((len(name) for name in names), default=8)
    for name in names:
        cells = ["."] * width
        for start, end, glyph in tracks[name]:
            if makespan <= 0:
                continue
            first = int(start / makespan * (width - 1))
            last = max(first, int(end / makespan * (width - 1)))
            for position in range(first, min(last, width - 1) + 1):
                cells[position] = glyph
        lines.append(f"{name:>{label_width}s} |{''.join(cells)}|")
    lines.append(f"{'':>{label_width}s}  0{'':{max(width - 10, 0)}s}"
                 f"{makespan * 1e3:8.2f}ms")
    return "\n".join(lines)


def default_glyph(span: Span) -> str:
    """First letter of the span's category (fallback '#')."""
    return span.category[:1] or "#"


def render_tracer(tracer: Tracer, width: int = 100,
                  max_rows: Optional[int] = 20,
                  pid: Optional[str] = None,
                  glyph_of: Callable[[Span], str] = default_glyph) -> str:
    """Render a tracer's sim-time spans, one row per (pid, tid) track.

    Only leaf-level detail is legible in ASCII, so spans are drawn in
    recording order and later (inner) spans overwrite their parents'
    glyphs in-place.
    """
    tracks: Dict[str, List[Interval]] = {}
    for span in tracer.finished_spans():
        if pid is not None and span.pid != pid:
            continue
        label = (span.tid if pid is not None or span.pid == "sim"
                 else f"{span.pid}/{span.tid}")
        tracks.setdefault(label, []).append(
            (span.start, span.end or span.start, glyph_of(span)))
    ordered = {name: tracks[name] for name in sorted(tracks)}
    return render_tracks(ordered, width=width, max_rows=max_rows)
