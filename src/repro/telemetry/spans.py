"""Span tracer for the simulated stack.

A :class:`Tracer` collects *spans* — named intervals on a (process,
track) pair — plus point-in-time *instant* events.  Two clock domains
coexist:

* **sim-time** spans are recorded retroactively with explicit start/end
  timestamps in simulated seconds (:meth:`Tracer.add_span`), which is
  how the discrete-event schedulers report their placements;
* **wall-clock** spans wrap real work with the :meth:`Tracer.span`
  context manager, timed against the tracer's own monotonic epoch —
  used by the functional datapath.

Instrumented code takes an *optional* ``tracer=`` argument and guards
every call with ``if tracer is not None``, so a disabled tracer costs
one pointer comparison and every simulation result stays bit-identical.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Clock-domain labels stored on every span.
SIM_CLOCK = "sim"
WALL_CLOCK = "wall"


@dataclass
class Span:
    """One named interval on a (pid, tid) track.

    Timestamps are seconds (simulated or wall, per ``clock``); ``end``
    is ``None`` while a wall-clock span is still open.
    """

    name: str
    start: float
    end: Optional[float]
    pid: str = "sim"
    tid: str = "main"
    category: str = "span"
    clock: str = SIM_CLOCK
    args: Dict[str, object] = field(default_factory=dict)
    span_id: int = 0
    parent_id: Optional[int] = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class Instant:
    """A point event (fault injected, retry fired, failure detected)."""

    name: str
    ts: float
    pid: str = "sim"
    tid: str = "main"
    category: str = "event"
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Collects spans and instant events from an instrumented run.

    The tracer itself is clock-agnostic: sim-time spans carry whatever
    timestamps the simulator computed, wall-clock spans are measured
    from the tracer's construction instant.  Export to Chrome-trace /
    Perfetto JSON lives in :mod:`repro.telemetry.export`.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._next_id = 1
        self._open: List[Span] = []

    # -- clock ----------------------------------------------------------

    def now(self) -> float:
        """Wall-clock seconds since this tracer was created."""
        return time.perf_counter() - self._epoch

    # -- sim-time spans --------------------------------------------------

    def add_span(self, name: str, start: float, end: float, *,
                 pid: str = "sim", tid: str = "main",
                 category: str = "span", clock: str = SIM_CLOCK,
                 parent: Optional[Span] = None, **args: object) -> Span:
        """Record a finished span with explicit timestamps.

        Args:
            name: span label (task, segment, or batch name).
            start: start time in seconds.
            end: end time in seconds; must be >= ``start``.
            pid: process-level grouping (e.g. ``instance0``).
            tid: track within the process (a resource timeline name).
            category: coarse class used for coloring/filtering.
            clock: :data:`SIM_CLOCK` or :data:`WALL_CLOCK`.
            parent: optional enclosing span.
            **args: free-form attributes attached to the span.
        """
        if math.isnan(start) or math.isnan(end):
            # NaN compares false against everything, so it would sail
            # through the ordering check below and poison every export
            # and critical-path chain downstream.
            raise ValueError(f"span '{name}' has NaN timestamps "
                             f"({start}, {end})")
        if end < start:
            raise ValueError(f"span '{name}' ends ({end}) before it "
                             f"starts ({start})")
        span = Span(name=name, start=start, end=end, pid=pid, tid=tid,
                    category=category, clock=clock, args=dict(args),
                    span_id=self._next_id,
                    parent_id=parent.span_id if parent else None)
        self._next_id += 1
        self.spans.append(span)
        return span

    def instant(self, name: str, ts: float, *, pid: str = "sim",
                tid: str = "main", category: str = "event",
                **args: object) -> Instant:
        """Record a point event at ``ts`` seconds."""
        if math.isnan(ts):
            raise ValueError(f"instant '{name}' has a NaN timestamp")
        event = Instant(name=name, ts=ts, pid=pid, tid=tid,
                        category=category, args=dict(args))
        self.instants.append(event)
        return event

    # -- wall-clock spans ------------------------------------------------

    @contextmanager
    def span(self, name: str, *, pid: str = "functional",
             tid: str = "main", category: str = "span",
             **args: object) -> Iterator[Span]:
        """Open a wall-clock span around a block of real work.

        Nested ``with`` blocks are linked through ``parent_id``; the
        yielded span's ``args`` may be updated inside the block (e.g.
        with tile counts known only at the end).
        """
        span = Span(name=name, start=self.now(), end=None, pid=pid,
                    tid=tid, category=category, clock=WALL_CLOCK,
                    args=dict(args), span_id=self._next_id,
                    parent_id=(self._open[-1].span_id
                               if self._open else None))
        self._next_id += 1
        self.spans.append(span)
        self._open.append(span)
        try:
            yield span
        finally:
            self._open.pop()
            span.end = self.now()

    # -- inspection ------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """All closed spans, in deterministic analytics order.

        Stable-sorted by ``(start, pid, tid, name)`` so exports, trace
        diffs, and critical-path extraction are reproducible run to run
        regardless of the (scheduler-dependent) recording order; ties
        keep recording order.
        """
        return sorted(
            (span for span in self.spans if span.end is not None),
            key=lambda span: (span.start, span.pid, span.tid, span.name))

    def spans_on(self, pid: Optional[str] = None,
                 tid: Optional[str] = None,
                 category: Optional[str] = None) -> List[Span]:
        """Closed spans filtered by process / track / category."""
        return [span for span in self.finished_spans()
                if (pid is None or span.pid == pid)
                and (tid is None or span.tid == tid)
                and (category is None or span.category == category)]

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct (pid, tid) pairs in first-appearance order."""
        seen: Dict[Tuple[str, str], None] = {}
        for span in self.spans:
            seen.setdefault((span.pid, span.tid), None)
        for event in self.instants:
            seen.setdefault((event.pid, event.tid), None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.spans)
