"""Sim-time time-series: ring-buffered samples + sliding-window stats.

The metrics registry (:mod:`repro.telemetry.metrics`) answers "what
happened over the whole run"; live monitoring needs "what is happening
*now*" — a value sampled against the simulation clock, queried over
sliding windows.  A :class:`TimeSeries` is a bounded ring buffer of
``(t, value)`` samples appended in non-decreasing time order (the
discrete-event simulators only move forward), so window queries are two
bisections and the store stays O(capacity) however long a campaign runs.

Window semantics are half-open ``(start, end]``: a sample exactly on the
window's *end* belongs to it, a sample exactly on its *start* does not —
so back-to-back windows of width ``w`` partition the timeline with no
sample counted twice.  Aggregation comes in two flavours:

* **value stats** (:meth:`TimeSeries.window_stats`) — count, mean,
  min/max, and interpolated p50/p95/p99 of the sampled values, computed
  through the existing fixed-bucket
  :class:`~repro.telemetry.metrics.Histogram`;
* **cumulative deltas** (:meth:`TimeSeries.delta`, :meth:`TimeSeries.rate`)
  — for series that sample a monotonically accumulating counter
  (completed inferences, retries), the windowed increase and its
  per-second rate, read from the step function the samples trace out.

Everything is deterministic: no wall clock, no RNG, plain floats.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram

#: Default ring-buffer capacity per series.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class WindowStats:
    """Aggregate of the samples inside one ``(start, end]`` window.

    ``mean``/``minimum``/``maximum`` and the percentiles are ``None``
    when the window holds no samples (an empty window is a fact worth
    distinguishing from a zero).
    """

    start: float
    end: float
    count: int
    total: float
    mean: Optional[float]
    minimum: Optional[float]
    maximum: Optional[float]
    p50: Optional[float]
    p95: Optional[float]
    p99: Optional[float]


class TimeSeries:
    """A bounded, time-ordered sample buffer for one monitored signal.

    Args:
        name: series name (slash-hierarchical, like metric names).
        capacity: maximum retained samples; older samples fall off the
            front once exceeded (the ring-buffer bound).
        bounds: histogram bucket edges used for windowed percentiles.
    """

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.bounds = tuple(float(b) for b in bounds)
        self._times: List[float] = []
        self._values: List[float] = []
        #: Samples evicted by the capacity bound (visibility into loss).
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._times)

    def append(self, t: float, value: float) -> None:
        """Record ``value`` at sim-time ``t`` (non-decreasing)."""
        t = float(t)
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"series '{self.name}': sample at t={t} is earlier than "
                f"the last sample (t={self._times[-1]})")
        self._times.append(t)
        self._values.append(float(value))
        excess = len(self._times) - self.capacity
        if excess > 0:
            del self._times[:excess]
            del self._values[:excess]
            self.dropped += excess

    # -- point queries ---------------------------------------------------

    @property
    def last(self) -> Optional[float]:
        """Most recent sampled value (None when empty)."""
        return self._values[-1] if self._values else None

    @property
    def last_time(self) -> Optional[float]:
        return self._times[-1] if self._times else None

    def value_at(self, t: float, default: float = 0.0) -> float:
        """The step-function value at ``t``: the latest sample with
        sample-time <= ``t``, or ``default`` before the first sample."""
        index = bisect.bisect_right(self._times, t)
        return self._values[index - 1] if index else default

    def samples(self) -> Iterator[Tuple[float, float]]:
        return zip(self._times, self._values)

    # -- windows ---------------------------------------------------------

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with ``start < t <= end`` (half-open window)."""
        if end < start:
            raise ValueError(f"window end ({end}) before start ({start})")
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def window_stats(self, start: float, end: float) -> WindowStats:
        """Value statistics over ``(start, end]``.

        Percentiles go through the fixed-bucket histogram, so they share
        its interpolation semantics (exact min/max, linear inside the
        containing bucket); a single-sample window returns that sample
        for every statistic.
        """
        samples = self.window(start, end)
        if not samples:
            return WindowStats(start=start, end=end, count=0, total=0.0,
                               mean=None, minimum=None, maximum=None,
                               p50=None, p95=None, p99=None)
        histogram = Histogram(self.name, self.bounds)
        for _t, value in samples:
            histogram.observe(value)
        return WindowStats(
            start=start, end=end, count=histogram.count,
            total=histogram.total, mean=histogram.mean,
            minimum=histogram.min, maximum=histogram.max,
            p50=histogram.percentile(50), p95=histogram.percentile(95),
            p99=histogram.percentile(99))

    def delta(self, start: float, end: float) -> float:
        """Windowed increase of a cumulative series.

        Reads the step function at both window edges, so a window that
        starts before the first sample measures growth from the implicit
        zero — which is exactly what "window longer than the run" should
        mean for a counter that started at nothing.
        """
        if end < start:
            raise ValueError(f"window end ({end}) before start ({start})")
        return self.value_at(end) - self.value_at(start)

    def rate(self, start: float, end: float) -> float:
        """Per-second increase of a cumulative series over the window."""
        if end <= start:
            return 0.0
        return self.delta(start, end) / (end - start)


class TimeSeriesStore:
    """Named, ordered collection of time series with get-or-create.

    The sim-time cousin of
    :class:`~repro.telemetry.metrics.MetricsRegistry`: instrumented code
    calls :meth:`record` with a hierarchical name and the store keeps one
    ring buffer per signal, in first-appearance order (deterministic
    iteration for exports and dashboards).
    """

    def __init__(self, name: str = "store",
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.capacity = capacity
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str,
               bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
               ) -> TimeSeries:
        existing = self._series.get(name)
        if existing is None:
            existing = TimeSeries(name, capacity=self.capacity,
                                  bounds=bounds)
            self._series[name] = existing
        return existing

    def record(self, name: str, t: float, value: float) -> None:
        self.series(name).append(t, value)

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series.values())
