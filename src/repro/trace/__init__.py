"""ATen-style op taxonomy, recorder, and symbolic tracer."""

from .ops import (
    BF16_BYTES,
    FIGURE3_CATEGORIES,
    FP32_BYTES,
    Op,
    OpKind,
    bmm_op,
    elementwise_op,
    matmul_op,
)
from .recorder import TraceRecorder, maybe_record
from .serialize import (
    graph_from_json,
    graph_to_json,
    load_graph,
    op_from_dict,
    op_to_dict,
    save_graph,
    trace_from_json,
    trace_to_json,
)
from .tracer import (
    TraceSpec,
    count_by_kind,
    flops_by_category,
    matmul_shapes,
    trace_embeddings,
    trace_layer,
    trace_model,
)

__all__ = [
    "BF16_BYTES",
    "FIGURE3_CATEGORIES",
    "FP32_BYTES",
    "Op",
    "OpKind",
    "TraceRecorder",
    "TraceSpec",
    "bmm_op",
    "count_by_kind",
    "elementwise_op",
    "flops_by_category",
    "matmul_op",
    "matmul_shapes",
    "maybe_record",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "op_from_dict",
    "op_to_dict",
    "save_graph",
    "trace_from_json",
    "trace_to_json",
    "trace_embeddings",
    "trace_layer",
    "trace_model",
]
