"""ATen-style operator taxonomy.

The paper instruments its PyTorch model "to produce raw sequences of its
backend tensor and mathematical operation library calls (ATen calls) via the
PyTorch JIT compiler" (Section 4.1, Figure 15).  This module defines the
operator records our tracer emits: the same operation classes Figure 3 uses
for its runtime breakdown (Matrix Multiply, Batched Mat Mul, Softmax, GELU,
Matrix Add, Matrix Div, Other) plus the finer-grained kinds the dataflow
compiler consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Bytes per element for the bfloat16 streaming datapath.
BF16_BYTES = 2

#: Bytes per element for float32 (host-side reference math).
FP32_BYTES = 4


class OpKind(enum.Enum):
    """Operator classes, matching the paper's Figure 3 breakdown."""

    MATMUL = "matmul"            # unbatched GEMM (aten::mm / aten::addmm)
    BMM = "bmm"                  # batched GEMM (aten::bmm)
    SOFTMAX = "softmax"          # aten::softmax
    GELU = "gelu"                # aten::gelu
    ADD = "add"                  # elementwise aten::add (Matrix Add)
    DIV = "div"                  # elementwise aten::div (Matrix Div)
    MUL = "mul"                  # elementwise aten::mul
    EXP = "exp"                  # aten::exp (softmax numerator)
    SUM = "sum"                  # reduction (softmax denominator)
    LAYERNORM = "layernorm"      # aten::layer_norm
    EMBEDDING = "embedding"      # aten::embedding gather
    TRANSPOSE = "transpose"      # aten::transpose / permute
    TANH = "tanh"                # aten::tanh (inside exact GELU expansions)
    OTHER = "other"              # everything else


#: Kinds Figure 3 groups under each plotted category.
FIGURE3_CATEGORIES: Dict[str, Tuple[OpKind, ...]] = {
    "Matrix Multiply": (OpKind.MATMUL,),
    "Batched Mat Mul": (OpKind.BMM,),
    "Softmax": (OpKind.SOFTMAX, OpKind.EXP, OpKind.SUM),
    "GELU": (OpKind.GELU, OpKind.TANH),
    "Matrix Add": (OpKind.ADD,),
    "Matrix Div": (OpKind.DIV, OpKind.MUL),
    "Other": (OpKind.LAYERNORM, OpKind.EMBEDDING, OpKind.TRANSPOSE,
              OpKind.OTHER),
}


@dataclass(frozen=True)
class Op:
    """One traced operator call.

    Attributes:
        kind: operator class.
        shape: kind-specific shape tuple.  For MATMUL: ``(m, k, n)``.  For
            BMM: ``(batch, m, k, n)``.  For elementwise/reductions: the
            operand tensor shape.
        name: human-readable provenance such as ``"layer3.attention.query"``.
        layer: encoder layer index, or -1 for embedding/pooler ops.
        batch: inference batch dimension this op belongs to.
        metadata: free-form annotations (e.g. scalar constants).
    """

    kind: OpKind
    shape: Tuple[int, ...]
    name: str = ""
    layer: int = -1
    batch: int = 1
    metadata: Tuple[Tuple[str, float], ...] = field(default=())

    def __post_init__(self) -> None:
        # Plain loop: this runs for every traced op on the cold path, and
        # a generator + any() costs ~2x the loop for the tiny shapes here.
        for dim in self.shape:
            if dim <= 0:
                raise ValueError(
                    f"op {self.name}: non-positive dim in {self.shape}")
        kind = self.kind
        if kind is OpKind.MATMUL:
            if len(self.shape) != 3:
                raise ValueError("MATMUL shape must be (m, k, n)")
        elif kind is OpKind.BMM:
            if len(self.shape) != 4:
                raise ValueError("BMM shape must be (batch, m, k, n)")

    @property
    def elements(self) -> int:
        """Number of elements in the op's *output* tensor."""
        if self.kind is OpKind.MATMUL:
            m, _, n = self.shape
            return m * n
        if self.kind is OpKind.BMM:
            b, m, _, n = self.shape
            return b * m * n
        if self.kind is OpKind.SUM:
            # Reduction over the last axis: output drops that axis.
            product = 1
            for dim in self.shape[:-1]:
                product *= dim
            return product
        product = 1
        for dim in self.shape:
            product *= dim
        return product

    @property
    def flops(self) -> int:
        """Floating-point operations (multiply-accumulate counts as 2)."""
        if self.kind is OpKind.MATMUL:
            m, k, n = self.shape
            return 2 * m * k * n
        if self.kind is OpKind.BMM:
            b, m, k, n = self.shape
            return 2 * b * m * k * n
        input_elements = 1
        for dim in self.shape:
            input_elements *= dim
        if self.kind is OpKind.SOFTMAX:
            return 5 * input_elements          # exp + sum + div, fused
        if self.kind in (OpKind.GELU, OpKind.TANH):
            return 8 * input_elements          # polynomial + tanh
        if self.kind is OpKind.LAYERNORM:
            return 8 * input_elements          # mean, var, scale, shift
        if self.kind is OpKind.EXP:
            return 4 * input_elements
        if self.kind in (OpKind.EMBEDDING, OpKind.TRANSPOSE):
            return 0
        return input_elements                  # ADD / DIV / MUL / SUM / OTHER

    def bytes_moved(self, element_bytes: int = BF16_BYTES) -> int:
        """Approximate DRAM/stream traffic: inputs read + output written."""
        if self.kind is OpKind.MATMUL:
            m, k, n = self.shape
            return element_bytes * (m * k + k * n + m * n)
        if self.kind is OpKind.BMM:
            b, m, k, n = self.shape
            return element_bytes * b * (m * k + k * n + m * n)
        input_elements = 1
        for dim in self.shape:
            input_elements *= dim
        if self.kind in (OpKind.ADD, OpKind.MUL, OpKind.DIV):
            # Two operands in, one out (elementwise binary).
            return element_bytes * 3 * input_elements
        return element_bytes * (input_elements + self.elements)

    @property
    def figure3_category(self) -> str:
        """The Figure 3 category this op falls under."""
        for category, kinds in FIGURE3_CATEGORIES.items():
            if self.kind in kinds:
                return category
        return "Other"

    def scaled(self, batch: int) -> "Op":
        """Return a copy annotated with a different inference batch size."""
        return Op(kind=self.kind, shape=self.shape, name=self.name,
                  layer=self.layer, batch=batch, metadata=self.metadata)


def matmul_op(m: int, k: int, n: int, name: str = "",
              layer: int = -1) -> Op:
    """Convenience constructor for an unbatched GEMM op."""
    return Op(kind=OpKind.MATMUL, shape=(m, k, n), name=name, layer=layer)


def bmm_op(batch: int, m: int, k: int, n: int, name: str = "",
           layer: int = -1) -> Op:
    """Convenience constructor for a batched GEMM op."""
    return Op(kind=OpKind.BMM, shape=(batch, m, k, n), name=name, layer=layer)


def elementwise_op(kind: OpKind, shape: Tuple[int, ...], name: str = "",
                   layer: int = -1,
                   metadata: Optional[Dict[str, float]] = None) -> Op:
    """Convenience constructor for elementwise / reduction / special ops."""
    meta = tuple(sorted(metadata.items())) if metadata else ()
    return Op(kind=kind, shape=shape, name=name, layer=layer, metadata=meta)
