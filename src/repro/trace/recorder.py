"""Trace recorder: collects the op stream a model forward pass emits.

Plays the role of the PyTorch JIT instrumentation in Figure 15: the model's
layers call :meth:`TraceRecorder.record` as they execute, producing the raw
ATen-call sequence that the dataflow compiler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .ops import Op, OpKind


@dataclass
class TraceRecorder:
    """Accumulates :class:`Op` records in execution order."""

    ops: List[Op] = field(default_factory=list)
    enabled: bool = True

    def record(self, op: Op) -> None:
        """Append one op (no-op while disabled)."""
        if self.enabled:
            self.ops.append(op)

    def clear(self) -> None:
        self.ops.clear()

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def by_kind(self) -> Dict[OpKind, List[Op]]:
        """Group recorded ops by kind."""
        grouped: Dict[OpKind, List[Op]] = {}
        for op in self.ops:
            grouped.setdefault(op.kind, []).append(op)
        return grouped

    def by_layer(self) -> Dict[int, List[Op]]:
        """Group recorded ops by encoder layer index."""
        grouped: Dict[int, List[Op]] = {}
        for op in self.ops:
            grouped.setdefault(op.layer, []).append(op)
        return grouped

    def total_flops(self) -> int:
        return sum(op.flops for op in self.ops)

    def kind_signature(self) -> Tuple[Tuple[OpKind, Tuple[int, ...]], ...]:
        """Order-preserving (kind, shape) signature, for trace equivalence."""
        return tuple((op.kind, op.shape) for op in self.ops)


def maybe_record(recorder: Optional[TraceRecorder], op: Op) -> None:
    """Record ``op`` when a recorder is attached; otherwise do nothing."""
    if recorder is not None:
        recorder.record(op)
