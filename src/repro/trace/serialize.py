"""JSON serialization for traces and dataflow graphs.

Real accelerator toolchains persist their intermediate representations so
compilation and simulation can run as separate pipeline stages (the
paper's Figure 15 pipes ATen calls between tools).  This module gives the
op stream and the dataflow graph a stable JSON round-trip format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from ..dataflow.graph import DataflowGraph, HostTask
from ..dataflow.patterns import Dataflow, DataflowKind
from .ops import Op, OpKind

#: Format tag written into every serialized artifact.
FORMAT_VERSION = 1


def op_to_dict(op: Op) -> Dict[str, Any]:
    """One op as plain JSON-compatible data."""
    return {
        "kind": op.kind.value,
        "shape": list(op.shape),
        "name": op.name,
        "layer": op.layer,
        "batch": op.batch,
        "metadata": [[key, value] for key, value in op.metadata],
    }


def op_from_dict(data: Dict[str, Any]) -> Op:
    """Inverse of :func:`op_to_dict`."""
    return Op(kind=OpKind(data["kind"]),
              shape=tuple(data["shape"]),
              name=data.get("name", ""),
              layer=data.get("layer", -1),
              batch=data.get("batch", 1),
              metadata=tuple((key, value)
                             for key, value in data.get("metadata", [])))


def trace_to_json(ops: Sequence[Op]) -> str:
    """Serialize an op stream."""
    return json.dumps({"version": FORMAT_VERSION,
                       "ops": [op_to_dict(op) for op in ops]})


def trace_from_json(text: str) -> List[Op]:
    """Deserialize an op stream."""
    data = json.loads(text)
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {data.get('version')}")
    return [op_from_dict(entry) for entry in data["ops"]]


def _node_to_dict(node) -> Dict[str, Any]:
    if isinstance(node, Dataflow):
        return {
            "type": "dataflow",
            "kind": node.kind.value,
            "ops": [op_to_dict(op) for op in node.ops],
            "host_ops": [op_to_dict(op) for op in node.host_ops],
            "name": node.name,
            "layer": node.layer,
            "deps": list(node.deps),
        }
    return {
        "type": "host",
        "ops": [op_to_dict(op) for op in node.ops],
        "name": node.name,
        "layer": node.layer,
        "deps": list(node.deps),
    }


def _node_from_dict(data: Dict[str, Any]):
    deps = tuple(data.get("deps", []))
    ops = tuple(op_from_dict(entry) for entry in data["ops"])
    if data["type"] == "dataflow":
        return Dataflow(kind=DataflowKind(data["kind"]), ops=ops,
                        host_ops=tuple(op_from_dict(entry)
                                       for entry in data.get("host_ops",
                                                             [])),
                        name=data.get("name", ""),
                        layer=data.get("layer", -1), deps=deps)
    if data["type"] == "host":
        return HostTask(ops=ops, name=data.get("name", ""),
                        layer=data.get("layer", -1), deps=deps)
    raise ValueError(f"unknown node type {data['type']!r}")


def graph_to_json(graph: DataflowGraph) -> str:
    """Serialize a dataflow graph."""
    return json.dumps({
        "version": FORMAT_VERSION,
        "nodes": [_node_to_dict(node) for node in graph.nodes],
    })


def graph_from_json(text: str) -> DataflowGraph:
    """Deserialize a dataflow graph (dependencies are re-validated)."""
    data = json.loads(text)
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported graph version {data.get('version')}")
    return DataflowGraph([_node_from_dict(entry)
                          for entry in data["nodes"]])


def save_graph(graph: DataflowGraph, path: Union[str, Path]) -> None:
    """Write a graph to disk."""
    Path(path).write_text(graph_to_json(graph))


def load_graph(path: Union[str, Path]) -> DataflowGraph:
    """Read a graph from disk."""
    return graph_from_json(Path(path).read_text())
