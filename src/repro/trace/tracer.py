"""Symbolic op tracer for Protein BERT.

Produces the exact ATen-call sequence a forward pass of
:class:`repro.model.bert.ProteinBert` emits — without executing any tensor
math — so the dataflow compiler and cycle simulator can work at sequence
lengths (e.g. 2048 tokens, batch 128) where a functional forward would be
wastefully slow.  Equivalence with the executed trace is asserted by the
test suite at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.config import BertConfig
from .ops import Op, OpKind, bmm_op, elementwise_op, matmul_op


@dataclass(frozen=True)
class TraceSpec:
    """Workload description the tracer expands into an op stream.

    Attributes:
        config: model hyperparameters.
        batch: number of sequences per inference batch.
        seq_len: tokens per sequence.
        with_mask: whether an attention mask is applied (adds one ADD per
            layer, exactly as the executed model does).
    """

    config: BertConfig
    batch: int = 1
    seq_len: int = 512
    with_mask: bool = False

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.seq_len <= 0:
            raise ValueError("batch and seq_len must be positive")
        if self.seq_len > self.config.max_position:
            raise ValueError("seq_len exceeds the model's max_position")


def _linear_ops(rows: int, in_features: int, out_features: int,
                out_shape: Tuple[int, ...], name: str, layer: int
                ) -> List[Op]:
    """MatMul + bias Add, as :class:`repro.model.layers.Linear` records."""
    return [
        matmul_op(rows, in_features, out_features, name=name, layer=layer),
        elementwise_op(OpKind.ADD, out_shape, name=f"{name}.bias",
                       layer=layer, metadata={"vector_operand": 1.0}),
    ]


def trace_layer(spec: TraceSpec, layer: int) -> List[Op]:
    """Symbolic op stream of one encoder layer."""
    cfg = spec.config
    b, s = spec.batch, spec.seq_len
    h, heads, hd = cfg.hidden_size, cfg.num_heads, cfg.head_dim
    inter = cfg.intermediate_size
    rows = b * s
    hidden_shape = (b, s, h)
    ops: List[Op] = []

    prefix = f"layer.{layer}"
    for proj in ("query", "key", "value"):
        ops.extend(_linear_ops(rows, h, h, hidden_shape,
                               f"{prefix}.attention.{proj}", layer))
    for _ in range(3):
        ops.append(elementwise_op(OpKind.TRANSPOSE, (b, s, heads, hd),
                                  name="attention.split_heads", layer=layer))
    ops.append(bmm_op(b * heads, s, hd, s, name="attention.scores",
                      layer=layer))
    ops.append(elementwise_op(OpKind.DIV, (b, heads, s, s),
                              name="attention.scale", layer=layer,
                              metadata={"divisor": float(hd) ** 0.5}))
    if spec.with_mask:
        ops.append(elementwise_op(OpKind.ADD, (b, heads, s, s),
                                  name="attention.mask", layer=layer))
    ops.append(elementwise_op(OpKind.SOFTMAX, (b, heads, s, s),
                              name="attention.softmax", layer=layer))
    ops.append(bmm_op(b * heads, s, s, hd, name="attention.context",
                      layer=layer))
    ops.append(elementwise_op(OpKind.TRANSPOSE, (b, s, heads, hd),
                              name="attention.merge_heads", layer=layer))
    ops.extend(_linear_ops(rows, h, h, hidden_shape,
                           f"{prefix}.attention.output", layer))
    ops.append(elementwise_op(OpKind.ADD, hidden_shape,
                              name=f"{prefix}.attention.residual",
                              layer=layer))
    ops.append(elementwise_op(OpKind.LAYERNORM, hidden_shape,
                              name=f"{prefix}.attention.layernorm",
                              layer=layer))

    ops.extend(_linear_ops(rows, h, inter, (b, s, inter),
                           f"{prefix}.intermediate", layer))
    ops.append(elementwise_op(OpKind.GELU, (b, s, inter),
                              name=f"{prefix}.gelu", layer=layer))
    ops.extend(_linear_ops(rows, inter, h, hidden_shape,
                           f"{prefix}.output", layer))
    ops.append(elementwise_op(OpKind.ADD, hidden_shape,
                              name=f"{prefix}.output.residual", layer=layer))
    ops.append(elementwise_op(OpKind.LAYERNORM, hidden_shape,
                              name=f"{prefix}.output.layernorm", layer=layer))
    return ops


def trace_embeddings(spec: TraceSpec) -> List[Op]:
    """Symbolic op stream of the embedding stage."""
    b, s = spec.batch, spec.seq_len
    h = spec.config.hidden_size
    shape = (b, s, h)
    return [
        elementwise_op(OpKind.EMBEDDING, shape, name="embeddings.token"),
        elementwise_op(OpKind.EMBEDDING, shape, name="embeddings.position"),
        elementwise_op(OpKind.ADD, shape, name="embeddings.add"),
        elementwise_op(OpKind.LAYERNORM, shape, name="embeddings.layernorm"),
    ]


def trace_model(spec: TraceSpec) -> List[Op]:
    """Full symbolic op stream for one batched inference."""
    ops = trace_embeddings(spec)
    for layer in range(spec.config.num_layers):
        ops.extend(trace_layer(spec, layer))
    return ops


def flops_by_category(ops: List[Op]) -> Dict[str, int]:
    """Total FLOPs per Figure 3 category."""
    totals: Dict[str, int] = {}
    for op in ops:
        category = op.figure3_category
        totals[category] = totals.get(category, 0) + op.flops
    return totals


def count_by_kind(ops: List[Op]) -> Dict[OpKind, int]:
    """Number of traced calls per op kind."""
    counts: Dict[OpKind, int] = {}
    for op in ops:
        counts[op.kind] = counts.get(op.kind, 0) + 1
    return counts


def matmul_shapes(ops: List[Op]) -> List[Tuple[int, ...]]:
    """All GEMM shapes in the trace (MATMUL as (m,k,n), BMM as (b,m,k,n))."""
    return [op.shape for op in ops if op.kind in (OpKind.MATMUL, OpKind.BMM)]
