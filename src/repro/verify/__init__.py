"""Differential verification harness (randomized testbench analogue)."""

from .differential import (
    RELATIVE_TOLERANCE,
    CaseResult,
    DifferentialHarness,
    campaign_report,
)

__all__ = [
    "CaseResult",
    "DifferentialHarness",
    "RELATIVE_TOLERANCE",
    "campaign_report",
]
