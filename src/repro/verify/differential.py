"""Differential verification harness for the accelerator models.

Plays the role of a randomized RTL testbench: structured random test
vectors exercise every operation chain the dataflows use, and three
implementations are compared —

1. the **float reference** (NumPy float32, the golden model),
2. the **functional model** (:class:`repro.arch.systolic.SystolicArray`),
3. the **cycle-accurate PE grid**
   (:class:`repro.arch.cycle_sim.CycleAccurateArray`).

Functional vs cycle-accurate must agree *exactly* (both implement the
same bfloat16 datapath); functional vs float reference must agree within
the bfloat16/LUT error budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..dataflow.patterns import ArrayType
from ..arch.cycle_sim import CycleAccurateArray
from ..arch.systolic import SimdOpcode, SimdStep, SystolicArray
from ..model.activations import gelu as gelu_reference
from ..model.tensors import to_bfloat16

#: Error budget for functional-vs-float comparisons, relative to the
#: operand magnitude scale (bf16 epsilon times accumulation headroom).
RELATIVE_TOLERANCE = 0.02

#: Absolute error floor: the GELU LUT truncates inputs below its
#: exponent window (|x| < 2**-4) to 0, contributing up to
#: GELU(2**-4) ~ 0.033 of error regardless of the output scale, on top
#: of bf16 rounding of small outputs.
ABSOLUTE_TOLERANCE = 0.04


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one differential test case."""

    description: str
    exact_match: bool          # functional == cycle-accurate
    reference_error: float     # max |functional - float reference|
    reference_scale: float     # magnitude scale of the reference output
    relative_tolerance: float = RELATIVE_TOLERANCE

    @property
    def passed(self) -> bool:
        budget = (self.relative_tolerance * max(self.reference_scale, 1.0)
                  + ABSOLUTE_TOLERANCE)
        return self.exact_match and self.reference_error <= budget


@dataclass
class DifferentialHarness:
    """Generates and runs structured random differential test cases.

    Args:
        seed: RNG seed for the test-vector generator.
        max_size: largest array dimension exercised (cycle-accurate
            simulation is O(n²) per cycle — keep small).
    """

    seed: int = 0
    max_size: int = 6
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- test-vector generators -----------------------------------------

    def _operands(self, n: int, k: int, scale: float
                  ) -> Tuple[np.ndarray, np.ndarray]:
        a = self._rng.normal(0, scale, size=(n, k)).astype(np.float32)
        b = self._rng.normal(0, scale, size=(k, n)).astype(np.float32)
        return a, b

    def run_matmul_case(self, n: int, k: int,
                        scale: float = 1.0) -> CaseResult:
        """MatMul: functional vs cycle grid vs float reference."""
        a, b = self._operands(n, k, scale)
        functional = SystolicArray(n, ArrayType.M).matmul(a, b)
        grid = CycleAccurateArray(n).matmul(a, b)
        reference = a.astype(np.float64) @ b.astype(np.float64)
        return CaseResult(
            description=f"matmul n={n} k={k} scale={scale}",
            exact_match=bool(np.allclose(functional, grid, rtol=1e-6,
                                         atol=1e-7)),
            reference_error=float(np.max(np.abs(functional - reference))),
            reference_scale=float(np.max(np.abs(reference)) or 1.0))

    def run_chain_case(self, n: int, k: int,
                       opcode: SimdOpcode) -> CaseResult:
        """MatMul followed by one SIMD op through both models."""
        a, b = self._operands(n, k, 1.0)
        array_type = {SimdOpcode.GELU: ArrayType.G,
                      SimdOpcode.EXP: ArrayType.E}.get(opcode, ArrayType.M)
        functional_array = SystolicArray(n, array_type)

        if opcode in (SimdOpcode.ADD, SimdOpcode.MUL):
            operand = self._rng.normal(size=(n, n)).astype(np.float32)
            step = SimdStep(opcode, operand)
        else:
            operand = None
            step = SimdStep(opcode)
        functional = functional_array.execute_chain(a, b, (step,))

        grid = CycleAccurateArray(n)
        grid.matmul(a, b)

        def alu(column: np.ndarray, index: int) -> np.ndarray:
            column = to_bfloat16(column)
            if opcode is SimdOpcode.ADD:
                return column + to_bfloat16(operand[:, index])
            if opcode is SimdOpcode.MUL:
                return column * to_bfloat16(operand[:, index])
            if opcode is SimdOpcode.GELU:
                return functional_array._gelu.lookup(column)
            return functional_array._exp.lookup(column)

        grid_result = to_bfloat16(grid.simd_rotate(alu))

        resident = a.astype(np.float64) @ b.astype(np.float64)
        if opcode is SimdOpcode.ADD:
            reference = resident + operand
        elif opcode is SimdOpcode.MUL:
            reference = resident * operand
        elif opcode is SimdOpcode.GELU:
            reference = gelu_reference(resident.astype(np.float32))
        else:
            reference = np.exp(np.clip(resident, -80, 80))
        relative_tolerance = RELATIVE_TOLERANCE
        if opcode is SimdOpcode.EXP:
            # Exp turns *absolute* input error into *relative* output
            # error (|exp(x+e) - exp(x)| / exp(x) = e**e - 1), so widen
            # the budget by the measured bf16 quantization error of the
            # matmul result that feeds the LUT.
            chain_input = to_bfloat16(
                to_bfloat16(a) @ to_bfloat16(b)).astype(np.float64)
            input_error = float(np.max(np.abs(chain_input - resident)))
            relative_tolerance += float(np.expm1(input_error))
        return CaseResult(
            description=f"chain {opcode.value} n={n} k={k}",
            exact_match=bool(np.array_equal(functional, grid_result)),
            reference_error=float(np.max(np.abs(functional - reference))),
            reference_scale=float(np.max(np.abs(reference)) or 1.0),
            relative_tolerance=relative_tolerance)

    # -- campaign --------------------------------------------------------

    def run_campaign(self, cases: int = 24) -> List[CaseResult]:
        """Run a mixed campaign of matmul and chained cases."""
        results: List[CaseResult] = []
        opcodes = (SimdOpcode.ADD, SimdOpcode.MUL, SimdOpcode.GELU,
                   SimdOpcode.EXP)
        for index in range(cases):
            n = int(self._rng.integers(2, self.max_size + 1))
            k = int(self._rng.integers(1, 3 * self.max_size))
            if index % 2 == 0:
                scale = float(self._rng.choice([0.1, 1.0, 4.0]))
                results.append(self.run_matmul_case(n, k, scale))
            else:
                opcode = opcodes[(index // 2) % len(opcodes)]
                results.append(self.run_chain_case(n, k, opcode))
        return results


def campaign_report(results: Sequence[CaseResult]) -> str:
    """Summarize a campaign, listing any failures."""
    failures = [result for result in results if not result.passed]
    lines = [f"differential campaign: {len(results)} cases, "
             f"{len(results) - len(failures)} passed"]
    for failure in failures:
        lines.append(f"  FAIL {failure.description}: exact="
                     f"{failure.exact_match} err="
                     f"{failure.reference_error:.4g}")
    return "\n".join(lines)
