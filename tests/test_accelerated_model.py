"""Tests for functional execution of Protein BERT on simulated hardware."""

import numpy as np
import pytest

from repro.arch.accelerated_model import AcceleratedProteinBert
from repro.model import ProteinBert, protein_bert_tiny
from repro.proteins import ProteinTokenizer, SequenceGenerator


@pytest.fixture(scope="module")
def setup():
    config = protein_bert_tiny(num_layers=2, hidden_size=64, num_heads=4,
                               intermediate_size=128)
    model = ProteinBert(config, seed=9)
    accelerated = AcceleratedProteinBert(model, array_size=8)
    rng = np.random.default_rng(0)
    ids = rng.integers(5, 25, size=(2, 12))
    mask = np.ones((2, 12), dtype=np.int64)
    return model, accelerated, ids, mask


class TestFidelity:
    def test_output_shape_matches_reference(self, setup):
        model, accelerated, ids, mask = setup
        out = accelerated.forward(ids, mask)
        assert out.shape == model.forward(ids, mask).shape

    def test_high_correlation_with_reference(self, setup):
        _, accelerated, ids, mask = setup
        error, correlation = accelerated.fidelity(ids, mask)
        assert correlation > 0.999
        assert error < 0.2

    def test_without_mask(self, setup):
        _, accelerated, ids, _ = setup
        error, correlation = accelerated.fidelity(ids)
        assert correlation > 0.999

    def test_deterministic(self, setup):
        _, accelerated, ids, mask = setup
        first = accelerated.forward(ids, mask)
        second = accelerated.forward(ids, mask)
        assert np.array_equal(first, second)

    def test_stats_accumulate(self, setup):
        _, accelerated, ids, mask = setup
        before = accelerated.stats.mac_operations
        accelerated.forward(ids, mask)
        assert accelerated.stats.mac_operations > before

    def test_bad_input_shape_rejected(self, setup):
        _, accelerated, _, _ = setup
        with pytest.raises(ValueError):
            accelerated.forward(np.zeros(5, dtype=np.int64))


class TestWithRealSequences:
    def test_tokenized_proteins_flow_through(self):
        config = protein_bert_tiny(num_layers=1, hidden_size=32,
                                   num_heads=2, intermediate_size=64)
        model = ProteinBert(config, seed=2)
        accelerated = AcceleratedProteinBert(model, array_size=4)
        sequences = SequenceGenerator(seed=1).batch(2, 10)
        encoding = ProteinTokenizer().encode_batch(sequences)
        error, correlation = accelerated.fidelity(
            encoding.ids, encoding.attention_mask)
        assert correlation > 0.995
