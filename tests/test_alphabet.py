"""Tests for the amino-acid alphabet and vocabulary."""

import pytest

from repro.proteins import (
    AMINO_ACID_NAMES,
    CHARGE,
    DEFAULT_VOCABULARY,
    EXTENDED_AMINO_ACIDS,
    HYDROPATHY,
    STANDARD_AMINO_ACIDS,
    VOLUME,
    Vocabulary,
    is_valid_sequence,
)


class TestAlphabetTables:
    def test_twenty_standard_amino_acids(self):
        assert len(STANDARD_AMINO_ACIDS) == 20
        assert len(set(STANDARD_AMINO_ACIDS)) == 20

    def test_extended_codes_disjoint_from_standard(self):
        assert not set(STANDARD_AMINO_ACIDS) & set(EXTENDED_AMINO_ACIDS)

    def test_every_amino_acid_has_a_name(self):
        for code in STANDARD_AMINO_ACIDS + EXTENDED_AMINO_ACIDS:
            assert code in AMINO_ACID_NAMES

    def test_hydropathy_covers_all_codes(self):
        for code in STANDARD_AMINO_ACIDS + EXTENDED_AMINO_ACIDS:
            assert code in HYDROPATHY

    def test_hydropathy_signs(self):
        # Isoleucine is the most hydrophobic; arginine the least.
        assert HYDROPATHY["I"] == pytest.approx(4.5)
        assert HYDROPATHY["R"] == pytest.approx(-4.5)

    def test_charged_residues(self):
        assert CHARGE["D"] < 0 and CHARGE["E"] < 0
        assert CHARGE["K"] > 0 and CHARGE["R"] > 0

    def test_volume_ordering(self):
        # Glycine is the smallest side chain, tryptophan the largest.
        assert VOLUME["G"] < VOLUME["A"] < VOLUME["W"]


class TestVocabulary:
    def test_default_size_is_thirty(self):
        assert DEFAULT_VOCABULARY.size == 30

    def test_special_tokens_come_first(self):
        vocab = DEFAULT_VOCABULARY
        assert vocab.pad_id == 0
        assert vocab.mask_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.unk_id == 4

    def test_amino_acids_follow_specials(self):
        vocab = DEFAULT_VOCABULARY
        assert vocab.index("A") == 5
        assert vocab.tokens[5:25] == STANDARD_AMINO_ACIDS

    def test_unknown_character_maps_to_unk(self):
        assert DEFAULT_VOCABULARY.index("*") == DEFAULT_VOCABULARY.unk_id

    def test_id_to_token_roundtrip(self):
        vocab = DEFAULT_VOCABULARY
        for token in STANDARD_AMINO_ACIDS:
            assert vocab.id_to_token(vocab.index(token)) == token

    def test_custom_vocabulary_is_frozen(self):
        vocab = Vocabulary()
        with pytest.raises(Exception):
            vocab.pad_token = "<p>"  # type: ignore[misc]


class TestIsValidSequence:
    def test_standard_sequence_valid(self):
        assert is_valid_sequence("MEYQ")

    def test_lowercase_accepted(self):
        assert is_valid_sequence("meyq")

    def test_extended_codes_controlled_by_flag(self):
        assert is_valid_sequence("MX")
        assert not is_valid_sequence("MX", allow_extended=False)

    def test_empty_sequence_invalid(self):
        assert not is_valid_sequence("")

    def test_non_amino_characters_invalid(self):
        assert not is_valid_sequence("ME*Q")
        assert not is_valid_sequence("ME Q")
