"""Tests for the trace analytics engine and regression attribution.

Covers critical-path extraction (exact tiling of the end-to-end span,
idle-gap synthesis, determinism), utilization attribution (busy/blocked
accounting, concurrency histogram, the "bound by" verdict against the
scheduler's own bottleneck), trace rollups and run-to-run diffs, the
Chrome-trace round trip including the highlighted critical-path track,
BENCH rollup embedding, and the ``analyze`` / ``bench --attribute``
CLI paths.
"""

import json

import pytest

from repro.bench import (
    attribute_comparison,
    build_record,
    build_rollups,
    compare_records,
    format_attribution,
    select_scenarios,
    trace_scenario,
    traced_scenario_names,
    validate_record,
    write_record,
)
from repro.bench.scenarios import BATCH, SEQ_LEN, _base_config, _hardware
from repro.cli import main
from repro.sched.orchestrator import Orchestrator
from repro.telemetry import (
    Tracer,
    analyze_trace,
    build_rollup,
    critical_path_spans,
    diff_rollups,
    extract_critical_path,
    format_critical_path,
    format_diff,
    format_utilization,
    load_trace,
    to_chrome_trace,
    tracer_from_chrome_trace,
    utilization_report,
    validate_chrome_trace,
    validate_rollup,
)
from repro.telemetry.analyze import IDLE_HOP, find_root


@pytest.fixture(scope="module")
def schedule_run():
    """One traced nominal schedule plus its ScheduleResult."""
    tracer = Tracer()
    result = Orchestrator(_hardware()).run(
        _base_config(), batch=BATCH, seq_len=SEQ_LEN, tracer=tracer)
    return tracer, result


def _toy_tracer():
    """A small hand-built trace with a deliberate 1s idle gap."""
    tracer = Tracer()
    tracer.add_span("root", 0.0, 10.0, category="run", tid="top")
    tracer.add_span("a", 0.0, 4.0, category="exec", tid="r1")
    tracer.add_span("b", 5.0, 10.0, category="exec", tid="r2")
    return tracer


# -- critical path -------------------------------------------------------

class TestCriticalPath:
    def test_path_tiles_the_root_span_exactly(self, schedule_run):
        tracer, result = schedule_run
        path = extract_critical_path(tracer)
        assert path.root_name == "orchestrator.run"
        assert path.root_seconds == pytest.approx(
            result.makespan_seconds, abs=0.0)
        # The acceptance invariant: per-hop self times tile the
        # end-to-end span with no gaps and no overlaps.
        assert path.total_seconds == pytest.approx(path.root_seconds,
                                                   abs=1e-12)
        assert path.gap_seconds == 0.0
        assert path.gaps == 0

    def test_hops_are_chronological_and_contiguous(self, schedule_run):
        tracer, _result = schedule_run
        path = extract_critical_path(tracer)
        cursor = 0.0
        for hop in path.hops:
            assert hop.self_seconds > 0.0
            cursor += hop.self_seconds
        assert cursor == pytest.approx(path.root_seconds, abs=1e-12)
        ends = [hop.end for hop in path.hops]
        assert ends == sorted(ends)

    def test_gap_synthesis_on_a_sparse_trace(self):
        path = extract_critical_path(_toy_tracer())
        names = [hop.name for hop in path.hops]
        assert names == ["a", IDLE_HOP, "b"]
        assert path.gap_seconds == pytest.approx(1.0)
        assert path.gaps == 1
        assert path.total_seconds == pytest.approx(10.0)

    def test_extraction_is_deterministic_per_seed(self):
        def analysis_json():
            tracer = Tracer()
            Orchestrator(_hardware()).run(_base_config(), batch=BATCH,
                                          seq_len=SEQ_LEN, tracer=tracer)
            return analyze_trace(tracer).to_json()

        assert analysis_json() == analysis_json()

    def test_named_and_missing_roots(self, schedule_run):
        tracer, _result = schedule_run
        named = extract_critical_path(tracer, root="orchestrator.run")
        assert named.root_name == "orchestrator.run"
        with pytest.raises(ValueError, match="no sim-time span named"):
            extract_critical_path(tracer, root="nope")
        with pytest.raises(ValueError, match="no finished sim-time"):
            extract_critical_path(Tracer())

    def test_hull_root_when_no_run_span_exists(self):
        tracer = Tracer()
        tracer.add_span("x", 1.0, 3.0, category="exec")
        root = find_root(tracer)
        assert root.name == "(trace)"
        assert (root.start, root.end) == (1.0, 3.0)

    def test_formatting_mentions_hops_and_composition(self, schedule_run):
        tracer, _result = schedule_run
        text = format_critical_path(extract_critical_path(tracer), top=5)
        assert "critical path of 'orchestrator.run'" in text
        assert "more hop(s)" in text
        assert "path composition:" in text


# -- utilization & verdicts ---------------------------------------------

class TestUtilization:
    def test_verdict_matches_schedule_result_bottleneck(
            self, schedule_run):
        tracer, result = schedule_run
        report = utilization_report(tracer)
        assert len(report.phases) == 1
        phase = report.phases[0]
        assert phase.bound_by == result.bottleneck
        assert phase.recorded == result.bottleneck
        assert phase.agrees is True

    def test_verdict_matches_across_table4_configs(self):
        from repro.arch.config import table4_configs

        for config in table4_configs()[:3]:
            tracer = Tracer()
            result = Orchestrator(config).run(
                _base_config(), batch=BATCH, seq_len=SEQ_LEN,
                tracer=tracer)
            report = utilization_report(tracer)
            assert report.phases[0].bound_by == result.bottleneck, \
                config.name

    def test_track_accounting_sums(self, schedule_run):
        tracer, _result = schedule_run
        report = utilization_report(tracer)
        for track in report.tracks:
            assert 0.0 <= track.busy_fraction <= 1.0 + 1e-9
            assert track.idle_seconds >= 0.0
            total = (track.busy_seconds + track.blocked_seconds
                     + track.idle_seconds)
            assert total <= track.horizon_seconds + 1e-9
        classes = {track.resource_class for track in report.tracks}
        assert {"array", "link", "host", "thread"} <= classes

    def test_concurrency_histogram_is_a_distribution(self, schedule_run):
        tracer, _result = schedule_run
        report = utilization_report(tracer)
        assert sum(report.concurrency.values()) == pytest.approx(1.0)
        assert all(share >= 0.0 for share in report.concurrency.values())
        assert report.mean_concurrency > 1.0  # arrays + links overlap

    def test_blocked_time_comes_from_ready_args(self):
        tracer = Tracer()
        tracer.add_span("root", 0.0, 4.0, category="run")
        tracer.add_span("t", 2.0, 3.0, category="task", tid="thread00",
                        ready=1.0)
        report = utilization_report(tracer)
        track = next(t for t in report.tracks if t.tid == "thread00")
        assert track.blocked_seconds == pytest.approx(1.0)

    def test_formatting_includes_phase_verdict(self, schedule_run):
        tracer, _result = schedule_run
        text = format_utilization(utilization_report(tracer), top=5)
        assert "bound by" in text
        assert "[matches scheduler]" in text


# -- rollups & diffs -----------------------------------------------------

class TestRollupsAndDiff:
    def test_rollup_schema_and_validation(self, schedule_run):
        tracer, _result = schedule_run
        rollup = validate_rollup(build_rollup(tracer))
        assert rollup["schema"] == "repro.trace-rollup"
        assert rollup["root"] == "orchestrator.run"
        assert rollup["bound_by"] is not None
        assert rollup["spans"] and rollup["critical"]

    def test_validate_rollup_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_rollup([])
        with pytest.raises(ValueError, match="schema="):
            validate_rollup({"schema": "other"})
        base = {"schema": "repro.trace-rollup", "schema_version": 1,
                "root_seconds": 1.0, "spans": []}
        with pytest.raises(ValueError, match="newer than"):
            validate_rollup(dict(base, schema_version=99))
        with pytest.raises(ValueError, match="root_seconds"):
            validate_rollup(dict(base, root_seconds=-1))
        with pytest.raises(ValueError, match="span entry"):
            validate_rollup(dict(base, spans=[{"name": 3}]))

    def test_self_diff_is_exactly_zero(self, schedule_run):
        tracer, _result = schedule_run
        rollup = build_rollup(tracer)
        diff = diff_rollups(rollup, rollup)
        assert diff.delta_seconds == 0.0
        assert all(row.delta_seconds == 0.0 for row in diff.rows)
        assert "zero-delta" in format_diff(diff)

    def test_identical_seed_traces_diff_to_zero(self, schedule_run):
        tracer, _result = schedule_run
        other = Tracer()
        Orchestrator(_hardware()).run(_base_config(), batch=BATCH,
                                      seq_len=SEQ_LEN, tracer=other)
        diff = diff_rollups(build_rollup(tracer), build_rollup(other))
        assert diff.delta_seconds == 0.0
        assert all(row.delta_seconds == 0.0 for row in diff.rows)

    def test_injected_slowdown_is_attributed_to_the_right_span(self):
        slow = _toy_tracer()
        fast = Tracer()
        fast.add_span("root", 0.0, 8.5, category="run", tid="top")
        fast.add_span("a", 0.0, 4.0, category="exec", tid="r1")
        fast.add_span("b", 5.0, 8.5, category="exec", tid="r2")
        diff = diff_rollups(build_rollup(fast), build_rollup(slow))
        assert diff.delta_seconds == pytest.approx(1.5)
        top = diff.rows[0]
        assert (top.name, top.status) == ("b", "moved")
        assert top.delta_seconds == pytest.approx(1.5)
        assert "of delta" in format_diff(diff)

    def test_structural_drift_shows_added_and_removed(self):
        base = build_rollup(_toy_tracer())
        tracer = Tracer()
        tracer.add_span("root", 0.0, 10.0, category="run", tid="top")
        tracer.add_span("a", 0.0, 4.0, category="exec", tid="r1")
        tracer.add_span("c", 5.0, 10.0, category="exec", tid="r2")
        diff = diff_rollups(base, build_rollup(tracer))
        statuses = {row.name: row.status for row in diff.rows}
        assert statuses["b"] == "removed"
        assert statuses["c"] == "added"


# -- Chrome-trace round trip ---------------------------------------------

class TestChromeRoundTrip:
    def test_reloaded_trace_preserves_the_invariants(self, schedule_run):
        tracer, result = schedule_run
        data = to_chrome_trace(tracer)
        reloaded = tracer_from_chrome_trace(data)
        analysis = analyze_trace(reloaded)
        assert analysis.path.total_seconds == pytest.approx(
            analysis.path.root_seconds, abs=1e-12)
        assert analysis.path.gap_seconds == 0.0
        assert analysis.utilization.phases[0].bound_by == \
            result.bottleneck

    def test_highlight_track_exports_valid_and_tiles(self, schedule_run):
        tracer, _result = schedule_run
        path = extract_critical_path(tracer)
        extra = critical_path_spans(path)
        data = to_chrome_trace(tracer, extra_spans=extra)
        counts = validate_chrome_trace(data)
        assert counts["spans"] == len(tracer.finished_spans()) + len(extra)
        # Disjoint, contiguous, one track.
        assert all(span.tid == "critical path" for span in extra)
        for left, right in zip(extra, extra[1:]):
            assert right.start == pytest.approx(left.end)

    def test_highlight_track_is_not_reanalyzed_after_reload(
            self, schedule_run):
        tracer, _result = schedule_run
        path = extract_critical_path(tracer)
        data = to_chrome_trace(tracer,
                               extra_spans=critical_path_spans(path))
        reloaded = tracer_from_chrome_trace(data)
        assert not [span for span in reloaded.finished_spans()
                    if span.pid == "analysis"]
        again = extract_critical_path(reloaded)
        assert len(again.hops) == len(path.hops)

    def test_load_trace_accepts_path_dict_and_tracer(
            self, schedule_run, tmp_path):
        tracer, _result = schedule_run
        data = to_chrome_trace(tracer)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(data))
        for source in (tracer, data, str(path)):
            assert len(load_trace(source).finished_spans()) >= \
                len([s for s in tracer.finished_spans()])
        with pytest.raises(TypeError):
            load_trace(42)
        with pytest.raises(ValueError, match="traceEvents"):
            tracer_from_chrome_trace({})

    def test_same_file_loaded_twice_analyzes_identically(
            self, schedule_run, tmp_path):
        tracer, _result = schedule_run
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(to_chrome_trace(tracer)))
        first = analyze_trace(str(path)).to_json()
        second = analyze_trace(str(path)).to_json()
        assert first == second


# -- bench integration ---------------------------------------------------

class TestBenchAttribution:
    def test_traced_scenarios_cover_the_simulations(self):
        traced = traced_scenario_names()
        assert {"schedule", "dse_point", "campaign_simulate",
                "fleet_simulate"} <= set(traced)

    def test_trace_scenario_runs_and_rejects_untraceable(self):
        tracer, fingerprint = trace_scenario("schedule")
        assert fingerprint > 0.0
        assert tracer.finished_spans()
        with pytest.raises(ValueError, match="no traced variant"):
            trace_scenario("trace_build")
        with pytest.raises(KeyError):
            trace_scenario("nope")

    def test_record_embeds_and_validates_rollups(self, tmp_path):
        rollups = build_rollups(["schedule", "trace_build"])
        assert list(rollups) == ["schedule"]  # untraceable skipped
        timing = {"name": "schedule", "repeat": 1, "samples": [0.1],
                  "median_seconds": 0.1, "min_seconds": 0.1,
                  "max_seconds": 0.1, "mean_seconds": 0.1,
                  "fingerprint": 1.0, "stable": True}
        record = build_record({"schedule": timing}, repeat=1,
                              rollups=rollups)
        out = tmp_path / "BENCH_0001.json"
        write_record(record, str(out))
        loaded = validate_record(json.loads(out.read_text()))
        validate_rollup(loaded["rollups"]["schedule"])
        bad = dict(record, rollups={"schedule": {"schema": "junk"}})
        with pytest.raises(ValueError, match="rollup for scenario"):
            validate_record(bad)

    def _comparison(self, status_name="schedule", regressed=True):
        timing = {"name": status_name, "repeat": 1, "samples": [0.4],
                  "median_seconds": 0.4 if regressed else 0.1,
                  "min_seconds": 0.1, "max_seconds": 0.4,
                  "mean_seconds": 0.2, "fingerprint": 1.0,
                  "stable": True}
        current = build_record({status_name: timing}, repeat=1)
        baseline = build_record(
            {status_name: dict(timing, median_seconds=0.1)}, repeat=1)
        return compare_records(current, [baseline], band_pct=10.0), \
            [baseline]

    def test_attribution_of_a_regression_without_baseline_rollup(self):
        comparison, baselines = self._comparison()
        assert select_scenarios(comparison) == ["schedule"]
        attributions = attribute_comparison(comparison, baselines)
        assert len(attributions) == 1
        assert attributions[0].diff is None
        assert "no baseline rollup" in attributions[0].note
        text = format_attribution(attributions, top=5)
        assert "attribution for 'schedule'" in text
        assert "current composition" in text

    def test_attribution_diffs_against_embedded_rollup(self):
        comparison, baselines = self._comparison()
        baselines[0]["rollups"] = build_rollups(["schedule"])
        attributions = attribute_comparison(comparison, baselines)
        diff = attributions[0].diff
        assert diff is not None
        assert diff.delta_seconds == 0.0  # same seed, same structure
        assert "zero-delta" in format_attribution(attributions)

    def test_attribution_falls_back_to_largest_mover(self):
        comparison, _baselines = self._comparison(regressed=False)
        assert not comparison.regressions
        assert select_scenarios(comparison) == ["schedule"]

    def test_untraceable_comparison_yields_empty_selection(self):
        comparison, _ = self._comparison(status_name="trace_build")
        assert select_scenarios(comparison) == []
        assert "no traceable scenario" in format_attribution([])


# -- CLI -----------------------------------------------------------------

class TestAnalyzeCli:
    def test_analyze_scenario_ascii(self, capsys):
        assert main(["analyze", "--scenario", "schedule",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "critical path of 'orchestrator.run'" in out
        assert "bound by" in out

    def test_analyze_requires_exactly_one_input(self):
        with pytest.raises(SystemExit, match="exactly one input"):
            main(["analyze"])
        with pytest.raises(SystemExit, match="exactly one input"):
            main(["analyze", "--trace", "x.json", "--scenario",
                  "schedule"])
        with pytest.raises(SystemExit, match="no traced variant"):
            main(["analyze", "--scenario", "trace_build"])

    def test_analyze_against_identical_trace_is_zero_delta(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["analyze", "--scenario", "schedule", "--format",
                     "perfetto", "--out", "trace.json"]) == 0
        capsys.readouterr()
        assert main(["analyze", "--trace", "trace.json", "--against",
                     "trace.json", "--format", "json",
                     "--out", "analysis.json"]) == 0
        out = capsys.readouterr().out
        analysis = json.loads(out)
        assert analysis["diff"]["delta_seconds"] == 0.0
        assert all(row["delta_seconds"] == 0.0
                   for row in analysis["diff"]["rows"])
        on_disk = json.loads((tmp_path / "analysis.json").read_text())
        assert on_disk == analysis

    def test_analyze_perfetto_export_validates(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["analyze", "--scenario", "schedule", "--format",
                     "perfetto"]) == 0
        out = capsys.readouterr().out
        assert "critical-path track" in out
        data = json.loads((tmp_path / "analysis.json").read_text())
        validate_chrome_trace(data)
        track_names = [event["args"]["name"]
                       for event in data["traceEvents"]
                       if event.get("ph") == "M"
                       and event["name"] == "thread_name"]
        assert "critical path" in track_names

    def test_bench_attribute_prints_a_table(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenarios", "schedule", "--repeat", "1",
                     "--rollups", "--out", "BENCH_0001.json"]) == 0
        capsys.readouterr()
        assert main(["bench", "--scenarios", "schedule", "--repeat", "1",
                     "--out", "BENCH_0002.json", "--compare",
                     "BENCH_0001.json", "--attribute"]) == 0
        out = capsys.readouterr().out
        assert "attribution for 'schedule'" in out
        assert "trace diff of 'orchestrator.run'" in out

    def test_bench_attribute_requires_compare(self):
        with pytest.raises(SystemExit, match="--attribute requires"):
            main(["bench", "--scenarios", "trace_build", "--repeat", "1",
                  "--attribute"])
