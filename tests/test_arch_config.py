"""Tests for ProSE hardware configurations (Figure 9, Table 4)."""

import pytest

from repro.arch import (
    ArrayGroup,
    HardwareConfig,
    best_perf,
    best_perf_plus,
    homogeneous,
    homogeneous_plus,
    most_efficient,
    most_efficient_plus,
    nvlink,
    table4_configs,
)
from repro.dataflow import ArrayType


class TestArrayGroup:
    def test_pe_count(self):
        assert ArrayGroup(ArrayType.M, 64, 2).pes == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayGroup(ArrayType.M, 0, 2)
        with pytest.raises(ValueError):
            ArrayGroup(ArrayType.M, 64, 0)

    def test_label(self):
        assert ArrayGroup(ArrayType.G, 32, 3).label == "3x 32x32 G"


class TestHardwareConfig:
    def test_all_types_required(self):
        with pytest.raises(ValueError):
            HardwareConfig(name="bad", groups=(
                ArrayGroup(ArrayType.M, 64, 2),
                ArrayGroup(ArrayType.G, 16, 4)))

    def test_total_pes(self):
        assert best_perf().total_pes == 16384

    def test_type_bandwidth_partition(self):
        config = best_perf()
        total = sum(config.type_bandwidth(t) for t in ArrayType)
        assert total == pytest.approx(config.link.total_bandwidth)

    def test_with_link_preserves_everything_else(self):
        config = best_perf().with_link(nvlink(3, 0.8))
        assert config.total_pes == 16384
        assert config.link.total_bandwidth == pytest.approx(480e9)

    def test_with_threads(self):
        assert best_perf().with_threads(8).threads == 8

    def test_summary_fields(self):
        summary = best_perf().summary()
        assert summary["name"] == "BestPerf"
        assert summary["PEs"] == "16384"


class TestTable4Configs:
    def test_pe_budgets(self):
        # Base designs are 16K PEs, "+" designs 20K (Table 4).
        for config in (best_perf(), most_efficient(), homogeneous()):
            assert config.total_pes == 16384
        for config in (best_perf_plus(), most_efficient_plus(),
                       homogeneous_plus()):
            assert config.total_pes == 20480

    def test_best_perf_mix(self):
        config = best_perf()
        by_type = {g.array_type: g for g in config.groups}
        assert (by_type[ArrayType.M].size,
                by_type[ArrayType.M].count) == (64, 2)
        assert (by_type[ArrayType.G].size,
                by_type[ArrayType.G].count) == (16, 10)
        assert (by_type[ArrayType.E].size,
                by_type[ArrayType.E].count) == (16, 22)

    def test_most_efficient_mix(self):
        config = most_efficient()
        by_type = {g.array_type: g for g in config.groups}
        assert (by_type[ArrayType.G].size,
                by_type[ArrayType.G].count) == (32, 3)
        assert (by_type[ArrayType.E].size,
                by_type[ArrayType.E].count) == (16, 20)

    def test_homogeneous_is_pooled_unchained(self):
        for config in (homogeneous(), homogeneous_plus()):
            assert config.pooled
            assert not config.chained
            assert all(group.size == 64 for group in config.groups)

    def test_heterogeneous_are_chained(self):
        for config in (best_perf(), most_efficient(), best_perf_plus()):
            assert config.chained and not config.pooled

    def test_plus_designs_use_nvlink3(self):
        assert best_perf_plus().link.total_bandwidth \
            == pytest.approx(540e9)
        assert best_perf().link.total_bandwidth == pytest.approx(270e9)

    def test_six_configs(self):
        names = [c.name for c in table4_configs()]
        assert names == ["BestPerf", "MostEfficient", "Homogeneous",
                         "BestPerf+", "MostEfficient+", "Homogeneous+"]

    def test_default_threads_is_32(self):
        assert best_perf().threads == 32
