"""Tests for the A100 / TPUv2 / TPUv3 baseline device models."""

import pytest

from repro.baselines import (
    A100_MEASURED_POWER_WATTS,
    A100_PLATFORM,
    MXU_SIZE,
    TPUV2_POWER_WATTS,
    TPUV3_POWER_WATTS,
    a100,
    best_batch_for_length,
    saturating,
    tpu_v2,
    tpu_v3,
)
from repro.baselines.tpu import _mxu_utilization
from repro.model import protein_bert_base
from repro.trace import OpKind, TraceSpec, bmm_op, elementwise_op, matmul_op, trace_model

CONFIG = protein_bert_base()


class TestDeviceSpecs:
    def test_published_power_figures(self):
        # Paper Section 4.1: A100 measured 395 W, TPUv2 280 W x 4 chips.
        assert A100_MEASURED_POWER_WATTS == 395.0
        assert TPUV2_POWER_WATTS == 1120.0
        assert TPUV3_POWER_WATTS > TPUV2_POWER_WATTS

    def test_table1_platform_recorded(self):
        assert "A100-SXM4" in A100_PLATFORM["GPU"]
        assert A100_PLATFORM["GPU Memory"] == "40GiB HBM2"

    def test_mxu_is_128(self):
        assert MXU_SIZE == 128

    def test_saturating_curve(self):
        assert saturating(128, 128.0) == pytest.approx(0.5)
        assert saturating(10 ** 9, 128.0) == pytest.approx(1.0, abs=1e-6)


class TestOpCosts:
    def test_matmul_faster_per_flop_than_bmm(self):
        device = a100()
        big = matmul_op(65536, 768, 768)
        small = bmm_op(1536, 512, 64, 512)
        big_rate = big.flops / device.op_seconds(big)
        small_rate = small.flops / device.op_seconds(small)
        assert big_rate > small_rate

    def test_tpu_pads_short_k(self):
        # k=64 wastes half the 128-row MXU.
        assert _mxu_utilization(10 ** 6, 64, 128) == pytest.approx(
            0.5 * _mxu_utilization(10 ** 6, 128, 128), rel=1e-6)

    def test_tpu_gelu_expansion_costs_more(self):
        gelu = elementwise_op(OpKind.GELU, (1024, 1024))
        add = elementwise_op(OpKind.ADD, (1024, 1024))
        device = tpu_v3()
        # 10x MulAdd expansion: GELU far more expensive than one add.
        assert device.op_seconds(gelu) > 4 * device.op_seconds(add)

    def test_gpu_gelu_is_single_kernel(self):
        gelu = elementwise_op(OpKind.GELU, (1024, 1024))
        add = elementwise_op(OpKind.ADD, (1024, 1024))
        device = a100()
        assert device.op_seconds(gelu) < 2 * device.op_seconds(add)

    def test_kernel_overhead_floors_tiny_ops(self):
        device = a100()
        tiny = elementwise_op(OpKind.ADD, (2, 2))
        assert device.op_seconds(tiny) >= device.spec.kernel_overhead


class TestThroughput:
    def test_calibrated_seq512_ratios(self):
        # The calibration targets derived from the paper's speedup claims:
        # A100 ~49.8 inf/s, TPUv3 ~61.6, TPUv2 ~26.7 (accelerated ops).
        assert a100().throughput(CONFIG, 128, 512) \
            == pytest.approx(49.8, rel=0.03)
        assert tpu_v3().throughput(CONFIG, 128, 512) \
            == pytest.approx(61.6, rel=0.03)
        assert tpu_v2().throughput(CONFIG, 128, 512) \
            == pytest.approx(26.7, rel=0.03)

    def test_throughput_decreases_with_length(self):
        device = a100()
        fast = device.throughput(CONFIG, 64, 128)
        slow = device.throughput(CONFIG, 64, 1024)
        assert fast > 4 * slow

    def test_efficiency_ordering_matches_figure1(self):
        # A100 > TPUv3 > TPUv2 in inf/s/W at every length.
        for seq_len in (64, 256, 1024):
            batch = best_batch_for_length(seq_len)
            gpu = a100().efficiency(CONFIG, batch, seq_len,
                                    accelerated_only=False)
            v3 = tpu_v3().efficiency(CONFIG, batch, seq_len,
                                     accelerated_only=False)
            v2 = tpu_v2().efficiency(CONFIG, batch, seq_len,
                                     accelerated_only=False)
            assert gpu > v3 > v2

    def test_accelerated_only_excludes_other(self):
        device = a100()
        ops = trace_model(TraceSpec(CONFIG, batch=8, seq_len=128))
        full = device.batch_seconds(ops, accelerated_only=False)
        accel = device.batch_seconds(ops, accelerated_only=True)
        assert accel < full

    def test_category_seconds_cover_total(self):
        device = a100()
        ops = trace_model(TraceSpec(CONFIG, batch=4, seq_len=64))
        categories = device.category_seconds(ops)
        total = device.batch_seconds(ops, accelerated_only=False)
        assert sum(categories.values()) == pytest.approx(total, rel=1e-9)


class TestBestBatch:
    def test_paper_profiling_batches(self):
        # Section 2.3's batch table.
        assert best_batch_for_length(32) == 24576
        assert best_batch_for_length(512) == 512
        assert best_batch_for_length(2048) == 64

    def test_unlisted_lengths_interpolate(self):
        # Unlisted lengths take the next-larger length's (memory-safe)
        # batch; beyond the table the largest length's batch applies.
        assert best_batch_for_length(300) == 512
        assert best_batch_for_length(4096) == 64
