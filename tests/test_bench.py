"""Tests for the benchmark observatory and profiler-to-span attribution.

Covers the registry's selector semantics, recorder schema/sequencing,
noise-aware trajectory comparison (including the test-injected-slowdown
regression path the CI gate relies on), the paper-artifact feed, the
cProfile hotspot reports (coverage, span attribution, Perfetto export,
bit-identical results), and the ``bench`` CLI end to end.
"""

import dataclasses
import json
import time

import numpy as np
import pytest

from repro.bench import (
    SCHEMA,
    SCHEMA_VERSION,
    append_artifact_timing,
    build_record,
    compare_records,
    format_comparison,
    get_scenario,
    list_bench_paths,
    load_record,
    load_records,
    machine_fingerprint,
    next_bench_path,
    run_scenarios,
    scenario_names,
    scenarios,
    seq_of,
    time_scenario,
    validate_record,
    write_record,
)
import importlib

# ``repro.bench.scenarios`` the *module* (the package re-exports a
# ``scenarios()`` accessor under the same name, shadowing the attribute).
scenarios_module = importlib.import_module("repro.bench.scenarios")
from repro.cli import main
from repro.telemetry import (
    Tracer,
    format_hotspots,
    profile,
    to_chrome_trace,
    validate_chrome_trace,
)

FAST = scenario_names("fast")


def _timing(name, median, fingerprint=1.0):
    return {"name": name, "repeat": 3,
            "samples": [median, median, median],
            "median_seconds": median, "min_seconds": median,
            "max_seconds": median, "mean_seconds": median,
            "fingerprint": fingerprint, "stable": True}


def _record(timings, **extra):
    return build_record({t["name"]: t for t in timings}, repeat=3,
                        extra=extra or None)


# -- scenario registry ---------------------------------------------------

class TestScenarioRegistry:
    def test_registry_has_the_curated_set(self):
        names = set(scenarios())
        assert {"trace_build", "schedule", "systolic_gemm",
                "functional_forward", "dse_point",
                "campaign_simulate"} <= names

    def test_fast_subset_is_nonempty_and_proper(self):
        assert FAST
        assert set(FAST) <= set(scenarios())
        assert "dse_point" not in FAST  # cold DSE stays out of smoke

    def test_selector_all_and_comma_list(self):
        assert scenario_names() == list(scenarios())
        assert scenario_names("all") == list(scenarios())
        assert scenario_names("schedule,trace_build") == [
            "schedule", "trace_build"]

    def test_unknown_selector_raises_with_known_names(self):
        with pytest.raises(KeyError, match="trace_build"):
            scenario_names("no_such_scenario")

    def test_scenarios_are_picklable_module_level_callables(self):
        import pickle

        for scenario in scenarios().values():
            assert pickle.loads(pickle.dumps(scenario.fn)) is scenario.fn

    def test_fingerprints_are_deterministic(self):
        scenario = get_scenario("trace_build")
        assert scenario.fn() == scenario.fn()


# -- recorder ------------------------------------------------------------

class TestRecorder:
    def test_time_scenario_shape_and_stability(self):
        timing = time_scenario("trace_build", repeat=3)
        assert timing["repeat"] == 3
        assert len(timing["samples"]) == 3
        assert timing["min_seconds"] <= timing["median_seconds"]
        assert timing["median_seconds"] <= timing["max_seconds"]
        assert timing["stable"] is True
        assert timing["fingerprint"] > 0

    def test_time_scenario_rejects_bad_repeat(self):
        with pytest.raises(ValueError, match="repeat"):
            time_scenario("trace_build", repeat=0)

    def test_run_scenarios_returns_all_names(self):
        timings = run_scenarios(["trace_build", "systolic_gemm"], repeat=2)
        assert set(timings) == {"trace_build", "systolic_gemm"}

    def test_record_round_trip_and_schema(self, tmp_path):
        timings = run_scenarios(["trace_build"], repeat=2)
        record = build_record(timings, repeat=2)
        assert record["schema"] == SCHEMA
        assert record["schema_version"] == SCHEMA_VERSION
        assert set(record["machine"]) >= {"platform", "python", "numpy",
                                          "cpu_count"}
        path = write_record(record, str(tmp_path / "BENCH_0007.json"))
        loaded = load_record(path)
        assert loaded["seq"] == 7
        assert loaded["scenarios"]["trace_build"]["median_seconds"] > 0

    def test_validate_rejects_foreign_and_future_records(self):
        with pytest.raises(ValueError, match="schema"):
            validate_record({"schema": "other", "schema_version": 1})
        record = _record([_timing("trace_build", 1e-3)])
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            validate_record(record)
        bad = _record([_timing("trace_build", 1e-3)])
        bad["scenarios"]["trace_build"]["median_seconds"] = -1.0
        with pytest.raises(ValueError, match="median_seconds"):
            validate_record(bad)

    def test_sequence_numbering(self, tmp_path):
        root = str(tmp_path)
        assert next_bench_path(root).endswith("BENCH_0001.json")
        record = _record([_timing("trace_build", 1e-3)])
        write_record(record, str(tmp_path / "BENCH_0003.json"))
        assert seq_of(str(tmp_path / "BENCH_0003.json")) == 3
        assert next_bench_path(root).endswith("BENCH_0004.json")
        assert [seq_of(p) for p in list_bench_paths(root)] == [3]

    def test_machine_fingerprint_matches_environment(self):
        fingerprint = machine_fingerprint()
        assert fingerprint["numpy"] == np.__version__
        assert fingerprint["cpu_count"] >= 1

    def test_append_artifact_timing_creates_and_accumulates(self, tmp_path):
        path = str(tmp_path / "BENCH_0001.json")
        append_artifact_timing(path, "figure18", 0.25)
        append_artifact_timing(path, "figure18", 0.35)
        record = load_record(path)
        entry = record["artifacts"]["figure18"]
        assert entry["samples"] == [0.25, 0.35]
        assert entry["median_seconds"] == pytest.approx(0.30)

    def test_append_artifact_timing_extends_recorder_output(self, tmp_path):
        path = str(tmp_path / "BENCH_0002.json")
        write_record(_record([_timing("trace_build", 1e-3)]), path)
        append_artifact_timing(path, "table2", 0.1)
        record = load_record(path)
        assert "trace_build" in record["scenarios"]
        assert record["artifacts"]["table2"]["samples"] == [0.1]


# -- comparator ----------------------------------------------------------

class TestComparator:
    def test_unchanged_tree_passes(self):
        baseline = _record([_timing("schedule", 0.020)])
        current = _record([_timing("schedule", 0.021)])
        comparison = compare_records(current, [baseline], band_pct=25.0)
        assert comparison.ok
        assert comparison.deltas[0].status == "ok"

    def test_regression_beyond_band_fails(self):
        baseline = _record([_timing("schedule", 0.020)])
        current = _record([_timing("schedule", 0.030)])
        comparison = compare_records(current, [baseline], band_pct=25.0)
        assert not comparison.ok
        delta = comparison.regressions[0]
        assert delta.name == "schedule"
        assert delta.delta_pct == pytest.approx(50.0)

    def test_min_of_medians_sets_the_floor(self):
        noisy = _record([_timing("schedule", 0.040)])
        good = _record([_timing("schedule", 0.020)])
        current = _record([_timing("schedule", 0.030)])
        # vs the noisy record alone this would look like an improvement;
        # the floor across both baselines makes it a regression.
        comparison = compare_records(current, [noisy, good], band_pct=25.0)
        assert comparison.deltas[0].baseline_seconds == 0.020
        assert not comparison.ok

    def test_improvement_and_new_statuses(self):
        baseline = _record([_timing("schedule", 0.020)])
        current = _record([_timing("schedule", 0.010),
                           _timing("brand_new", 0.5)])
        comparison = compare_records(current, [baseline], band_pct=25.0)
        statuses = {d.name: d.status for d in comparison.deltas}
        assert statuses == {"schedule": "improvement", "brand_new": "new"}
        assert comparison.ok  # new + improvement never fail the gate

    def test_fingerprint_change_is_flagged_not_failed(self):
        baseline = _record([_timing("schedule", 0.020, fingerprint=1.0)])
        current = _record([_timing("schedule", 0.020, fingerprint=2.0)])
        comparison = compare_records(current, [baseline])
        assert comparison.deltas[0].fingerprint_changed
        assert comparison.ok
        assert "fingerprint changed" in format_comparison(comparison)

    def test_cross_machine_and_worker_notes(self):
        baseline = _record([_timing("schedule", 0.020)],
                           executor={"workers": 1, "mode": "serial"})
        current = _record([_timing("schedule", 0.020)],
                          executor={"workers": 4, "mode": "process"})
        baseline["machine"] = dict(baseline["machine"], platform="other-os")
        comparison = compare_records(current, [baseline])
        text = format_comparison(comparison)
        assert "machine fingerprint differs" in text
        assert "worker count differs" in text

    def test_min_delta_suppresses_tiny_absolute_regressions(self):
        # +50% on a 2 ms scenario is one context switch, not a
        # regression; the absolute guard keeps the gate quiet.
        baseline = _record([_timing("trace_build", 0.002)])
        current = _record([_timing("trace_build", 0.003)])
        flagged = compare_records(current, [baseline], band_pct=25.0)
        assert not flagged.ok
        guarded = compare_records(current, [baseline], band_pct=25.0,
                                  min_delta_seconds=0.005)
        assert guarded.ok
        assert guarded.deltas[0].status == "ok"

    def test_min_delta_keeps_real_regressions(self):
        baseline = _record([_timing("campaign", 0.100)])
        current = _record([_timing("campaign", 0.200)])
        comparison = compare_records(current, [baseline], band_pct=25.0,
                                     min_delta_seconds=0.015)
        assert not comparison.ok
        with pytest.raises(ValueError, match="min_delta_seconds"):
            compare_records(current, [baseline], min_delta_seconds=-0.1)

    def test_band_validation_and_formatting(self):
        with pytest.raises(ValueError, match="band_pct"):
            compare_records(_record([]), [], band_pct=-1)
        comparison = compare_records(
            _record([_timing("schedule", 0.02)]), [])
        text = format_comparison(comparison)
        assert "new scenario" in text
        assert "PASS" in text

    def test_load_records_orders_by_sequence(self, tmp_path):
        for seq, median in ((2, 0.2), (1, 0.1)):
            write_record(_record([_timing("schedule", median)]),
                         str(tmp_path / f"BENCH_{seq:04d}.json"))
        records = load_records(list_bench_paths(str(tmp_path)))
        assert [r["seq"] for r in records] == [1, 2]


# -- profiling -----------------------------------------------------------

class TestProfiling:
    def test_profile_collects_named_hotspots(self):
        with profile(label="unit") as report:
            np.matmul(np.ones((64, 64)), np.ones((64, 64)))
        assert report.wall_seconds > 0
        assert report.entries
        assert all(entry.function for entry in report.entries)
        assert report.total_self_seconds == pytest.approx(
            sum(e.self_seconds for e in report.entries))

    def test_dse_point_hotspot_table_covers_90_percent(self):
        scenario = get_scenario("dse_point")
        scenario.setup()
        scenario.fn()  # warm numpy/runtime internals once
        with profile(label="dse_point") as report:
            scenario.fn()
        assert report.coverage(50) >= 0.90
        table = format_hotspots(report, top=50)
        assert "cover" in table
        assert "orchestrator" in table  # the scheduler shows up by name

    def test_span_attribution_for_spans_inside_the_window(self):
        tracer = Tracer()
        scenario = get_scenario("systolic_gemm")
        scenario.setup()
        with profile(tracer, label="gemm") as report:
            with tracer.span("scenario:gemm", pid="bench"):
                scenario.fn()
        assert "scenario:gemm" in report.span_hotspots
        assert report.span_hotspots["scenario:gemm"]
        # the hook restored the original bound method
        assert "span" not in vars(tracer)

    def test_span_stack_recorded_for_enclosing_spans(self):
        tracer = Tracer()
        with tracer.span("outer", pid="bench"):
            with profile(tracer, label="inner") as report:
                sum(range(10))
        assert report.span_stack == ("outer",)

    def test_profile_export_validates_and_sits_on_profile_track(self):
        tracer = Tracer()
        with profile(tracer, label="export_case") as report:
            with tracer.span("work", pid="bench"):
                np.fft.fft(np.ones(4096))
        data = to_chrome_trace(tracer, profiles=[report])
        counts = validate_chrome_trace(data)
        assert counts["spans"] >= len(report.entries[:40]) + 1
        names = {event.get("args", {}).get("name")
                 for event in data["traceEvents"]
                 if event.get("ph") == "M"
                 and event.get("name") == "process_name"}
        assert {"bench", "profile"} <= names

    def test_results_bit_identical_with_profiling(self):
        scenario = get_scenario("functional_forward")
        scenario.setup()
        plain = scenario.fn()
        with profile(label="parity"):
            profiled = scenario.fn()
        assert profiled == plain

    def test_top_rejects_nonpositive(self):
        with profile() as report:
            pass
        with pytest.raises(ValueError, match="top-N"):
            report.top(0)


# -- CLI -----------------------------------------------------------------

class TestBenchCli:
    def test_record_compare_check_pass_on_unchanged_tree(self, tmp_path):
        baseline = str(tmp_path / "BENCH_0001.json")
        assert main(["bench", "--scenarios", "trace_build",
                     "--repeat", "2", "--out", baseline]) == 0
        validate_record(json.loads(open(baseline).read()))
        second = str(tmp_path / "BENCH_0002.json")
        assert main(["bench", "--scenarios", "trace_build",
                     "--repeat", "2", "--out", second,
                     "--compare", baseline, "--check",
                     "--band", "300"]) == 0

    def test_injected_slowdown_fails_check(self, tmp_path, monkeypatch):
        baseline = str(tmp_path / "BENCH_0001.json")
        assert main(["bench", "--scenarios", "trace_build",
                     "--repeat", "2", "--out", baseline]) == 0

        real = get_scenario("trace_build")

        def slowed() -> float:
            time.sleep(0.05)
            return real.fn()

        monkeypatch.setitem(scenarios_module._REGISTRY, "trace_build",
                            dataclasses.replace(real, fn=slowed))
        out = str(tmp_path / "BENCH_0002.json")
        assert main(["bench", "--scenarios", "trace_build",
                     "--repeat", "2", "--out", out,
                     "--compare", baseline, "--check",
                     "--band", "35"]) == 1

    def test_profile_flag_writes_valid_perfetto_json(self, tmp_path,
                                                     capsys):
        out = str(tmp_path / "BENCH_0001.json")
        prof = str(tmp_path / "prof.json")
        assert main(["bench", "--scenarios", "systolic_gemm",
                     "--repeat", "1", "--out", out,
                     "--profile", "--profile-out", prof,
                     "--top", "5"]) == 0
        with open(prof, encoding="utf-8") as handle:
            counts = validate_chrome_trace(json.load(handle))
        assert counts["spans"] > 0
        captured = capsys.readouterr().out
        assert "hotspots[systolic_gemm]" in captured
        assert "span 'scenario:systolic_gemm'" in captured

    def test_list_and_bad_selector(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert "trace_build" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["bench", "--scenarios", "nope"])

    def test_check_without_compare_is_an_error(self):
        with pytest.raises(SystemExit, match="--check requires"):
            main(["bench", "--scenarios", "trace_build",
                  "--repeat", "1", "--check"])

    def test_overview_lists_bench(self, capsys):
        assert main([]) == 0
        assert "bench" in capsys.readouterr().out

    def test_workers_help_documents_env_default(self, capsys):
        for command in ("experiments", "dse", "sweep", "reliability",
                        "bench"):
            with pytest.raises(SystemExit):
                main([command, "--help"])
            assert "REPRO_SWEEP_WORKERS" in capsys.readouterr().out


# -- conftest feed -------------------------------------------------------

class TestArtifactFeed:
    def test_run_once_appends_when_env_set(self, tmp_path, monkeypatch):
        import importlib.util
        import os

        spec = importlib.util.spec_from_file_location(
            "bench_conftest",
            os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "benchmarks", "conftest.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        class FakeBenchmark:
            name = "test_bench_fake"

            def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                         iterations=1):
                return fn(*args, **(kwargs or {}))

        path = str(tmp_path / "BENCH_0001.json")
        monkeypatch.setenv(module.RECORD_ENV, path)
        result = module.run_once(FakeBenchmark(), lambda x: x + 1, 41)
        assert result == 42
        record = load_record(path)
        assert record["artifacts"]["test_bench_fake"]["samples"]

    def test_run_once_untouched_without_env(self, tmp_path, monkeypatch):
        import importlib.util
        import os

        spec = importlib.util.spec_from_file_location(
            "bench_conftest2",
            os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "benchmarks", "conftest.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.delenv(module.RECORD_ENV, raising=False)

        calls = []

        class FakeBenchmark:
            def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                         iterations=1):
                calls.append((rounds, iterations))
                return fn(*args, **(kwargs or {}))

        assert module.run_once(FakeBenchmark(), lambda: 7) == 7
        assert calls == [(1, 1)]
        assert list(tmp_path.iterdir()) == []
