"""Tests for the binding-affinity study (Section 2.2)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.binding import (
    FeatureExtractor,
    PcaRidgeModel,
    RidgeRegression,
    default_extractor_config,
    pearson,
    rankdata,
    run_binding_study,
    spearman,
)
from repro.model import ProteinBert, protein_bert_tiny
from repro.proteins import FAB_LENGTH, BindingEnergyModel, make_binding_dataset


class TestMetrics:
    def test_rankdata_matches_scipy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=50)
        assert np.allclose(rankdata(values),
                           scipy_stats.rankdata(values))

    def test_rankdata_handles_ties(self):
        values = [1.0, 2.0, 2.0, 3.0]
        assert np.allclose(rankdata(values), [1.0, 2.5, 2.5, 4.0])

    def test_spearman_matches_scipy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=40)
        y = 0.5 * x + rng.normal(size=40)
        ours = spearman(x, y)
        reference = scipy_stats.spearmanr(x, y).statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_spearman_perfect_monotone(self):
        x = np.arange(10.0)
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)
        assert spearman(x, -x) == pytest.approx(-1.0)

    def test_spearman_requires_two_points(self):
        with pytest.raises(ValueError):
            spearman([1.0], [2.0])

    def test_pearson_matches_numpy(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(2, 30))
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_input_returns_zero(self):
        assert spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0


class TestRidgeRegression:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(200, 5))
        weights = np.array([1.0, -2.0, 0.5, 0.0, 3.0])
        y = x @ weights + 4.0
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-3)

    def test_dual_form_when_wide(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20, 100))
        y = rng.normal(size=20)
        model = RidgeRegression(alpha=1.0).fit(x, y)
        assert model.predict(x).shape == (20,)

    def test_primal_dual_agree(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(30, 30))
        y = rng.normal(size=30)
        # Same data through both solve paths (trick: transpose shape).
        primal = RidgeRegression(alpha=2.0).fit(x, y).predict(x)
        wide = RidgeRegression(alpha=2.0).fit(
            np.hstack([x, np.zeros((30, 10))]), y).predict(
            np.hstack([x, np.zeros((30, 10))]))
        assert np.allclose(primal, wide, atol=1e-6)

    def test_regularization_shrinks(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(40, 10))
        y = rng.normal(size=40)
        loose = RidgeRegression(alpha=1e-6).fit(x, y)
        tight = RidgeRegression(alpha=1e6).fit(x, y)
        spread_loose = np.std(loose.predict(x))
        spread_tight = np.std(tight.predict(x))
        assert spread_tight < spread_loose

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((2, 3)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((4, 3)), np.zeros(5))


class TestPcaRidge:
    def test_reduces_before_fit(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(30, 50))
        y = x[:, 0] * 2.0
        model = PcaRidgeModel(components=3, alpha=0.1).fit(x, y)
        assert model._basis.shape == (3, 50)

    def test_component_bounds_enforced(self):
        with pytest.raises(ValueError):
            PcaRidgeModel(components=100).fit(np.zeros((10, 5)),
                                              np.zeros(10))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PcaRidgeModel().predict(np.zeros((2, 3)))

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(8)
        latent = rng.normal(size=(100, 1))
        x = latent @ rng.normal(size=(1, 20)) \
            + 0.01 * rng.normal(size=(100, 20))
        y = latent[:, 0]
        model = PcaRidgeModel(components=1, alpha=0.1).fit(x, y)
        assert pearson(model.predict(x), y) > 0.99


class TestDataset:
    def test_paper_split_sizes(self):
        dataset = make_binding_dataset()
        assert len(dataset.train) == 39
        assert len(dataset.test) == 35

    def test_fab_length(self):
        dataset = make_binding_dataset()
        assert all(len(v.sequence) == FAB_LENGTH
                   for v in dataset.train + dataset.test)

    def test_deterministic(self):
        a = make_binding_dataset(seed=5)
        b = make_binding_dataset(seed=5)
        assert a.train == b.train and a.test == b.test

    def test_energy_model_deterministic(self):
        dataset = make_binding_dataset()
        model = BindingEnergyModel(dataset.paratope, seed=2024)
        sequence = dataset.train[0].sequence
        assert model.energy(sequence) == model.energy(sequence)

    def test_mutations_confined_to_cdr(self):
        dataset = make_binding_dataset(seed=3)
        cdr = {p + o for p in dataset.paratope for o in (-1, 0, 1)}
        base = None
        # All train variants agree outside the CDR region.
        for variant in dataset.train:
            if base is None:
                base = variant.sequence
                continue
            for position, (a, b) in enumerate(zip(base, variant.sequence)):
                if a != b:
                    assert position in cdr

    def test_energy_model_requires_positions(self):
        with pytest.raises(ValueError):
            BindingEnergyModel([])


class TestFeatureExtractor:
    def test_feature_shape(self):
        config = protein_bert_tiny()
        extractor = FeatureExtractor(ProteinBert(config, seed=0))
        features = extractor.extract(["MEYQ", "ACDEFG"])
        assert features.shape == (2, config.hidden_size)

    def test_batching_invariant(self):
        config = protein_bert_tiny()
        model = ProteinBert(config, seed=0)
        sequences = ["MEYQ", "ACDEFG", "WWWW", "KLMNP"]
        one = FeatureExtractor(model, batch_size=1).extract(sequences)
        four = FeatureExtractor(model, batch_size=4).extract(sequences)
        assert np.allclose(one, four, atol=1e-4)

    def test_empty_input_rejected(self):
        extractor = FeatureExtractor(ProteinBert(protein_bert_tiny()))
        with pytest.raises(ValueError):
            extractor.extract([])


class TestBindingStudy:
    def test_smoke_with_tiny_extractor(self):
        # Full-accuracy runs live in the benchmark; here a tiny extractor
        # checks the pipeline end to end.
        model = ProteinBert(protein_bert_tiny(max_position=512), seed=0)
        result = run_binding_study(model=model)
        assert result.num_train == 39 and result.num_test == 35
        assert -1.0 <= result.rank_correlation <= 1.0
        assert -1.0 <= result.train_rank_correlation <= 1.0

    def test_default_extractor_config_shape(self):
        config = default_extractor_config()
        assert config.hidden_size == 256
        assert config.max_position >= FAB_LENGTH + 2
