"""Tests for the chaos campaign experiment and its sweep determinism."""

import pytest

from repro.experiments import chaos_campaign
from repro.fleet import SCENARIO_BUILDERS


@pytest.fixture(scope="module")
def campaign():
    return chaos_campaign.run(batch=64, workers=1)


class TestChaosCampaign:
    def test_covers_baseline_and_every_scenario(self, campaign):
        assert campaign.scenarios[0] == chaos_campaign.BASELINE
        assert set(campaign.scenarios[1:]) == set(SCENARIO_BUILDERS)
        assert len(campaign.reports) == len(campaign.scenarios)

    def test_baseline_is_clean(self, campaign):
        baseline = campaign.reports[0]
        assert baseline.failures == 0
        assert baseline.reshards == 0
        assert baseline.availability == 1.0
        assert baseline.completed == 64.0

    def test_every_scenario_keeps_goodput_positive(self, campaign):
        for name, report in zip(campaign.scenarios, campaign.reports):
            assert report.goodput > 0.0, name
            assert report.completed > 0.0, name

    def test_chaos_costs_availability(self, campaign):
        by_name = dict(zip(campaign.scenarios, campaign.reports))
        assert by_name["rack_power_loss"].availability < 1.0
        assert by_name["rack_power_loss"].reshards > 0
        assert by_name["rack_power_loss"].recovery_seconds > 0.0

    def test_bit_identical_across_worker_counts(self, campaign):
        parallel = chaos_campaign.run(batch=64, workers=4)
        assert parallel == campaign

    def test_format_lists_every_scenario(self, campaign):
        text = chaos_campaign.format_result(campaign)
        for name in campaign.scenarios:
            assert name in text
        assert "goodput" in text and "reshards" in text

    def test_heterogeneous_fleet_campaign(self):
        result = chaos_campaign.run(batch=48, heterogeneous=True,
                                    workers=1)
        assert "a100" in result.topology
        for report in result.reports:
            assert report.completed > 0.0
