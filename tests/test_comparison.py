"""Tests for the TPUv2-vs-ProSE microarchitectural step comparison."""


from repro.arch.comparison import (
    StepKind,
    compare_matmul,
    compare_muladd,
    format_comparison,
    prose_matmul_trace,
    prose_muladd_trace,
    tpu_matmul_trace,
    tpu_muladd_trace,
)


class TestMatmulComparison:
    def test_paper_step_counts(self):
        # Figure 11: TPUv2 needs eight operations, ProSE four.
        comparison = compare_matmul()
        assert comparison.tpu.num_steps == 8
        assert comparison.prose.num_steps == 4

    def test_prose_has_no_unified_buffer(self):
        comparison = compare_matmul()
        assert comparison.prose_has_no_buffer_trips
        assert comparison.tpu.buffer_trips >= 3

    def test_intermediate_bytes_scale_with_shape(self):
        small = tpu_matmul_trace(4, 4, 4)
        large = tpu_matmul_trace(64, 64, 64)
        assert large.intermediate_bytes > small.intermediate_bytes
        assert prose_matmul_trace(64, 64, 64).intermediate_bytes == 0

    def test_weight_stationary_vs_output_stationary(self):
        tpu = tpu_matmul_trace(4, 4, 4)
        assert any("weight-stationary" in step.description
                   for step in tpu.steps)
        prose = prose_matmul_trace(4, 4, 4)
        assert any("accumulator" in step.description
                   for step in prose.steps)


class TestMulAddComparison:
    def test_tpu_needs_multiple_trips(self):
        # Figure 12: the TPU traverses its global dataflow two-three
        # times while ProSE makes one trip of the local dataflow.
        comparison = compare_muladd()
        assert comparison.tpu.buffer_trips >= 5
        assert comparison.prose.buffer_trips == 0
        assert comparison.step_ratio > 1.5

    def test_prose_uses_left_rotation(self):
        trace = prose_muladd_trace(4, 4)
        rotations = [step for step in trace.steps
                     if "left-rotate" in step.description]
        assert len(rotations) == 2      # MUL pass then ADD pass

    def test_tpu_intermediate_traffic_dominates(self):
        tpu = tpu_muladd_trace(64, 64)
        prose = prose_muladd_trace(64, 64)
        streamed = sum(step.bytes_moved for step in prose.steps
                       if step.kind is StepKind.STREAM_IN)
        assert tpu.intermediate_bytes > 2 * streamed


class TestFormatting:
    def test_renders_both_machines(self):
        text = format_comparison(compare_matmul())
        assert "TPUv2: 8 operations" in text
        assert "ProSE: 4 operations" in text

    def test_numbered_steps(self):
        text = format_comparison(compare_muladd())
        assert "  1. [" in text
